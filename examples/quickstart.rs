//! Quickstart: shred an XML document into relations and run XPath through
//! the PPF-based SQL translation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ppf_core::XmlDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the document structure as a schema graph (DTD-style).
    let schema = xmlschema::parse_schema(
        "root library\n\
         library = shelf*\n\
         shelf @room = book*\n\
         book @isbn = title author* year\n\
         title : text\n\
         author : text\n\
         year : int\n",
    )?;

    // 2. Create the relational structures and load documents.
    let mut db = XmlDb::new(&schema)?;
    db.load_xml(
        "<library>\
           <shelf room='A'>\
             <book isbn='1'><title>XML and Databases</title>\
               <author>Georgiadis</author><author>Vassalos</author>\
               <year>2006</year></book>\
             <book isbn='2'><title>Relational Systems</title>\
               <author>Codd</author><year>1970</year></book>\
           </shelf>\
           <shelf room='B'>\
             <book isbn='3'><title>XPath in Practice</title>\
               <author>Vassalos</author><year>2005</year></book>\
           </shelf>\
         </library>",
    )?;
    db.finalize()?; // build the §3.1 indexes

    // 3. Run XPath. The engine splits the query into Primitive Path
    //    Fragments, emits SQL, and executes it on the built-in engine.
    for query in [
        "/library/shelf/book",
        "//book[author='Vassalos']/title",
        "//book[year>=2000]",
        "//shelf[@room='A']/book[count(author) = 2]",
    ] {
        let result = db.query(query)?;
        println!("XPath : {query}");
        println!(
            "SQL   : {}",
            result.sql.as_deref().unwrap_or("(statically empty)")
        );
        println!(
            "rows  : {} (scanned {} rows, {} index probes)\n",
            result.rows.rows.len(),
            result.stats.rows_scanned,
            result.stats.index_probes
        );
    }
    Ok(())
}
