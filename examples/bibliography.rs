//! DBLP-style bibliography queries (the paper's Table 7 workload):
//! recursive title markup, numeric year filters, backward-axis
//! predicates, and a value join between entry types.
//!
//! ```text
//! cargo run --release --example bibliography [scale]
//! ```

use ppf_bench::{build_dblp, dblp_queries, run_query, time_query, System};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    eprintln!("generating and shredding DBLP at scale {scale}...");
    let data = build_dblp(scale, 42);
    println!(
        "document: {} elements; {} distinct root-to-node paths\n",
        data.doc.element_count(),
        data.ppf.db().table("Paths").map(|t| t.len()).unwrap_or(0),
    );

    for (name, q) in dblp_queries() {
        let nodes = run_query(&data, System::Native, q).expect("native");
        let (count, t) = time_query(&data, System::Ppf, q, 3).expect("ppf");
        assert_eq!(count, nodes, "PPF must agree with the native evaluator");
        println!("{name}: {q}");
        println!(
            "  {} nodes in {:.2}ms (PPF)\n",
            nodes,
            t.as_secs_f64() * 1e3
        );
    }

    // QD4 is the paper's favourite: a predicate made only of backward
    // steps, answered entirely through the path index.
    let (_, q) = dblp_queries()[3];
    println!("PPF SQL for QD4:");
    println!(
        "{}",
        data.ppf
            .sql_for(q)
            .expect("translates")
            .unwrap_or_else(|| "(statically empty)".into())
    );
}
