//! The paper's headline scenario: an XMark-like auction site queried
//! through four systems — PPF (schema-aware), Edge-like PPF, the XPath
//! Accelerator baseline, and the native in-memory evaluator.
//!
//! ```text
//! cargo run --release --example auction_site [scale]
//! ```

use ppf_bench::{build_xmark, run_query, time_query, xmark_queries, System};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    eprintln!("generating and shredding XMark at scale {scale}...");
    let data = build_xmark(scale, 42);
    println!(
        "document: {} elements → {} rows across {} schema-aware relations\n",
        data.doc.element_count(),
        data.ppf.db().total_rows(),
        data.ppf.db().len(),
    );

    println!(
        "{:<6} {:>8}  {:>12} {:>12} {:>12} {:>12}",
        "query", "nodes", "PPF", "Edge-PPF", "Accel", "Native"
    );
    for (name, q) in xmark_queries() {
        let nodes = run_query(&data, System::Native, q).expect("native");
        let cell = |s: System| -> String {
            match time_query(&data, s, q, 3) {
                Ok((_, d)) => format!("{:.2}ms", d.as_secs_f64() * 1e3),
                Err(_) => "N/A".to_string(),
            }
        };
        println!(
            "{:<6} {:>8}  {:>12} {:>12} {:>12} {:>12}",
            name,
            nodes,
            cell(System::Ppf),
            cell(System::EdgePpf),
            cell(System::Accel),
            cell(System::Native),
        );
    }

    // Show what the PPF translation actually produces for one query.
    let q = "/site/open_auctions/open_auction[bidder/date = interval/start]";
    println!("\nPPF SQL for Q-A ({q}):");
    println!(
        "{}",
        data.ppf
            .sql_for(q)
            .expect("translates")
            .unwrap_or_else(|| "(statically empty)".into())
    );
}
