//! Side-by-side SQL translations: see how the PPF method shrinks the
//! number of joins compared with the per-step baselines, and what the
//! §4.5 marking removes on top.
//!
//! ```text
//! cargo run --example translation_explorer ["/your/xpath[query]"]
//! ```

use ppf_core::XmlDb;

fn joins(sql: &str) -> usize {
    // FROM-list length across branches ≈ relations joined.
    sql.split("from ")
        .skip(1)
        .map(|rest| {
            let upto = rest.find(" where ").unwrap_or(rest.len());
            rest[..upto].split(',').count()
        })
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = xmark::xmark_schema();
    let doc = xmark::generate_xmark(xmark::XMarkConfig {
        scale: 0.01,
        seed: 1,
    });

    let mut ppf = XmlDb::new(&schema)?;
    ppf.load(&doc)?;
    ppf.finalize()?;
    let mut ppf_nomark = XmlDb::new(&schema)?;
    ppf_nomark.set_path_marking(false);
    ppf_nomark.load(&doc)?;
    ppf_nomark.finalize()?;
    let mut edge = ppf_core::EdgeDb::new();
    edge.load(&doc)?;
    edge.finalize()?;
    let accel = {
        let mut a = accel::AccelDb::new();
        a.load(&doc).map_err(|e| e.to_string())?;
        a.finalize().map_err(|e| e.to_string())?;
        a
    };

    let queries: Vec<String> = match std::env::args().nth(1) {
        Some(q) => vec![q],
        None => vec![
            "/site/regions/namerica/item/description//keyword".to_string(),
            "/site/people/person[address and (phone or homepage)]".to_string(),
            "//keyword/ancestor::listitem".to_string(),
        ],
    };

    for q in &queries {
        println!("================================================================");
        println!("XPath: {q}\n");
        match ppf.sql_for(q)? {
            Some(sql) => {
                println!(
                    "--- PPF, schema-aware, §4.5 marking ON ({} relations joined)",
                    joins(&sql)
                );
                println!("{sql}\n");
            }
            None => println!("--- PPF: statically EMPTY against the schema\n"),
        }
        if let Some(sql) = ppf_nomark.sql_for(q)? {
            println!("--- PPF, marking OFF ({} relations joined)", joins(&sql));
            println!("{sql}\n");
        }
        if let Some(sql) = edge.sql_for(q)? {
            println!(
                "--- PPF over the Edge mapping ({} relations joined)",
                joins(&sql)
            );
            println!("{sql}\n");
        }
        match accel.sql_for(q) {
            Ok(sql) => {
                println!(
                    "--- XPath Accelerator, one join per step ({} relations joined)",
                    joins(&sql)
                );
                println!("{sql}\n");
            }
            Err(e) => println!("--- XPath Accelerator: {e}\n"),
        }
    }
    Ok(())
}
