//! Cross-crate integration: generate → validate → shred into three
//! stores → translate → execute → compare all systems against the native
//! evaluator, on both benchmark workloads.

use ppf_bench::{
    build_dblp, build_xmark, check_agreement, dblp_queries, run_query, xmark_queries, System,
};

#[test]
fn xmark_pipeline_all_systems_agree() {
    let data = build_xmark(0.05, 42);
    xmark::xmark_schema()
        .validate(&data.doc)
        .expect("generated document validates");
    for (name, q) in xmark_queries() {
        let expected = check_agreement(&data, q).unwrap_or_else(|e| panic!("{name}: {e}"));
        // The accelerator reports owner elements for trailing text()
        // steps (Q21), so compare it only on element queries.
        if name != "Q21" {
            let accel =
                run_query(&data, System::Accel, q).unwrap_or_else(|e| panic!("{name} accel: {e}"));
            assert_eq!(accel, expected, "{name}: accelerator disagrees");
        }
    }
}

#[test]
fn dblp_pipeline_all_systems_agree() {
    let data = build_dblp(0.05, 42);
    xmark::dblp_schema()
        .validate(&data.doc)
        .expect("generated document validates");
    for (name, q) in dblp_queries() {
        let expected = check_agreement(&data, q).unwrap_or_else(|e| panic!("{name}: {e}"));
        let accel =
            run_query(&data, System::Accel, q).unwrap_or_else(|e| panic!("{name} accel: {e}"));
        assert_eq!(accel, expected, "{name}: accelerator disagrees");
    }
}

/// Run every workload query on two identically-seeded builds, one with
/// the sort-merge structural join forced off and one with it forced on,
/// and require identical element ids (document order included). The
/// builds are separate because each `XmlDb` caches plans per XPath: the
/// access paths are frozen the first time a query runs.
fn assert_merge_equivalence(build: impl Fn() -> ppf_bench::BenchData, queries: &[(&str, &str)]) {
    let prev = sqlexec::set_merge_mode(sqlexec::MergeMode::ForceOff);
    let nl_data = build();
    let nl: Vec<Vec<i64>> = queries
        .iter()
        .map(|(name, q)| {
            nl_data
                .ppf
                .query(q)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .ids()
        })
        .collect();

    sqlexec::set_merge_mode(sqlexec::MergeMode::ForceOn);
    let merge_data = build();
    let mut merge_probes = 0u64;
    for ((name, q), expected) in queries.iter().zip(&nl) {
        let r = merge_data
            .ppf
            .query(q)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        merge_probes += r.engine.merge_probes;
        assert_eq!(&r.ids(), expected, "{name}: merge join changed the result");
    }
    sqlexec::set_merge_mode(prev);
    assert!(
        merge_probes > 0,
        "forcing merge must exercise the merge cursor at least once"
    );
}

#[test]
fn xmark_merge_join_matches_index_nested_loop() {
    assert_merge_equivalence(|| build_xmark(0.03, 7), &xmark_queries());
}

#[test]
fn dblp_merge_join_matches_index_nested_loop() {
    assert_merge_equivalence(|| build_dblp(0.05, 7), &dblp_queries());
}

#[test]
fn naive_baseline_covers_the_paper_subset() {
    // The commercial-RDBMS proxy supports Q23/Q24/QA (like the paper) and
    // agrees with the native evaluator on them.
    let data = build_xmark(0.05, 42);
    for name in ["Q23", "Q24", "QA"] {
        let q = xmark_queries()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("query exists")
            .1;
        let expected = run_query(&data, System::Native, q).expect("native");
        let naive = run_query(&data, System::Naive, q)
            .unwrap_or_else(|e| panic!("{name} must be supported: {e}"));
        assert_eq!(naive, expected, "{name}: naive disagrees");
    }
    // ...and rejects the axis-rich rest.
    for name in ["Q3", "Q4", "Q6", "Q9", "Q10"] {
        let q = xmark_queries()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("query exists")
            .1;
        assert!(
            run_query(&data, System::Naive, q).is_err(),
            "{name} should be unsupported by the naive baseline"
        );
    }
}

#[test]
fn path_index_stays_small() {
    // §3.1: "the total number of distinct paths is expected to be much
    // smaller than the total number of nodes".
    let data = build_xmark(0.1, 42);
    let paths = data.ppf.db().table("Paths").expect("Paths").len();
    let nodes = data.doc.element_count();
    assert!(
        paths * 10 < nodes,
        "expected paths ({paths}) ≪ nodes ({nodes})"
    );
    // The path count saturates: growing the document 4× should barely
    // change it (recursive parlist nesting contributes a bounded set).
    let bigger = build_xmark(0.4, 42);
    let bigger_paths = bigger.ppf.db().table("Paths").expect("Paths").len();
    assert!(
        bigger_paths < paths * 2,
        "paths should saturate: {paths} → {bigger_paths}"
    );
}

#[test]
fn ppf_joins_fewer_relations_than_accelerator() {
    // The paper's core claim, measured structurally: across the XMark
    // workload, the PPF FROM-lists are never longer than the
    // accelerator's, and strictly shorter in total.
    let data = build_xmark(0.02, 42);
    let froms = |sql: &str| -> usize {
        sql.split("from ")
            .skip(1)
            .map(|rest| {
                let upto = rest.find(" where ").unwrap_or(rest.len());
                rest[..upto].split(',').count()
            })
            .sum()
    };
    let mut ppf_total = 0usize;
    let mut accel_total = 0usize;
    for (_name, q) in xmark_queries() {
        let (Ok(Some(p)), Ok(a)) = (data.ppf.sql_for(q), data.accel.sql_for(q)) else {
            continue;
        };
        ppf_total += froms(&p);
        accel_total += froms(&a);
    }
    assert!(
        ppf_total < accel_total,
        "PPF joined {ppf_total} relations vs accelerator {accel_total}"
    );
}

#[test]
fn execution_stats_show_fewer_scans_for_ppf() {
    // Not just faster by the clock: the engine's counters show PPF reads
    // fewer rows than the Edge-like variant on structural-join queries.
    let data = build_xmark(0.05, 42);
    let q = "//keyword/ancestor::listitem"; // Q6
    let ppf = data.ppf.query(q).expect("ppf");
    let edge = data.edge.query(q).expect("edge");
    assert!(
        ppf.stats.rows_scanned < edge.stats.rows_scanned,
        "ppf scanned {} rows, edge scanned {}",
        ppf.stats.rows_scanned,
        edge.stats.rows_scanned
    );
}
