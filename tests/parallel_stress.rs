//! Concurrency stress: many threads hammer one [`ppf_core::SharedEngine`]
//! with the Figure-4 XMark query mix while a control thread snapshots the
//! process-wide metrics registry mid-flight. Every concurrent answer must
//! equal the serial baseline, counters must only grow, and the in-flight
//! gauge must actually observe overlapping queries.
//!
//! Lives in its own integration-test binary: it sizes the process-wide
//! pool and reads process-wide registry counters.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Barrier};

use ppf_bench::{build_xmark, xmark_queries};
use ppf_core::SharedEngine;

const WORKERS: usize = 4;
const ROUNDS: usize = 3;

#[test]
fn concurrent_queries_agree_with_serial_and_stats_stay_sane() {
    ppf_pool::set_threads(4);
    let data = build_xmark(0.03, 42);
    let ppf_bench::BenchData { ppf, .. } = data;
    let engine = SharedEngine::new(ppf);
    let queries = xmark_queries();

    // Serial baseline — also warms the XPath-keyed query cache, so the
    // concurrent phase exercises the shared-cache read path too.
    let expected: Vec<(String, Vec<i64>)> = queries
        .iter()
        .map(|(name, q)| {
            let ids = engine
                .query(q)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .ids();
            (name.to_string(), ids)
        })
        .collect();

    let reg = obs::Registry::global();
    let queries_before = reg.counter("engine.queries");

    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(WORKERS + 1));
    let expected = Arc::new(expected);

    // Control thread: counters from the shared registry must never move
    // backwards while the workers run.
    let control = {
        let done = done.clone();
        std::thread::spawn(move || {
            let reg = obs::Registry::global();
            let mut last = reg.counter("engine.queries");
            let mut snapshots = 0u64;
            while !done.load(Relaxed) {
                let now = reg.counter("engine.queries");
                assert!(
                    now >= last,
                    "engine.queries went backwards: {last} -> {now}"
                );
                last = now;
                snapshots += 1;
                std::thread::yield_now();
            }
            snapshots
        })
    };

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let engine = engine.clone();
            let expected = expected.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let queries = xmark_queries();
                start.wait();
                for round in 0..ROUNDS {
                    for ((name, q), (_, ids)) in queries.iter().zip(expected.iter()) {
                        let r = engine
                            .query(q)
                            .unwrap_or_else(|e| panic!("worker {w} round {round} {name}: {e}"));
                        assert_eq!(
                            &r.ids(),
                            ids,
                            "worker {w} round {round}: {name} diverged from serial"
                        );
                    }
                }
            })
        })
        .collect();
    start.wait();
    for h in workers {
        h.join().unwrap();
    }
    done.store(true, Relaxed);
    let snapshots = control.join().unwrap();
    assert!(snapshots > 0, "control thread never snapshotted");

    let total = WORKERS * ROUNDS * queries.len();
    let queries_after = reg.counter("engine.queries");
    assert!(
        queries_after - queries_before >= total as u64,
        "registry missed queries: {queries_before} -> {queries_after}, expected +{total}"
    );
    assert!(
        ppf_core::concurrent_queries_peak() >= 2,
        "four workers × three rounds never overlapped: peak {}",
        ppf_core::concurrent_queries_peak()
    );
}
