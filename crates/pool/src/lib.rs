//! `ppf-pool` — a small scoped work-stealing thread pool (std only).
//!
//! The PPF execution stack parallelizes three shapes of work: partitioned
//! path-filter scans, partitioned structural joins (the outer run split
//! at Dewey ancestor boundaries), and whole concurrent queries through
//! `ppf_core::SharedEngine`. All three need the same primitive: run a
//! batch of borrowing closures on a fixed set of worker threads and wait
//! for all of them — rayon's `scope`, without the dependency (the build
//! environment has no crates.io access).
//!
//! Design:
//!
//! * **Per-worker deques + an injector.** Each worker owns a deque; it
//!   pops its own back (LIFO, cache-warm), then the shared injector,
//!   then *steals* from the front of a sibling's deque (FIFO, oldest
//!   work first — the classic Chase–Lev discipline, here with plain
//!   mutexed `VecDeque`s since tasks are chunk-sized, not instruction-
//!   sized). Steals are counted into [`Pool::steal_count`].
//! * **Scoped tasks.** [`Pool::scope`] lets tasks borrow from the
//!   caller's stack. The scope does not return until every spawned task
//!   finished (even on panic), which is what makes the lifetime erasure
//!   in `Scope::spawn` sound. While waiting, the calling thread executes
//!   queued tasks itself — with `n` configured threads there are `n - 1`
//!   workers plus the participating caller.
//! * **Graceful single-thread fallback.** A pool of ≤ 1 thread spawns no
//!   workers; `scope`/`parallel_map` run every task inline on the caller
//!   with no queueing, no locks taken per item and no behaviour change.
//!
//! Configuration: the process-wide pool ([`global`]) sizes itself from
//! the `PPF_THREADS` environment variable, falling back to
//! `std::thread::available_parallelism`; [`set_threads`] replaces it at
//! runtime (the programmatic knob benchmarks use for 1/2/4-way scaling
//! tables).
//!
//! Profiling: when an `obs::profile` session is attached, workers emit
//! task start/end, steal attempt/success/fail, park/unpark, and
//! contended-lock-wait events onto their per-thread timelines. Detached,
//! every hook is one relaxed atomic load and a branch (see the overhead
//! contract on `obs::profile`).

use obs::profile::{self, EventKind};

use std::collections::VecDeque;
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicUsize,
    Ordering::{Relaxed, SeqCst},
};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Duration;

/// A queued unit of work. Tasks are lifetime-erased boxed closures; the
/// scope machinery guarantees they complete before the borrows they
/// capture go out of scope.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Times a pool lock was recovered from poisoning (a panic while the
/// lock was held). The protected state — job deques, the scope panic
/// slot, the sleep token — is valid at every instruction boundary, so
/// recovery is always safe; the counter makes it observable.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Pool locks recovered from poisoning since process start.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Relaxed)
}

/// Lock a mutex, recovering (and counting) if a previous holder panicked.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Relaxed);
        poisoned.into_inner()
    })
}

/// Lock-wait spans shorter than this are noise, not contention.
const LOCK_WAIT_MIN_NS: u64 = 1_000;

/// [`lock_unpoisoned`], plus a profiler `LockWait` event when a profiler
/// is attached and the acquisition stalled measurably. The timing branch
/// is gated on [`profile::is_attached`] so the detached hot path never
/// reads the clock.
fn lock_profiled<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    if profile::is_attached() {
        let t0 = std::time::Instant::now();
        let guard = lock_unpoisoned(m);
        let waited = t0.elapsed().as_nanos() as u64;
        if waited >= LOCK_WAIT_MIN_NS {
            profile::record(EventKind::LockWait, waited);
        }
        guard
    } else {
        lock_unpoisoned(m)
    }
}

/// A scoped task panicked. Carries the panic payload's message when it
/// was a `&str` or `String` (the overwhelmingly common case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a pool task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker thread. The owner pushes/pops the back;
    /// thieves (and the participating caller) take from the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// One-task LIFO slot per worker: the freshest submission to a worker
    /// parks here and is picked up before the deque — the task whose
    /// input data is most likely still in some cache runs first. A new
    /// submission displaces the slot's occupant to the deque.
    lifo: Vec<Mutex<Option<Job>>>,
    /// Overflow queue for submitters that are not workers.
    injector: Mutex<VecDeque<Job>>,
    /// Jobs currently sitting in any queue (LIFO slots, deques,
    /// injector). Workers re-check this under the `sleep` lock before
    /// parking, and submitters notify under the same lock, so a parked
    /// worker costs nothing while idle and a wakeup can never be lost.
    /// An earlier revision used a 1 ms timed wait instead, which meant
    /// every idle worker woke 1000×/s to scan the deques — on a
    /// single-core host three idle workers taxed *serial* queries by
    /// 15-35% just by existing.
    queued: AtomicUsize,
    /// Parked-worker wakeup, paired with `queued` (see above).
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for distributing submissions over deques.
    next_queue: AtomicUsize,
    steals: AtomicU64,
    /// Sibling-deque scans started by workers while scopes were active
    /// (the denominator of the steal-success rate; idle polling with no
    /// scope in flight is not an attempt).
    steal_attempts: AtomicU64,
    /// Tasks a worker took from its own LIFO slot (cache-affine hits).
    lifo_hits: AtomicU64,
    executed: AtomicU64,
    /// Scopes currently draining tasks (the saturation signal callers
    /// use to degrade from parallel to serial execution).
    active_scopes: AtomicUsize,
}

impl Shared {
    /// Take one job: own LIFO slot, own deque (LIFO), injector, then
    /// steal (FIFO, half the victim's deque). `home` is the calling
    /// worker's deque index; `None` for the scope-owning caller, which
    /// scans the injector, every deque, and every slot.
    fn pop_any(&self, home: Option<usize>) -> Option<Job> {
        if let Some(h) = home {
            if let Some(j) = lock_profiled(&self.lifo[h]).take() {
                self.lifo_hits.fetch_add(1, Relaxed);
                self.queued.fetch_sub(1, SeqCst);
                return Some(j);
            }
            if let Some(j) = lock_profiled(&self.locals[h]).pop_back() {
                self.queued.fetch_sub(1, SeqCst);
                return Some(j);
            }
        }
        if let Some(j) = lock_profiled(&self.injector).pop_front() {
            self.queued.fetch_sub(1, SeqCst);
            return Some(j);
        }
        let n = self.locals.len();
        // A sibling scan only counts as a steal *attempt* when a worker
        // (not the scope-owning caller) scans while work could exist —
        // idle 1 ms polling with no active scope would otherwise drown
        // the success rate (and the profile) in vacuous misses.
        let stealing = home.is_some() && n > 1 && self.active_scopes.load(SeqCst) > 0;
        if stealing {
            self.steal_attempts.fetch_add(1, Relaxed);
            profile::record(EventKind::StealAttempt, 0);
        }
        let start = home.unwrap_or(0);
        for k in 0..n {
            let v = (start + 1 + k) % n;
            if Some(v) == home {
                continue;
            }
            let mut victim = lock_profiled(&self.locals[v]);
            let avail = victim.len();
            if avail == 0 {
                continue;
            }
            let first = victim.pop_front().expect("non-empty deque");
            match home {
                Some(h) if avail > 1 => {
                    // Steal-half: move (avail+1)/2 oldest tasks in one
                    // visit — one successful scan re-balances the queues
                    // instead of winning a single task per lock round-trip
                    // (the 43% single-victim hit rate measured in PR 6).
                    let extra = avail.div_ceil(2) - 1;
                    let moved: Vec<Job> = (0..extra).filter_map(|_| victim.pop_front()).collect();
                    drop(victim);
                    let taken = 1 + moved.len() as u64;
                    if !moved.is_empty() {
                        lock_profiled(&self.locals[h]).extend(moved);
                        // The thief's deque now has surplus another idle
                        // worker could take; wake one.
                        self.wake.notify_one();
                    }
                    self.steals.fetch_add(taken, Relaxed);
                    if stealing {
                        profile::record(EventKind::StealSuccess, taken);
                    }
                }
                Some(_) => {
                    drop(victim);
                    self.steals.fetch_add(1, Relaxed);
                    if stealing {
                        profile::record(EventKind::StealSuccess, 1);
                    }
                }
                None => drop(victim),
            }
            self.queued.fetch_sub(1, SeqCst);
            return Some(first);
        }
        // Last resort: raid parked workers' LIFO slots so a job can never
        // sit unexecuted behind a slow wakeup.
        for k in 0..n {
            let v = (start + 1 + k) % n;
            if Some(v) == home {
                continue;
            }
            if let Some(j) = lock_profiled(&self.lifo[v]).take() {
                if home.is_some() {
                    self.steals.fetch_add(1, Relaxed);
                    if stealing {
                        profile::record(EventKind::StealSuccess, 1);
                    }
                }
                self.queued.fetch_sub(1, SeqCst);
                return Some(j);
            }
        }
        if stealing {
            profile::record(EventKind::StealFail, 0);
        }
        None
    }

    /// Place a job on the next worker in round-robin order — its LIFO
    /// slot when free, its deque otherwise (displacing the slot's older
    /// occupant to the deque). No wakeup; callers wake explicitly so a
    /// bulk submit can wake all workers once instead of one per task.
    /// Callers must only enqueue when workers exist.
    fn enqueue(&self, job: Job) {
        self.queued.fetch_add(1, SeqCst);
        let i = self.next_queue.fetch_add(1, Relaxed) % self.locals.len();
        let displaced = {
            let mut slot = lock_profiled(&self.lifo[i]);
            let old = slot.take();
            *slot = Some(job);
            old
        };
        if let Some(old) = displaced {
            lock_profiled(&self.locals[i]).push_back(old);
        }
    }

    /// Queue one job and wake one parked worker. The notify happens
    /// under the `sleep` lock: a parking worker re-checks `queued`
    /// under that same lock, so it either sees this job or is already
    /// waiting when the notify lands — never in between.
    fn push(&self, job: Job) {
        self.enqueue(job);
        let _guard = lock_unpoisoned(&self.sleep);
        self.wake.notify_one();
    }

    /// Queue a batch of jobs, then wake every parked worker at once when
    /// there is work for more than one of them (a bulk fan-out), or just
    /// one for a single job.
    fn push_batch(&self, jobs: Vec<Job>) {
        let many = jobs.len() > 1;
        for job in jobs {
            self.enqueue(job);
        }
        let _guard = lock_unpoisoned(&self.sleep);
        if many {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }

    fn run(&self, job: Job) {
        profile::record(EventKind::TaskStart, 0);
        job();
        profile::record(EventKind::TaskEnd, 0);
        self.executed.fetch_add(1, Relaxed);
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.pop_any(Some(me)) {
            shared.run(job);
            continue;
        }
        if shared.shutdown.load(SeqCst) {
            return;
        }
        profile::record(EventKind::Park, 0);
        {
            let guard = lock_unpoisoned(&shared.sleep);
            // Re-check under the lock: submitters notify under this same
            // lock, so either work is visible here or the notify arrives
            // while we wait. The generous timeout is a backstop only —
            // an idle worker costs ten wakeups a second, not a thousand.
            if shared.queued.load(SeqCst) == 0 && !shared.shutdown.load(SeqCst) {
                let _ = shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| {
                        POISON_RECOVERIES.fetch_add(1, Relaxed);
                        poisoned.into_inner()
                    });
            }
        }
        profile::record(EventKind::Unpark, 0);
    }
}

/// A fixed-size work-stealing thread pool.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

impl Pool {
    /// A pool with `threads` total parallelism: `threads - 1` worker
    /// threads plus the scope-owning caller. `threads <= 1` spawns no
    /// workers and runs everything inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            lifo: (0..workers).map(|_| Mutex::new(None)).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            steal_attempts: AtomicU64::new(0),
            lifo_hits: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            active_scopes: AtomicUsize::new(0),
        });
        for i in 0..workers {
            let s = shared.clone();
            std::thread::Builder::new()
                .name(format!("ppf-pool-{i}"))
                .spawn(move || worker_loop(s, i))
                .expect("spawn pool worker");
        }
        Pool { shared, threads }
    }

    /// Configured parallelism (workers + participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tasks moved between deques by work stealing, since construction.
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Relaxed)
    }

    /// Sibling-deque scans workers started while scopes were active,
    /// since construction. `steal_count / steal_attempt_count` is the
    /// steal-success rate; a low rate with high attempts means workers
    /// burn their time scanning empty deques instead of executing.
    pub fn steal_attempt_count(&self) -> u64 {
        self.shared.steal_attempts.load(Relaxed)
    }

    /// Tasks workers ran straight out of their own LIFO slot — the
    /// cache-affine fast path that skips the deque entirely.
    pub fn lifo_hit_count(&self) -> u64 {
        self.shared.lifo_hits.load(Relaxed)
    }

    /// Tasks completed by worker threads (inline and caller-executed
    /// tasks are not counted here).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.executed.load(Relaxed)
    }

    /// Scopes currently executing on this pool (including the caller's
    /// own, while inside one).
    pub fn active_scopes(&self) -> usize {
        self.shared.active_scopes.load(SeqCst)
    }

    /// Whether the pool already has at least `threads` concurrent scopes
    /// draining. A saturated pool gains nothing from further fan-out —
    /// callers should run their work serially instead of queueing chunks
    /// behind every other query's chunks.
    pub fn is_saturated(&self) -> bool {
        self.threads <= 1 || self.shared.active_scopes.load(SeqCst) >= self.threads
    }

    /// Run a batch of scoped tasks. Tasks spawned via [`Scope::spawn`]
    /// may borrow anything that outlives the `scope` call; the call
    /// returns only after every task has finished. If any task panicked,
    /// the panic is re-raised here (after all tasks completed).
    pub fn scope<'env, R>(&'env self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        match self.try_scope(f) {
            Ok(r) => r,
            Err(_) => panic!("ppf-pool: a scoped task panicked"),
        }
    }

    /// Like [`Pool::scope`], but a panicking *task* surfaces as
    /// `Err(TaskPanic)` (carrying the first panic's message) instead of
    /// re-raising, so callers can degrade one query to a typed error
    /// rather than unwinding the process. All tasks are still drained
    /// before returning; a panic in the closure `f` itself (the caller's
    /// own stack) is re-raised as before.
    pub fn try_scope<'env, R>(
        &'env self,
        f: impl FnOnce(&Scope<'env>) -> R,
    ) -> Result<R, TaskPanic> {
        struct ActiveScope<'a>(&'a AtomicUsize);
        impl Drop for ActiveScope<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, SeqCst);
            }
        }
        self.shared.active_scopes.fetch_add(1, SeqCst);
        let _active = ActiveScope(&self.shared.active_scopes);
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: state.clone(),
            _marker: std::marker::PhantomData,
        };
        // The closure itself may panic after spawning; tasks must still
        // be drained before unwinding releases the borrowed stack.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
        while state.pending.load(SeqCst) != 0 {
            // Participate instead of blocking: the caller is one of the
            // pool's `threads()` lanes.
            match self.shared.pop_any(None) {
                Some(job) => self.shared.run(job),
                None => std::thread::yield_now(),
            }
        }
        if state.panicked.load(SeqCst) {
            let message = lock_unpoisoned(&state.panic_msg)
                .take()
                .unwrap_or_else(|| "opaque panic payload".to_string());
            return Err(TaskPanic { message });
        }
        match result {
            Ok(r) => Ok(r),
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Chunked data-parallel map: split `items` into up to `2 × threads`
    /// contiguous chunks of at least `min_chunk` items, run `f(chunk_index,
    /// chunk)` across the pool, and return the per-chunk results in chunk
    /// order. Single-threaded pools (or inputs smaller than `2 ×
    /// min_chunk`) make exactly one inline call.
    pub fn parallel_map<T, R, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let ranges = even_ranges(items.len(), self.chunk_target(items.len(), min_chunk));
        self.map_ranges(&ranges, |i, r| f(i, &items[r]))
    }

    /// Number of chunks `parallel_map` would split `len` items into.
    pub fn chunk_target(&self, len: usize, min_chunk: usize) -> usize {
        if self.threads <= 1 || len == 0 {
            return 1;
        }
        (len / min_chunk.max(1)).clamp(1, self.threads * 2)
    }

    /// Run `f(task_index, range)` for each of the given index ranges
    /// (caller-chosen boundaries — e.g. Dewey-aligned partitions) and
    /// collect results in range order. One range, or a single-threaded
    /// pool, runs inline.
    pub fn map_ranges<R, F>(&self, ranges: &[std::ops::Range<usize>], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
    {
        match self.try_map_ranges(ranges, f) {
            Ok(out) => out,
            Err(_) => panic!("ppf-pool: a scoped task panicked"),
        }
    }

    /// Like [`Pool::map_ranges`], but a panicking task yields
    /// `Err(TaskPanic)` after all sibling tasks drained, instead of
    /// re-raising the panic on the calling thread.
    pub fn try_map_ranges<R, F>(
        &self,
        ranges: &[std::ops::Range<usize>],
        f: F,
    ) -> Result<Vec<R>, TaskPanic>
    where
        R: Send,
        F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
    {
        if ranges.len() <= 1 || self.threads <= 1 {
            return Ok(ranges
                .iter()
                .enumerate()
                .map(|(i, r)| f(i, r.clone()))
                .collect());
        }
        let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        self.try_scope(|s| {
            let tasks: Vec<_> = ranges
                .iter()
                .enumerate()
                .map(|(i, range)| {
                    let slot = &slots[i];
                    let f = &f;
                    let range = range.clone();
                    move || {
                        *lock_unpoisoned(slot) = Some(f(i, range));
                    }
                })
                .collect();
            s.spawn_batch(tasks);
        })?;
        Ok(slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("scoped task completed")
            })
            .collect())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Workers notice immediately (the notify is taken under the
        // sleep lock, closing the check-then-wait race) and exit; they
        // are not joined (a pool replaced mid-flight may be dropped from
        // a thread that must not block).
        self.shared.shutdown.store(true, SeqCst);
        let guard = lock_unpoisoned(&self.shared.sleep);
        self.shared.wake.notify_all();
        drop(guard);
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panicked: AtomicBool,
    /// Message of the first task panic, for the `TaskPanic` error.
    panic_msg: Mutex<Option<String>>,
}

/// Spawn handle passed to the closure of [`Pool::scope`].
pub struct Scope<'env> {
    pool: &'env Pool,
    state: Arc<ScopeState>,
    /// Invariant over 'env, like `std::thread::Scope`.
    _marker: std::marker::PhantomData<std::cell::Cell<&'env ()>>,
}

impl<'env> Scope<'env> {
    /// Wrap a user closure in the scope's panic-capture + pending
    /// bookkeeping. The returned closure must run exactly once.
    fn wrap(&self, f: impl FnOnce() + Send + 'env) -> impl FnOnce() + Send + 'env {
        self.state.pending.fetch_add(1, SeqCst);
        let state = self.state.clone();
        move || {
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                let mut slot = lock_unpoisoned(&state.panic_msg);
                if slot.is_none() {
                    *slot = Some(payload_message(payload.as_ref()));
                }
                drop(slot);
                state.panicked.store(true, SeqCst);
            }
            state.pending.fetch_sub(1, SeqCst);
        }
    }

    /// Erase a wrapped task's lifetime for queue storage.
    ///
    /// SAFETY (for callers): `Pool::scope` does not return until
    /// `pending` drops to zero — every spawned job has run to completion
    /// (or unwound) — so no borrow captured by the job is dangling while
    /// it is queued or running. The lifetime is erased only for storage.
    fn erase(task: impl FnOnce() + Send + 'env) -> Job {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        unsafe { std::mem::transmute(job) }
    }

    /// Spawn a task that may borrow from the enclosing scope. With no
    /// workers (single-thread pool) the task runs immediately inline.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        let task = self.wrap(f);
        if self.pool.shared.locals.is_empty() {
            task();
            return;
        }
        self.pool.shared.push(Self::erase(task));
    }

    /// Spawn a whole batch of tasks with a single wakeup decision: one
    /// parked worker is woken for a single job, all of them for a real
    /// fan-out — instead of `notify_one` per task, most of which land
    /// while every worker is already awake.
    pub fn spawn_batch<F: FnOnce() + Send + 'env>(&self, fs: Vec<F>) {
        if self.pool.shared.locals.is_empty() {
            for f in fs {
                self.wrap(f)();
            }
            return;
        }
        let jobs: Vec<Job> = fs.into_iter().map(|f| Self::erase(self.wrap(f))).collect();
        if !jobs.is_empty() {
            self.pool.shared.push_batch(jobs);
        }
    }
}

/// Split `0..len` into `chunks` contiguous ranges differing in length by
/// at most one.
pub fn even_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.clamp(1, len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut at = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(at..at + size);
        at += size;
    }
    out
}

// ----- process-wide pool -----

/// Invalid `PPF_THREADS` values seen (each also logs one warning line).
/// Mirrored into the metrics registry as `pool.env_parse_errors` by
/// `ppf_core` — a typo'd deployment must be visible, not silently run at
/// a default thread count.
static ENV_PARSE_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Malformed `PPF_THREADS` values observed since process start.
pub fn env_parse_errors() -> u64 {
    ENV_PARSE_ERRORS.load(Relaxed)
}

/// Parse one `PPF_THREADS` value. Invalid input returns `None`, bumps
/// [`env_parse_errors`], and logs a warning naming the fallback —
/// split out from the env read so tests can exercise it directly.
fn parse_env_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse() {
        Ok(n) => Some(n),
        Err(_) => {
            ENV_PARSE_ERRORS.fetch_add(1, Relaxed);
            eprintln!(
                "ppf-pool: ignoring invalid PPF_THREADS={raw:?} (want a non-negative \
                 integer); falling back to available parallelism"
            );
            None
        }
    }
}

fn env_threads() -> Option<usize> {
    parse_env_threads(&std::env::var("PPF_THREADS").ok()?)
}

/// Default parallelism: `PPF_THREADS` if set and valid (0 and 1 both
/// mean serial), else the machine's available parallelism. An *invalid*
/// `PPF_THREADS` also falls back, but is counted ([`env_parse_errors`])
/// and logged rather than silently ignored.
///
/// Precedence: the environment variable is read once, when the global
/// pool is first touched; a later [`set_threads`] call always wins (it
/// replaces the pool outright and never re-reads the environment).
pub fn default_threads() -> usize {
    env_threads()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

fn global_slot() -> &'static RwLock<Arc<Pool>> {
    static GLOBAL: OnceLock<RwLock<Arc<Pool>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(Pool::new(default_threads()))))
}

/// The process-wide pool. Cheap to call (one `RwLock` read + `Arc`
/// clone); hold the handle across one operation, not forever — ­
/// [`set_threads`] replaces the pool and old handles keep the old size.
pub fn global() -> Arc<Pool> {
    global_slot()
        .read()
        .unwrap_or_else(|poisoned| {
            POISON_RECOVERIES.fetch_add(1, Relaxed);
            poisoned.into_inner()
        })
        .clone()
}

/// Replace the process-wide pool with one of `threads` total lanes (the
/// programmatic counterpart of `PPF_THREADS`). In-flight scopes on the
/// old pool finish unaffected; its workers then exit.
pub fn set_threads(threads: usize) {
    *global_slot().write().unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Relaxed);
        poisoned.into_inner()
    }) = Arc::new(Pool::new(threads));
}

/// Configured parallelism of the current process-wide pool.
pub fn current_threads() -> usize {
    global().threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn even_ranges_cover_everything() {
        for len in [0usize, 1, 7, 64, 65] {
            for chunks in [1usize, 2, 3, 8, 100] {
                let rs = even_ranges(len, chunks);
                let mut at = 0;
                for r in &rs {
                    assert_eq!(r.start, at);
                    at = r.end;
                }
                assert_eq!(at, len);
                let max = rs.iter().map(|r| r.len()).max().unwrap_or(0);
                let min = rs.iter().map(|r| r.len()).min().unwrap_or(0);
                assert!(max - min <= 1, "len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn parallel_map_matches_serial() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let items: Vec<u64> = (0..10_000).collect();
            let partials = pool.parallel_map(&items, 64, |_, chunk| chunk.iter().sum::<u64>());
            let total: u64 = partials.iter().sum();
            assert_eq!(total, items.iter().sum::<u64>(), "threads={threads}");
        }
    }

    #[test]
    fn scoped_tasks_borrow_and_complete() {
        let pool = Pool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Relaxed), 100);
    }

    #[test]
    fn map_ranges_preserves_order() {
        let pool = Pool::new(3);
        let ranges = even_ranges(1000, 7);
        let got = pool.map_ranges(&ranges, |i, r| (i, r.start));
        for (i, (idx, start)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*start, ranges[i].start);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.parallel_map(&items, 1, |_, c| c.len());
        assert_eq!(out.iter().sum::<usize>(), 100);
        assert_eq!(pool.tasks_executed(), 0, "no workers, no queued tasks");
    }

    #[test]
    fn panic_propagates_after_drain() {
        let pool = Pool::new(2);
        let done = AtomicU64::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    s.spawn(|| {
                        done.fetch_add(1, Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err());
        assert_eq!(done.load(Relaxed), 10, "non-panicking tasks still ran");
    }

    #[test]
    fn try_scope_reports_task_panic_with_message() {
        let pool = Pool::new(2);
        let done = AtomicU64::new(0);
        let r = pool.try_scope(|s| {
            s.spawn(|| panic!("chunk 3 exploded"));
            for _ in 0..10 {
                s.spawn(|| {
                    done.fetch_add(1, Relaxed);
                });
            }
        });
        let err = r.unwrap_err();
        assert!(err.message.contains("chunk 3 exploded"), "{err}");
        assert_eq!(done.load(Relaxed), 10, "non-panicking tasks still ran");
        // The pool remains serviceable after the panic.
        let items: Vec<u64> = (0..1000).collect();
        let partials = pool.parallel_map(&items, 16, |_, c| c.iter().sum::<u64>());
        assert_eq!(partials.iter().sum::<u64>(), items.iter().sum::<u64>());
    }

    #[test]
    fn try_map_ranges_reports_task_panic() {
        let pool = Pool::new(4);
        let ranges = even_ranges(1000, 8);
        let r = pool.try_map_ranges(&ranges, |i, r| {
            if i == 5 {
                panic!("range {i} failed");
            }
            r.len()
        });
        assert!(r.is_err());
        // And succeeds when nothing panics.
        let ok = pool.try_map_ranges(&ranges, |_, r| r.len()).unwrap();
        assert_eq!(ok.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn active_scopes_tracks_saturation() {
        let pool = Pool::new(2);
        assert_eq!(pool.active_scopes(), 0);
        assert!(!pool.is_saturated());
        pool.scope(|_| {
            assert_eq!(pool.active_scopes(), 1);
        });
        assert_eq!(pool.active_scopes(), 0);
        let single = Pool::new(1);
        assert!(single.is_saturated(), "serial pools never fan out");
    }

    #[test]
    fn invalid_env_threads_is_counted_not_silent() {
        let before = env_parse_errors();
        assert_eq!(parse_env_threads("not-a-number"), None);
        assert_eq!(parse_env_threads("-3"), None);
        assert_eq!(env_parse_errors(), before + 2);
        // Valid values (including surrounding whitespace) parse cleanly
        // and leave the counter alone.
        assert_eq!(parse_env_threads(" 4 "), Some(4));
        assert_eq!(parse_env_threads("0"), Some(0));
        assert_eq!(env_parse_errors(), before + 2);
    }

    #[test]
    fn profiler_hooks_emit_worker_timelines() {
        // The profiler is process-global; no other test in this binary
        // attaches it, so attach/detach here is race-free.
        let pool = Pool::new(4);
        assert!(obs::profile::attach(), "no other attachment expected");
        let items: Vec<u64> = (0..50_000).collect();
        for _ in 0..10 {
            let partials = pool.parallel_map(&items, 512, |_, c| c.iter().sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), items.iter().sum::<u64>());
        }
        let p = obs::profile::detach().expect("attached above");
        let timelines = p.timelines();
        let workers: Vec<_> = timelines
            .iter()
            .filter(|t| t.name.starts_with("ppf-pool-"))
            .collect();
        assert!(
            !workers.is_empty(),
            "no worker lanes recorded: {timelines:?}"
        );
        let tasks: u64 = workers.iter().map(|t| t.tasks).sum();
        assert!(tasks > 0, "workers recorded no task spans: {workers:?}");
        // Steal accounting is live regardless of the profiler.
        assert!(pool.tasks_executed() > 0);
        let _ = pool.steal_attempt_count(); // accessor is wired
    }

    #[test]
    fn spawn_batch_runs_every_task() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let counter = AtomicU64::new(0);
            pool.scope(|s| {
                let tasks: Vec<_> = (0..200)
                    .map(|_| {
                        let counter = &counter;
                        move || {
                            counter.fetch_add(1, Relaxed);
                        }
                    })
                    .collect();
                s.spawn_batch(tasks);
                // An empty batch is a no-op, not a hang.
                s.spawn_batch(Vec::<fn()>::new());
            });
            assert_eq!(counter.load(Relaxed), 200, "threads={threads}");
        }
    }

    #[test]
    fn lifo_slot_accounting_is_wired() {
        let pool = Pool::new(4);
        // Many rounds of small fan-outs: some tasks will be picked out of
        // the LIFO slot by their owner, some stolen — either way every
        // task runs exactly once and the counters stay consistent.
        for _ in 0..50 {
            let counter = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {
                        counter.fetch_add(1, Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Relaxed), 16);
        }
        // The accessor is wired; hits are machine-dependent (the caller
        // may drain slots first), so only monotonicity is asserted.
        let hits = pool.lifo_hit_count();
        assert!(hits <= 50 * 16);
    }

    #[test]
    fn steal_half_rebalances_without_losing_tasks() {
        let pool = Pool::new(4);
        for round in 0..20 {
            let counter = AtomicU64::new(0);
            let n: u64 = 64 + round;
            pool.scope(|s| {
                let tasks: Vec<_> = (0..n)
                    .map(|_| {
                        let counter = &counter;
                        move || {
                            counter.fetch_add(1, Relaxed);
                        }
                    })
                    .collect();
                s.spawn_batch(tasks);
            });
            assert_eq!(counter.load(Relaxed), n, "round={round}");
        }
    }

    #[test]
    fn global_pool_resizes() {
        // Serialize against other tests touching the global pool.
        set_threads(2);
        assert_eq!(current_threads(), 2);
        set_threads(1);
        assert_eq!(current_threads(), 1);
    }
}
