//! End-to-end hot-reload tests: the `reload` verb swaps snapshots under
//! live traffic, failures leave the old snapshot serving, responses are
//! version-stamped, and `health` reports the serving snapshot.
//!
//! The chaos-gated tests at the bottom (run with `--features chaos`) use
//! probability-1 `reload_fault` specs so every assertion is about
//! guaranteed behaviour, not sampling.

use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use ppf_core::{ReloadError, SharedEngine, XmlDb};
use ppf_server::{
    serve, serve_with_reload, Client, ErrorKind, ReloadFn, ServerConfig, ServerHandle, Verb,
};
use xmlschema::{parse_schema, Schema};

const IO: Duration = Duration::from_secs(10);

fn schema() -> Schema {
    parse_schema(
        "root lib\n\
         lib = book*\n\
         book @id = title\n\
         title : text\n",
    )
    .expect("schema")
}

fn build_db(books: usize) -> Result<XmlDb, ReloadError> {
    let mut db = XmlDb::new(&schema())?;
    let mut xml = String::from("<lib>");
    for i in 0..books {
        xml.push_str(&format!("<book id='b{i}'><title>T{i}</title></book>"));
    }
    xml.push_str("</lib>");
    db.load_xml(&xml)?;
    db.finalize()?;
    Ok(db)
}

/// Serve with a reload source that grows by one book per rebuild, so
/// each swap is observable in the row count.
fn start_reloadable(books: usize, cfg: ServerConfig) -> (ServerHandle, String, Arc<AtomicUsize>) {
    let rebuilds = Arc::new(AtomicUsize::new(0));
    let counter = rebuilds.clone();
    let reloader: ReloadFn = Arc::new(move || {
        let n = books + 1 + counter.fetch_add(1, SeqCst);
        build_db(n)
    });
    let engine = SharedEngine::new(build_db(books).expect("seed db"));
    let handle = serve_with_reload(engine, "127.0.0.1:0", cfg, Some(reloader)).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr, rebuilds)
}

fn stop(handle: ServerHandle) {
    handle.shutdown();
    handle.join();
}

fn rows(body: &str) -> usize {
    body.strip_prefix("rows ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("rows header")
}

#[test]
fn reload_verb_swaps_and_stamps_versions() {
    let (handle, addr, _) = start_reloadable(3, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");

    let resp = c.request("q1", Verb::Query, &[], "/lib/book").expect("io");
    assert_eq!(resp.version(), Some(1), "first snapshot is version 1");
    assert_eq!(rows(&resp.result.expect("ok")), 3);

    let resp = c.request("r1", Verb::Reload, &[], "").expect("io");
    assert_eq!(resp.version(), Some(2));
    let body = resp.result.expect("reload ok");
    assert!(body.starts_with("reloaded\n"), "body: {body}");
    assert!(body.contains("snapshot_version: 2"), "body: {body}");
    assert!(body.contains("documents: 1"), "body: {body}");

    let resp = c.request("q2", Verb::Query, &[], "/lib/book").expect("io");
    assert_eq!(resp.version(), Some(2));
    assert_eq!(
        rows(&resp.result.expect("ok")),
        4,
        "one book grown per rebuild"
    );

    // explain/analyze pin the same serving snapshot and stamp it too.
    let resp = c
        .request("e1", Verb::Explain, &[], "/lib/book")
        .expect("io");
    assert_eq!(resp.version(), Some(2));
    assert!(!resp.result.expect("explain ok").is_empty());

    stop(handle);
}

#[test]
fn health_reports_the_serving_snapshot() {
    let (handle, addr, _) = start_reloadable(5, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");

    let body = c
        .request("h1", Verb::Health, &[], "")
        .expect("io")
        .result
        .expect("ok");
    assert!(body.contains("snapshot_version: 1"), "body: {body}");
    assert!(body.contains("documents: 1"), "body: {body}");
    assert!(body.contains("loaded_at_unix: "), "body: {body}");
    assert!(body.contains("tables: "), "body: {body}");
    assert!(body.contains("rows: "), "body: {body}");

    c.request("r1", Verb::Reload, &[], "")
        .expect("io")
        .result
        .expect("reload ok");
    let resp = c.request("h2", Verb::Health, &[], "").expect("io");
    assert_eq!(resp.version(), Some(2));
    assert!(resp.result.expect("ok").contains("snapshot_version: 2"));

    stop(handle);
}

#[test]
fn reload_without_a_source_is_unsupported() {
    let engine = SharedEngine::new(build_db(2).expect("db"));
    let handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr, IO).expect("connect");
    let resp = c.request("r1", Verb::Reload, &[], "").expect("io");
    let (kind, msg) = resp.result.expect_err("must be unsupported");
    assert_eq!(kind, ErrorKind::Unsupported);
    assert!(msg.contains("no reload source"), "msg: {msg}");
    stop(handle);
}

#[test]
fn failed_reload_leaves_old_snapshot_serving() {
    let fail = Arc::new(AtomicUsize::new(1));
    let gate = fail.clone();
    let reloader: ReloadFn = Arc::new(move || {
        if gate.load(SeqCst) == 1 {
            return Err(ReloadError::io("disk on fire"));
        }
        build_db(9)
    });
    let engine = SharedEngine::new(build_db(4).expect("db"));
    let handle = serve_with_reload(
        engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        Some(reloader),
    )
    .expect("bind");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr, IO).expect("connect");

    let baseline = c
        .request("q1", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .expect("ok");

    let resp = c.request("r1", Verb::Reload, &[], "").expect("io");
    let (kind, msg) = resp.result.expect_err("reload must fail");
    assert_eq!(kind, ErrorKind::Exec);
    assert!(msg.contains("disk on fire"), "msg: {msg}");

    // Byte-identical replay from the untouched old snapshot.
    let resp = c.request("q2", Verb::Query, &[], "/lib/book").expect("io");
    assert_eq!(resp.version(), Some(1));
    assert_eq!(resp.result.expect("ok"), baseline);

    // Clearing the gate lets the very next reload land.
    fail.store(0, SeqCst);
    let resp = c.request("r2", Verb::Reload, &[], "").expect("io");
    assert_eq!(resp.version(), Some(2));
    resp.result.expect("reload ok");
    let resp = c.request("q3", Verb::Query, &[], "/lib/book").expect("io");
    assert_eq!(rows(&resp.result.expect("ok")), 9);

    stop(handle);
}

#[test]
fn reload_refused_while_draining() {
    let (handle, addr, _) = start_reloadable(2, ServerConfig::default());

    // Server-side refusal on the SIGHUP path once a drain has begun.
    handle.shutdown();
    let err = handle.reload().expect_err("draining must refuse reload");
    assert_eq!(err, ReloadError::Draining);
    assert_eq!(err.kind(), "draining");
    assert!(!err.is_retryable());

    let _ = addr;
    handle.join();
}

#[test]
fn handle_reload_works_like_the_verb() {
    let (handle, addr, _) = start_reloadable(2, ServerConfig::default());
    assert_eq!(handle.reload().expect("reload"), 2);
    assert_eq!(handle.reload().expect("reload"), 3);

    let mut c = Client::connect(&addr, IO).expect("connect");
    let resp = c.request("q1", Verb::Query, &[], "/lib/book").expect("io");
    assert_eq!(resp.version(), Some(3));
    assert_eq!(rows(&resp.result.expect("ok")), 4, "2 books + 2 rebuilds");
    stop(handle);
}

#[test]
fn spawn_failure_sheds_reload_with_typed_overload() {
    let (handle, addr, _) = start_reloadable(2, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");

    // Round-trip once before arming the hook: on the sync core the
    // server's connection-thread spawn happens after `connect` returns
    // (accept races the handshake) and must not eat the armed failure.
    c.request("h0", Verb::Health, &[], "")
        .expect("io")
        .result
        .expect("ok");

    ppf_server::server::test_hooks::fail_next_spawns(1);
    let resp = c.request("r1", Verb::Reload, &[], "").expect("io");
    let (kind, msg) = resp.result.expect_err("must shed");
    assert_eq!(kind, ErrorKind::Overload);
    assert!(msg.contains("reload worker"), "msg: {msg}");

    // The shed released the connection's pipelining slot: both queries
    // and reloads still work.
    let resp = c.request("q1", Verb::Query, &[], "/lib/book").expect("io");
    assert_eq!(rows(&resp.result.expect("ok")), 2);
    let resp = c.request("r2", Verb::Reload, &[], "").expect("io");
    assert_eq!(resp.version(), Some(2));
    resp.result.expect("reload ok");

    stop(handle);
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;

    #[test]
    fn injected_reload_panic_and_io_faults_never_disturb_serving() {
        let (handle, addr, _) = start_reloadable(3, ServerConfig::default());
        let mut c = Client::connect(&addr, IO).expect("connect");
        let baseline = c
            .request("q0", Verb::Query, &[], "/lib/book")
            .expect("io")
            .result
            .expect("ok");

        for (spec, expect_msg) in [
            ("reload_fault=panic:1", "panic"),
            ("reload_fault=io:1", "I/O"),
        ] {
            c.request("ch", Verb::Chaos, &[], spec)
                .expect("io")
                .result
                .expect("chaos armed");
            let resp = c.request("r", Verb::Reload, &[], "").expect("io");
            let (kind, msg) = resp.result.expect_err("injected fault must fail reload");
            assert_eq!(kind, ErrorKind::Exec);
            assert!(msg.contains(expect_msg), "spec {spec}: msg {msg}");

            // Old snapshot still serving, byte-identical.
            let resp = c.request("q", Verb::Query, &[], "/lib/book").expect("io");
            assert_eq!(resp.version(), Some(1));
            assert_eq!(resp.result.expect("ok"), baseline);
        }

        // Chaos off: reload succeeds on the first clean attempt.
        c.request("ch", Verb::Chaos, &[], "off")
            .expect("io")
            .result
            .expect("chaos off");
        let resp = c.request("r", Verb::Reload, &[], "").expect("io");
        assert_eq!(resp.version(), Some(2));
        resp.result.expect("reload ok");

        stop(handle);
    }

    #[test]
    fn slow_reload_stages_off_the_serving_path() {
        let (handle, addr, _) = start_reloadable(3, ServerConfig::default());
        let mut c = Client::connect(&addr, IO).expect("connect");
        c.request("ch", Verb::Chaos, &[], "reload_fault=slow:1:300")
            .expect("io")
            .result
            .expect("chaos armed");

        // Pipeline the reload, then run queries on a second connection
        // while it stages: they must answer promptly from version 1.
        c.send("r", Verb::Reload, &[], "").expect("send");
        let mut c2 = Client::connect(&addr, IO).expect("connect");
        let t0 = std::time::Instant::now();
        let resp = c2.request("q1", Verb::Query, &[], "/lib/book").expect("io");
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "query must not wait out the 300ms staging sleep"
        );
        assert_eq!(resp.version(), Some(1));
        assert_eq!(rows(&resp.result.expect("ok")), 3);

        let resp = c.recv().expect("reload response");
        assert_eq!(resp.id, "r");
        assert_eq!(resp.version(), Some(2));
        resp.result.expect("slow reload still lands");

        stop(handle);
    }
}
