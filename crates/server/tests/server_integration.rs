//! End-to-end protocol tests: a real `serve()` loop on a loopback port,
//! exercised through the bundled [`Client`].
//!
//! The chaos-gated tests at the bottom (run with `--features chaos`) use
//! deterministic fault probabilities (`slow=1`, `panic=1`, `drop=1:pre`)
//! so every assertion is about guaranteed behaviour, not sampling.

use std::time::Duration;

use ppf_core::{SharedEngine, XmlDb};
use ppf_server::{serve, Client, ErrorKind, ServerConfig, ServerHandle, Verb};
use xmlschema::parse_schema;

const IO: Duration = Duration::from_secs(10);

fn engine(books: usize) -> SharedEngine {
    let schema = parse_schema(
        "root lib\n\
         lib = book*\n\
         book @id = title\n\
         title : text\n",
    )
    .expect("schema");
    let mut db = XmlDb::new(&schema).expect("db");
    let mut xml = String::from("<lib>");
    for i in 0..books {
        xml.push_str(&format!("<book id='b{i}'><title>T{i}</title></book>"));
    }
    xml.push_str("</lib>");
    db.load_xml(&xml).expect("load");
    db.finalize().expect("indexes");
    SharedEngine::new(db)
}

fn start(books: usize, cfg: ServerConfig) -> (ServerHandle, String) {
    let handle = serve(engine(books), "127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn stop(handle: ServerHandle) {
    handle.shutdown();
    handle.join();
}

#[test]
fn read_verbs_round_trip() {
    let (handle, addr) = start(600, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");

    let resp = c.request("q1", Verb::Query, &[], "/lib/book").expect("io");
    let body = resp.result.expect("query ok");
    assert!(body.starts_with("rows 600\n"), "unexpected body: {body}");

    let resp = c
        .request("e1", Verb::Explain, &[], "/lib/book")
        .expect("io");
    assert!(!resp.result.expect("explain ok").is_empty());

    let resp = c
        .request("a1", Verb::Analyze, &[], "/lib/book")
        .expect("io");
    let body = resp.result.expect("analyze ok");
    assert!(body.contains("rows"), "analyze body lacks actuals: {body}");

    let resp = c.request("s1", Verb::Stats, &[], "").expect("io");
    let body = resp.result.expect("stats ok");
    assert!(body.contains("server.queries"), "stats body: {body}");

    let resp = c.request("h1", Verb::Health, &[], "").expect("io");
    let body = resp.result.expect("health ok");
    assert!(body.contains("status: ok"), "health body: {body}");

    stop(handle);
}

#[test]
fn engine_errors_come_back_typed() {
    let (handle, addr) = start(10, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");

    let resp = c.request("bad", Verb::Query, &[], "///").expect("io");
    let (kind, _) = resp.result.expect_err("bad XPath must fail");
    assert_eq!(kind, ErrorKind::Parse);

    // maxrows below the result size trips the engine's row limit.
    let resp = c
        .request("cap", Verb::Query, &[("maxrows", "3")], "/lib/book")
        .expect("io");
    let (kind, _) = resp.result.expect_err("row budget must trip");
    assert_eq!(kind, ErrorKind::Limit);

    // The connection is still healthy after both errors.
    let resp = c.request("ok", Verb::Query, &[], "/lib/book").expect("io");
    assert!(resp.result.expect("ok").starts_with("rows 10\n"));

    stop(handle);
}

#[test]
fn oversized_results_are_truncated_not_dropped() {
    let cfg = ServerConfig {
        max_response_rows: 10,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(120, cfg);
    let mut c = Client::connect(&addr, IO).expect("connect");
    let body = c
        .request("t", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .expect("ok");
    assert!(body.starts_with("rows 120\n"), "body: {body}");
    assert!(body.ends_with("truncated 110\n"), "body: {body}");
    stop(handle);
}

#[test]
fn malformed_requests_get_proto_errors() {
    let (handle, addr) = start(10, ServerConfig::default());

    // Well-framed but unparsable header: typed proto error, conn stays up.
    let mut c = Client::connect(&addr, IO).expect("connect");
    let resp = c.request("x", Verb::Query, &[], "/lib/book").expect("io");
    assert!(resp.result.is_ok());
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.set_read_timeout(Some(IO)).unwrap();
        let payload = "id-without-a-verb";
        raw.write_all(format!("{}\n{payload}", payload.len()).as_bytes())
            .unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        let frame = ppf_server::proto::read_frame(&mut reader)
            .expect("frame")
            .expect("response");
        let resp = ppf_server::proto::parse_response(&frame).expect("parse");
        let (kind, _) = resp.result.expect_err("must be an error");
        assert_eq!(kind, ErrorKind::Proto);

        // Broken framing (unparsable length header): proto error, close.
        raw.write_all(b"notalength\n").unwrap();
        // The server may sever before the error lands; if a frame does
        // arrive, it must be the typed proto error.
        if let Ok(Some(frame)) = ppf_server::proto::read_frame(&mut reader) {
            let resp = ppf_server::proto::parse_response(&frame).expect("parse");
            assert_eq!(resp.result.expect_err("err").0, ErrorKind::Proto);
        }
    }
    stop(handle);
}

#[test]
fn slowlog_records_queries_with_phase_breakdown() {
    // A zero threshold logs every query, so one query is enough to make
    // the log deterministic.
    let cfg = ServerConfig {
        slow_query: Duration::ZERO,
        slowlog_capacity: 8,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(50, cfg);
    let mut c = Client::connect(&addr, IO).expect("connect");

    // Before any query the log is empty but the verb still answers.
    let body = c
        .request("sl0", Verb::Slowlog, &[], "")
        .expect("io")
        .result
        .expect("slowlog ok");
    assert!(body.contains("slowlog empty"), "body: {body}");

    assert!(c
        .request("q1", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .is_ok());
    // Errors are logged too, with their typed outcome.
    assert!(c
        .request("q2", Verb::Query, &[("maxrows", "3")], "/lib/book")
        .expect("io")
        .result
        .is_err());

    let body = c
        .request("sl1", Verb::Slowlog, &[], "")
        .expect("io")
        .result
        .expect("slowlog ok");
    assert!(body.contains("newest first"), "body: {body}");
    assert!(body.contains("/lib/book"), "query text missing: {body}");
    assert!(body.contains("exec="), "phase breakdown missing: {body}");
    assert!(body.contains("rows=50"), "row count missing: {body}");
    assert!(body.contains(" limit "), "error outcome missing: {body}");
    // Newest first: the failed q2 renders before the successful q1.
    let q2_pos = body.find(" q2 ").expect("q2 logged");
    let q1_pos = body.find(" q1 ").expect("q1 logged");
    assert!(q2_pos < q1_pos, "not newest-first: {body}");

    // Satellite: per-verb latency histograms show up in `stats`.
    let stats = c
        .request("st", Verb::Stats, &[], "")
        .expect("io")
        .result
        .expect("stats ok");
    assert!(
        stats.contains("server.verb_ns.query"),
        "per-verb histogram missing: {stats}"
    );
    assert!(
        stats.contains("engine.query_ns"),
        "engine latency histogram missing: {stats}"
    );
    stop(handle);
}

#[test]
fn slowlog_ring_is_bounded_and_can_be_disabled() {
    let cfg = ServerConfig {
        slow_query: Duration::ZERO,
        slowlog_capacity: 2,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(5, cfg);
    let mut c = Client::connect(&addr, IO).expect("connect");
    for n in 0..5 {
        assert!(c
            .request(&format!("q{n}"), Verb::Query, &[], "/lib/book")
            .expect("io")
            .result
            .is_ok());
    }
    let body = c
        .request("sl", Verb::Slowlog, &[], "")
        .expect("io")
        .result
        .expect("slowlog ok");
    assert!(body.contains("2 of cap 2"), "ring not bounded: {body}");
    assert!(
        body.contains(" q4 ") && body.contains(" q3 "),
        "body: {body}"
    );
    assert!(!body.contains(" q0 "), "oldest entry not evicted: {body}");
    stop(handle);

    // Capacity zero disables logging entirely.
    let cfg = ServerConfig {
        slow_query: Duration::ZERO,
        slowlog_capacity: 0,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(5, cfg);
    let mut c = Client::connect(&addr, IO).expect("connect");
    assert!(c
        .request("q", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .is_ok());
    let body = c
        .request("sl", Verb::Slowlog, &[], "")
        .expect("io")
        .result
        .expect("slowlog ok");
    assert!(body.contains("slowlog empty"), "body: {body}");
    stop(handle);
}

#[test]
fn cancel_of_unknown_id_is_not_found() {
    let (handle, addr) = start(10, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");
    let body = c
        .request("c1", Verb::Cancel, &[], "no-such-query")
        .expect("io")
        .result
        .expect("cancel ok");
    assert_eq!(body, "not-found");
    stop(handle);
}

#[test]
fn per_connection_cap_sheds_typed_overload() {
    // A cap of zero makes the very first query overload — deterministic.
    let cfg = ServerConfig {
        per_conn_cap: 0,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(10, cfg);
    let mut c = Client::connect(&addr, IO).expect("connect");
    let resp = c.request("q", Verb::Query, &[], "/lib/book").expect("io");
    let (kind, msg) = resp.result.expect_err("must shed");
    assert_eq!(kind, ErrorKind::Overload);
    assert!(kind.is_retryable());
    assert!(msg.contains("conn_cap"), "msg: {msg}");
    stop(handle);
}

#[test]
fn shutdown_drains_and_rejects_new_work() {
    let (handle, addr) = start(10, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");
    assert!(c
        .request("q1", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .is_ok());

    // Pipeline the drain and a query behind it: the query must be turned
    // away with the typed shutdown kind (or the conn closed under us —
    // also a legal drain outcome).
    c.send("bye", Verb::Shutdown, &[], "").expect("send");
    // The drain can tear the connection down before this pipelined send
    // lands (broken pipe) — also a legal outcome, like the recv below.
    let late_sent = c.send("late", Verb::Query, &[], "/lib/book").is_ok();
    let resp = c.recv().expect("shutdown ack");
    assert_eq!(resp.id, "bye");
    assert_eq!(resp.result.expect("ok"), "draining");
    // An I/O error here means the drain already tore the conn down —
    // also a legal outcome.
    if late_sent {
        if let Ok(resp) = c.recv() {
            assert_eq!(resp.id, "late");
            let (kind, _) = resp.result.expect_err("must be rejected");
            assert_eq!(kind, ErrorKind::Shutdown);
        }
    }

    handle.join();
    // The listener is gone: new connections must fail outright or be
    // unable to complete a request.
    if let Ok(mut late) = Client::connect(&addr, Duration::from_millis(500)) {
        assert!(late.request("post", Verb::Health, &[], "").is_err());
    }
}

#[cfg(not(feature = "chaos"))]
#[test]
fn chaos_verb_is_unsupported_without_the_feature() {
    let (handle, addr) = start(10, ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");
    let resp = c.request("ch", Verb::Chaos, &[], "panic=1").expect("io");
    let (kind, msg) = resp.result.expect_err("must be unsupported");
    assert_eq!(kind, ErrorKind::Unsupported);
    assert!(msg.contains("chaos"), "msg: {msg}");
    assert!(handle.install_chaos("panic=1").is_err());
    stop(handle);
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use ppf_server::AdmissionPolicy;

    #[test]
    fn slow_fault_forces_overload_on_a_full_server() {
        let cfg = ServerConfig {
            max_inflight: 1,
            queue_depth: 0,
            policy: AdmissionPolicy::Shed,
            per_conn_cap: 8,
            ..ServerConfig::default()
        };
        let (handle, addr) = start(10, cfg);
        handle.install_chaos("slow=1:300 seed=1").expect("chaos on");
        let mut c = Client::connect(&addr, IO).expect("connect");
        for n in 0..4 {
            c.send(&format!("q{n}"), Verb::Query, &[], "/lib/book")
                .expect("send");
        }
        let mut ok = 0;
        let mut overload = 0;
        for _ in 0..4 {
            match c.recv().expect("recv").result {
                Ok(_) => ok += 1,
                Err((ErrorKind::Overload, _)) => overload += 1,
                Err((kind, msg)) => panic!("unexpected {kind:?}: {msg}"),
            }
        }
        // One query holds the only slot (sleeping 300ms); the other
        // three arrive while it sleeps and are shed.
        assert_eq!(ok, 1);
        assert_eq!(overload, 3);
        stop(handle);
    }

    #[test]
    fn panic_fault_is_contained_and_server_survives() {
        let (handle, addr) = start(10, ServerConfig::default());
        handle.install_chaos("panic=1 seed=1").expect("chaos on");
        let mut c = Client::connect(&addr, IO).expect("connect");
        let resp = c
            .request("boom", Verb::Query, &[], "/lib/book")
            .expect("io");
        let (kind, msg) = resp.result.expect_err("must fail");
        assert_eq!(kind, ErrorKind::Exec);
        assert!(msg.contains("panic contained"), "msg: {msg}");

        handle.install_chaos("off").expect("chaos off");
        let resp = c
            .request("fine", Verb::Query, &[], "/lib/book")
            .expect("io");
        assert!(resp.result.expect("ok").starts_with("rows 10\n"));
        stop(handle);
    }

    #[test]
    fn cancel_reaches_an_inflight_query() {
        let (handle, addr) = start(10, ServerConfig::default());
        handle.install_chaos("slow=1:500 seed=1").expect("chaos on");
        let mut a = Client::connect(&addr, IO).expect("connect a");
        let mut b = Client::connect(&addr, IO).expect("connect b");
        a.send("victim", Verb::Query, &[], "/lib/book")
            .expect("send");
        std::thread::sleep(Duration::from_millis(100));
        let body = b
            .request("killer", Verb::Cancel, &[], "victim")
            .expect("io")
            .result
            .expect("cancel ok");
        assert_eq!(body, "cancelled");
        let resp = a.recv().expect("victim response");
        assert_eq!(resp.id, "victim");
        let (kind, _) = resp.result.expect_err("must be cancelled");
        assert_eq!(kind, ErrorKind::Cancelled);
        stop(handle);
    }

    #[test]
    fn drop_fault_severs_and_the_server_keeps_serving() {
        let (handle, addr) = start(10, ServerConfig::default());
        handle.install_chaos("drop=1:pre seed=1").expect("chaos on");
        let mut c = Client::connect(&addr, IO).expect("connect");
        c.send("gone", Verb::Query, &[], "/lib/book").expect("send");
        assert!(c.recv().is_err(), "connection must be severed");

        handle.install_chaos("off").expect("chaos off");
        let mut c2 = Client::connect(&addr, IO).expect("reconnect");
        let resp = c2
            .request("after", Verb::Query, &[], "/lib/book")
            .expect("io");
        assert!(resp.result.expect("ok").starts_with("rows 10\n"));
        stop(handle);
    }
}
