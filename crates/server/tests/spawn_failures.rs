//! Thread-spawn exhaustion: the server must shed the one affected
//! request or connection with a typed `[overload]` error and keep
//! serving — the legacy behaviour was an `.expect` panic that killed the
//! accept loop and leaked the connection gauge.
//!
//! The injection hook is a process-global countdown, so these tests
//! serialize on a mutex and consume every armed failure before exiting.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ppf_core::{SharedEngine, XmlDb};
use ppf_server::server::test_hooks;
use ppf_server::{serve, Client, ErrorKind, ServerConfig, ServerHandle, Verb};
use xmlschema::parse_schema;

const IO: Duration = Duration::from_secs(10);

fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn engine() -> SharedEngine {
    let schema = parse_schema(
        "root lib\n\
         lib = book*\n\
         book @id = title\n\
         title : text\n",
    )
    .expect("schema");
    let mut db = XmlDb::new(&schema).expect("db");
    db.load_xml("<lib><book id='b0'><title>T</title></book></lib>")
        .expect("load");
    db.finalize().expect("indexes");
    SharedEngine::new(db)
}

fn start(cfg: ServerConfig) -> (ServerHandle, String) {
    let handle = serve(engine(), "127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn failed_query_worker_spawn_sheds_and_the_server_survives() {
    let _gate = serialize();
    let (handle, addr) = start(ServerConfig::default());
    let mut c = Client::connect(&addr, IO).expect("connect");
    // Prove the connection is fully adopted before arming: on the sync
    // core `connect` returns before the accept loop has spawned the
    // connection thread, and the armed failure must hit the *query*
    // worker spawn, not that one.
    assert!(c
        .request("warm", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .is_ok());

    test_hooks::fail_next_spawns(1);
    let resp = c
        .request("doomed", Verb::Query, &[], "/lib/book")
        .expect("io");
    let (kind, msg) = resp.result.expect_err("spawn failure must shed");
    assert_eq!(kind, ErrorKind::Overload);
    assert!(kind.is_retryable(), "clients must be told to retry");
    assert!(msg.contains("spawn"), "msg: {msg}");

    // The very same connection works on retry: nothing leaked, nothing
    // died, the pipelining gauge was released.
    let resp = c
        .request("retry", Verb::Query, &[], "/lib/book")
        .expect("io");
    assert!(resp.result.expect("ok").starts_with("rows 1\n"));

    // The reservation bookkeeping reconciled: shed + spawn_failures
    // counters moved, and no query slot is stuck.
    let stats = c
        .request("st", Verb::Stats, &[], "")
        .expect("io")
        .result
        .expect("stats ok");
    assert!(
        stats.contains("server.spawn_failures"),
        "spawn_failures counter missing: {stats}"
    );
    assert!(
        stats.contains("server.shed.spawn"),
        "shed.spawn counter missing: {stats}"
    );

    test_hooks::fail_next_spawns(0);
    handle.shutdown();
    handle.join();
}

#[test]
fn failed_connection_thread_spawn_sheds_on_the_sync_core() {
    let _gate = serialize();
    let (handle, addr) = start(ServerConfig {
        sync_conns: true,
        ..ServerConfig::default()
    });
    // Warm connection proves the server is up before the injection.
    let mut warm = Client::connect(&addr, IO).expect("warm connect");
    assert!(warm
        .request("w", Verb::Query, &[], "/lib/book")
        .expect("io")
        .result
        .is_ok());

    test_hooks::fail_next_spawns(1);
    // This arrival cannot get a connection thread: it must receive a
    // typed overload frame (or at worst an immediate close) — while the
    // accept loop itself survives.
    // A refused connect is acceptable shedding too, hence the `if let`.
    if let Ok(mut doomed) = Client::connect(&addr, IO) {
        if let Ok(resp) = doomed.request("d", Verb::Query, &[], "/lib/book") {
            let (kind, _) = resp.result.expect_err("must be shed");
            assert_eq!(kind, ErrorKind::Overload);
        }
    }

    test_hooks::fail_next_spawns(0);
    // The accept loop is alive: fresh connections are served.
    let mut after = Client::connect(&addr, IO).expect("post-failure connect");
    let resp = after
        .request("a", Verb::Query, &[], "/lib/book")
        .expect("io");
    assert!(resp.result.expect("ok").starts_with("rows 1\n"));

    handle.shutdown();
    handle.join();
}
