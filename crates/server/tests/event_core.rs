//! Event-core behaviours that only show up at the socket level: partial
//! frames split across readiness events, short-write resumption through
//! the outbound buffer, timer-wheel idle reaping, and idle-connection
//! scalability (connections without threads).
//!
//! Everything here drives the default (event) core explicitly via
//! `sync_conns: false`, so a CI matrix running the suite under
//! `PPF_SYNC_CONNS=1` still tests what the file name promises.

use std::io::Write;
use std::time::{Duration, Instant};

use ppf_core::{SharedEngine, XmlDb};
use ppf_server::{proto, serve, Client, ServerConfig, ServerHandle, Verb};
use xmlschema::parse_schema;

const IO: Duration = Duration::from_secs(10);

fn engine(books: usize) -> SharedEngine {
    let schema = parse_schema(
        "root lib\n\
         lib = book*\n\
         book @id = title\n\
         title : text\n",
    )
    .expect("schema");
    let mut db = XmlDb::new(&schema).expect("db");
    let mut xml = String::from("<lib>");
    for i in 0..books {
        xml.push_str(&format!("<book id='b{i}'><title>T{i}</title></book>"));
    }
    xml.push_str("</lib>");
    db.load_xml(&xml).expect("load");
    db.finalize().expect("indexes");
    SharedEngine::new(db)
}

fn start(books: usize, cfg: ServerConfig) -> (ServerHandle, String) {
    let cfg = ServerConfig {
        sync_conns: false,
        ..cfg
    };
    let handle = serve(engine(books), "127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn stop(handle: ServerHandle) {
    handle.shutdown();
    handle.join();
}

#[test]
fn health_names_the_event_core() {
    let (handle, addr) = start(5, ServerConfig::default());
    assert!(
        handle.core().starts_with("async("),
        "core: {}",
        handle.core()
    );
    let mut c = Client::connect(&addr, IO).expect("connect");
    let body = c
        .request("h", Verb::Health, &[], "")
        .expect("io")
        .result
        .expect("health ok");
    assert!(body.contains("core: async("), "health body: {body}");
    stop(handle);
}

/// A frame trickled in byte-sized chunks crosses many readiness events;
/// the per-connection [`FrameBuffer`] must accumulate it and answer as
/// if it had arrived whole.
#[test]
fn partial_frame_across_many_readiness_events() {
    let (handle, addr) = start(7, ServerConfig::default());
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.set_read_timeout(Some(IO)).unwrap();
    raw.set_nodelay(true).unwrap();

    let payload = proto::render_request("slow-feed", Verb::Query, &[], "/lib/book");
    let framed = format!("{}\n{payload}", payload.len()).into_bytes();
    // Feed the frame in three slices with real pauses, so the event loop
    // sees separate readable events with an incomplete buffer between.
    let cuts = [framed.len() / 3, 2 * framed.len() / 3, framed.len()];
    let mut sent = 0;
    for cut in cuts {
        raw.write_all(&framed[sent..cut]).unwrap();
        raw.flush().unwrap();
        sent = cut;
        std::thread::sleep(Duration::from_millis(60));
    }

    let mut reader = std::io::BufReader::new(raw);
    let frame = proto::read_frame(&mut reader)
        .expect("read")
        .expect("response");
    let resp = proto::parse_response(&frame).expect("parse");
    assert_eq!(resp.id, "slow-feed");
    assert!(resp.result.expect("ok").starts_with("rows 7\n"));
    stop(handle);
}

/// Pipeline several large responses while the client is not reading:
/// the kernel buffers fill, the event loop takes a short write, parks
/// the tail in the outbound buffer under write interest, and resumes
/// when the client drains. Every byte must arrive, in order.
#[test]
fn short_writes_resume_without_losing_bytes() {
    let (handle, addr) = start(
        30_000,
        ServerConfig {
            per_conn_cap: 8,
            // Six pipelined heavyweight queries on however few cores CI
            // grants: nothing here should queue-timeout.
            max_inflight: 8,
            queue_wait: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(&addr, IO).expect("connect");
    const PIPELINED: usize = 6;
    for n in 0..PIPELINED {
        c.send(&format!("big{n}"), Verb::Query, &[], "/lib/book")
            .expect("send");
    }
    // Let the responses (~200 KB each) pile up against a non-reading
    // client so the outbound buffers actually engage.
    std::thread::sleep(Duration::from_millis(400));
    let mut seen = Vec::new();
    for _ in 0..PIPELINED {
        let resp = c.recv().expect("recv");
        let body = resp.result.expect("ok");
        assert!(body.starts_with("rows 30000\n"), "truncated response");
        // One id per line after the header — a short-changed tail would
        // show up as a wrong line count.
        assert_eq!(body.lines().count(), 30_001, "response tail missing");
        seen.push(resp.id);
    }
    // Responses may complete out of order (parallel workers) but none
    // may be lost or duplicated.
    seen.sort();
    let mut want: Vec<String> = (0..PIPELINED).map(|n| format!("big{n}")).collect();
    want.sort();
    assert_eq!(seen, want);
    stop(handle);
}

/// The timer wheel reaps a connection that stays silent past
/// `idle_timeout` — no 50 ms polling loop involved.
#[test]
fn idle_connections_are_reaped_by_the_timer_wheel() {
    let (handle, addr) = start(
        5,
        ServerConfig {
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    // Well past the idle deadline plus wheel granularity, but far short
    // of hanging the suite if the reap never comes.
    raw.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    let payload = proto::render_request("warm", Verb::Query, &[], "/lib/book");
    raw.write_all(format!("{}\n{payload}", payload.len()).as_bytes())
        .unwrap();
    let mut reader = std::io::BufReader::new(raw);
    let frame = proto::read_frame(&mut reader)
        .expect("read")
        .expect("response");
    assert!(proto::parse_response(&frame).expect("parse").result.is_ok());
    // Now go silent: the next read must end in EOF (the reap), not a
    // read timeout.
    let t0 = Instant::now();
    match proto::read_frame(&mut reader) {
        Ok(None) | Err(_) => {} // EOF or reset: reaped
        Ok(Some(frame)) => panic!("unexpected frame instead of a reap: {frame}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(14),
        "read timed out rather than being reaped"
    );
    stop(handle);
}

/// The scalability point of the whole PR, in miniature: parking many
/// idle connections must not grow the thread count — they are rows in
/// the event loops' maps, not stacks.
#[cfg(target_os = "linux")]
#[test]
fn idle_connections_do_not_cost_threads() {
    fn thread_count() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .unwrap()
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line")
    }

    let (handle, addr) = start(5, ServerConfig::default());
    let baseline = thread_count();
    let mut idlers = Vec::new();
    for _ in 0..64 {
        idlers.push(Client::connect(&addr, IO).expect("connect"));
    }
    // Give the loops a moment to adopt everyone.
    std::thread::sleep(Duration::from_millis(200));
    let with_idlers = thread_count();
    assert!(
        with_idlers <= baseline + 4,
        "64 idle connections grew threads from {baseline} to {with_idlers}"
    );
    // They are all live connections, not half-open ghosts.
    let mut probe = idlers.pop().unwrap();
    let body = probe
        .request("h", Verb::Health, &[], "")
        .expect("io")
        .result
        .expect("health ok");
    let conns: usize = body
        .lines()
        .find_map(|l| l.strip_prefix("active_conns: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("active_conns line");
    assert!(conns >= 64, "expected >= 64 active conns, saw {conns}");
    drop(idlers);
    stop(handle);
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;

    /// Drain with a query in flight: the shutdown ack arrives, the slow
    /// query still completes inside the grace period, and only then does
    /// the loop retire the connection.
    #[test]
    fn drain_waits_for_inflight_queries() {
        let (handle, addr) = start(10, ServerConfig::default());
        handle.install_chaos("slow=1:300 seed=1").expect("chaos on");
        let mut c = Client::connect(&addr, IO).expect("connect");
        c.send("slowpoke", Verb::Query, &[], "/lib/book")
            .expect("send");
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown();
        let resp = c.recv().expect("the drain must not cut an admitted query");
        assert_eq!(resp.id, "slowpoke");
        assert!(resp.result.expect("ok").starts_with("rows 10\n"));
        handle.join();
    }
}
