//! The readiness-driven connection core.
//!
//! A small fixed pool of event-loop threads owns every connection: each
//! loop drives one [`PollBackend`] (epoll on Linux, the portable
//! fallback elsewhere), a map of per-connection state machines, and a
//! coarse timer wheel for idle reaping and close/drain grace periods.
//! Loop 0 additionally owns the listener and deals new connections
//! round-robin across the pool.
//!
//! A connection's life on its loop:
//!
//! * **Readable** — nonblocking reads feed the [`FrameBuffer`]
//!   (partial frames survive arbitrarily many readiness events);
//!   complete frames run through the same `handle_frame` as the sync
//!   core, so verbs, admission, counters and chaos faults behave
//!   identically.
//! * **Writable** — responses land in a per-connection outbound buffer
//!   ([`OutBuf`]); short writes leave the tail buffered and arm write
//!   interest, so no event thread ever blocks in `write`. Query workers
//!   finishing off-loop push their response and ring the loop's wakeup
//!   fd to re-arm write interest.
//! * **Timers** — the idle reap, the close grace for a connection whose
//!   peer vanished mid-query, and the drain deadline are timer-wheel
//!   checks, not 50 ms sleep ticks: an idle connection costs zero CPU
//!   between its (rare) wheel slots.
//!
//! Admission, deadlines, chaos, slowlog and drain all keep their sync
//! semantics: the event loop never blocks — the only blocking admission
//! wait (Queue policy) happens on the query worker thread it would have
//! to spawn anyway.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering::SeqCst;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::frame::FrameBuffer;
use crate::poller::{new_poller, Event, Interest, PollBackend, Waker};
use crate::proto::{self, ErrorKind, Response};
use crate::server::{close_conn, handle_frame, open_conn, Conn, Inner};

/// Token of loop 0's listener registration. Connection tokens start
/// above it; the poller reserves `u64::MAX` for its wakeup channel.
const LISTENER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Hard cap on one connection's buffered outbound bytes. A client that
/// stops reading while pipelining maximum-size responses is severed
/// rather than allowed to balloon the server (4 MiB frames × the
/// per-connection pipelining cap fits comfortably).
const MAX_OUTBUF: usize = 64 << 20;

/// Upper bound on one `wait` sleep, so drain flags and wheel drift are
/// observed even if every wakeup is lost.
const MAX_WAIT: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------------
// Cross-thread surface: what workers and the accept path touch.
// ---------------------------------------------------------------------

/// One event loop's mailbox: freshly accepted sockets to adopt and
/// tokens whose outbound buffers gained bytes, plus the waker that makes
/// the loop look.
pub(crate) struct LoopShared {
    intake: Mutex<Vec<TcpStream>>,
    notes: Mutex<Vec<u64>>,
    waker: Waker,
}

impl LoopShared {
    fn lock_intake(&self) -> MutexGuard<'_, Vec<TcpStream>> {
        self.intake.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_notes(&self) -> MutexGuard<'_, Vec<u64>> {
        self.notes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push_conn(&self, stream: TcpStream) {
        self.lock_intake().push(stream);
        self.waker.wake();
    }

    fn note(&self, token: u64) {
        let mut notes = self.lock_notes();
        // Cheap dedup: bursts of pipelined responses note the same
        // connection back to back.
        if notes.last() != Some(&token) {
            notes.push(token);
        }
        drop(notes);
        self.waker.wake();
    }
}

/// Handles to every loop; lives in `Inner` so `trigger_drain` and the
/// accept path can reach them.
pub(crate) struct EventLoops {
    pub(crate) shared: Vec<Arc<LoopShared>>,
}

impl EventLoops {
    pub(crate) fn wake_all(&self) {
        for l in &self.shared {
            l.waker.wake();
        }
    }
}

/// The write side of one event-core connection, shared with its query
/// workers through [`Conn`].
pub(crate) struct EventSink {
    out: Mutex<OutBuf>,
    home: Arc<LoopShared>,
    token: u64,
}

#[derive(Default)]
pub(crate) struct OutBuf {
    bytes: Vec<u8>,
    pos: usize,
    /// After flushing everything buffered, sever instead of disarming
    /// write interest (chaos mid-write drops).
    sever_after: bool,
    /// Sever immediately, discarding anything buffered (chaos pre-write
    /// drops, outbound-buffer overflow). Workers set this flag and ring;
    /// the owning loop — which owns the socket — closes it. Keeping the
    /// socket single-owner avoids a `try_clone` fd per connection, which
    /// would double the server's fd footprint.
    sever_now: bool,
    /// The event loop destroyed this connection; late worker responses
    /// are discarded instead of accumulating forever.
    gone: bool,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl EventSink {
    fn lock_out(&self) -> MutexGuard<'_, OutBuf> {
        self.out.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queue one complete response frame and ring the loop.
    pub(crate) fn push_frame(&self, payload: &str) {
        self.push_frame_inner(payload, true);
    }

    /// Queue a frame WITHOUT ringing the loop. For the query-completion
    /// path, which must release the connection's pipelining gauge
    /// between buffering the bytes and waking the loop: the wake can
    /// preempt the worker (one-core hosts, wake-preemption), let the
    /// client read the response and pipeline its next request, and have
    /// that request hit the `conn_cap` check while this worker is still
    /// parked short of its decrement. Buffer → release → ring closes
    /// that window; the caller owes the ring (`ring_home`).
    pub(crate) fn push_frame_quiet(&self, payload: &str) {
        self.push_frame_inner(payload, false);
    }

    fn push_frame_inner(&self, payload: &str, ring: bool) {
        if payload.len() > proto::MAX_FRAME {
            return; // mirrors write_frame's refusal; server bodies are capped anyway
        }
        let mut out = self.lock_out();
        if out.gone {
            return;
        }
        if out.pending() + payload.len() > MAX_OUTBUF {
            // The peer stopped reading; drop the buffer and sever.
            obs::Registry::global().incr("server.outbuf_overflow", 1);
            out.bytes.clear();
            out.pos = 0;
            out.sever_now = true;
            drop(out);
            self.home.note(self.token);
            return;
        }
        out.bytes
            .extend_from_slice(format!("{}\n", payload.len()).as_bytes());
        out.bytes.extend_from_slice(payload.as_bytes());
        drop(out);
        if ring {
            self.home.note(self.token);
        }
    }

    /// Queue a deliberately truncated frame, then sever once it is on
    /// the wire (chaos `drop=P:mid`).
    pub(crate) fn push_severed_prefix(&self, payload: &str) {
        let cut = payload.len() / 2;
        let mut out = self.lock_out();
        if out.gone {
            return;
        }
        out.bytes
            .extend_from_slice(format!("{}\n", payload.len()).as_bytes());
        out.bytes.extend_from_slice(&payload.as_bytes()[..cut]);
        out.sever_after = true;
        drop(out);
        self.home.note(self.token);
    }

    /// Ask the owning loop to close this connection, discarding any
    /// buffered output. The loop owns the socket, so this is a flag
    /// plus a wakeup rather than a direct `shutdown`.
    pub(crate) fn sever(&self) {
        let mut out = self.lock_out();
        if out.gone {
            return;
        }
        out.sever_now = true;
        drop(out);
        self.home.note(self.token);
    }

    /// Ring the owning loop without queueing bytes (used when a query
    /// finishes on a path that wrote nothing, so a closing connection
    /// re-checks its in-flight count promptly).
    pub(crate) fn ring_home(&self) {
        self.home.note(self.token);
    }
}

// ---------------------------------------------------------------------
// Timer wheel.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Re-check a connection's idle deadline (lazy: re-armed from its
    /// actual `last_activity` when it fires early).
    Idle,
    /// Force-close a connection that kept in-flight queries past its
    /// grace (peer EOF mid-query, or a drain hitting its deadline).
    CloseGrace,
}

/// A single-level hashed timer wheel: 256 slots × 250 ms ≈ a 64 s
/// horizon, wide enough for the default idle timeout. Entries past the
/// horizon simply wrap and are re-inserted when their slot fires early —
/// a few spurious checks per minute per connection, each O(1).
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(u64, TimerKind, Instant)>>,
    granularity: Duration,
    epoch: Instant,
    /// Last processed absolute tick.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(now: Instant) -> TimerWheel {
        TimerWheel::with_shape(now, 256, Duration::from_millis(250))
    }

    pub(crate) fn with_shape(now: Instant, slots: usize, granularity: Duration) -> TimerWheel {
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            epoch: now,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.epoch).as_nanos() / self.granularity.as_nanos().max(1))
            as u64
    }

    pub(crate) fn insert(&mut self, deadline: Instant, token: u64, kind: TimerKind) {
        // Never behind the cursor, or it would only fire after a full
        // wrap of the wheel.
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((token, kind, deadline));
        self.len += 1;
    }

    /// Advance to `now`, returning every entry whose deadline passed.
    /// Entries that merely wrapped (deadline still ahead) re-insert.
    pub(crate) fn advance(&mut self, now: Instant) -> Vec<(u64, TimerKind)> {
        let target = self.tick_of(now);
        let mut due = Vec::new();
        let mut requeue = Vec::new();
        let span = (target.saturating_sub(self.cursor)).min(self.slots.len() as u64);
        for i in 1..=span {
            let slot = ((self.cursor + i) % self.slots.len() as u64) as usize;
            for (token, kind, deadline) in self.slots[slot].drain(..) {
                self.len -= 1;
                if deadline <= now {
                    due.push((token, kind));
                } else {
                    requeue.push((deadline, token, kind));
                }
            }
        }
        self.cursor = target.max(self.cursor);
        for (deadline, token, kind) in requeue {
            self.insert(deadline, token, kind);
        }
        due
    }

    /// Time until the nearest armed slot, if any entries exist.
    pub(crate) fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let n = self.slots.len() as u64;
        for i in 1..=n {
            let tick = self.cursor + i;
            if !self.slots[(tick % n) as usize].is_empty() {
                let slot_end = self.epoch
                    + self
                        .granularity
                        .checked_mul((tick + 1) as u32)
                        .unwrap_or(self.granularity * u32::MAX);
                return Some(slot_end.saturating_duration_since(now));
            }
        }
        Some(self.granularity)
    }
}

// ---------------------------------------------------------------------
// The event loop itself.
// ---------------------------------------------------------------------

struct ConnState {
    stream: TcpStream,
    conn: Arc<Conn>,
    fb: FrameBuffer,
    last_activity: Instant,
    /// Current poller registration includes write interest.
    write_armed: bool,
    /// Peer sent EOF or the protocol decided to stop reading; close
    /// once in-flight queries and the outbound buffer drain.
    closing: bool,
    /// A [`TimerKind::CloseGrace`] entry is armed for this token.
    grace_armed: bool,
}

/// What [`spawn_event_loops`] hands back: the shared loop handles (for
/// `Inner`), the joinable loop threads, and the backend's name.
pub(crate) type SpawnedLoops = (
    Arc<EventLoops>,
    Vec<std::thread::JoinHandle<()>>,
    &'static str,
);

/// Build the pollers and spawn one thread per event loop. Loop 0 owns
/// the listener. Returns the shared handles (for `Inner`) and the
/// joinable threads.
pub(crate) fn spawn_event_loops(
    inner: &Arc<Inner>,
    listener: TcpListener,
) -> io::Result<SpawnedLoops> {
    let n = inner.cfg.event_threads.max(1);
    listener.set_nonblocking(true)?;
    let mut pollers = Vec::with_capacity(n);
    let mut shared = Vec::with_capacity(n);
    for _ in 0..n {
        let poller = new_poller()?;
        shared.push(Arc::new(LoopShared {
            intake: Mutex::new(Vec::new()),
            notes: Mutex::new(Vec::new()),
            waker: poller.waker(),
        }));
        pollers.push(poller);
    }
    let backend = pollers[0].name();
    let loops = Arc::new(EventLoops { shared });
    // Published before any loop runs, so a drain arriving with the very
    // first connection can already wake every loop.
    let _ = inner.event.set(loops.clone());
    let mut threads = Vec::with_capacity(n);
    let mut listener = Some(listener);
    for (idx, poller) in pollers.into_iter().enumerate() {
        let inner = inner.clone();
        let loops = loops.clone();
        let listener = listener.take();
        threads.push(
            std::thread::Builder::new()
                .name(format!("ppfd-loop-{idx}"))
                .spawn(move || run_loop(idx, poller, listener, inner, loops))?,
        );
    }
    Ok((loops, threads, backend))
}

fn run_loop(
    idx: usize,
    mut poller: Box<dyn PollBackend>,
    mut listener: Option<TcpListener>,
    inner: Arc<Inner>,
    loops: Arc<EventLoops>,
) {
    let reg = obs::Registry::global();
    let home = loops.shared[idx].clone();
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut wheel = TimerWheel::new(Instant::now());
    let mut next_token = FIRST_CONN_TOKEN;
    let mut rr = idx; // round-robin cursor for dealt connections
    let mut events: Vec<Event> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    if let Some(l) = &listener {
        if poller
            .register(fd_of(l), LISTENER_TOKEN, Interest::Read)
            .is_err()
        {
            eprintln!("ppfd: event loop {idx} cannot watch the listener; refusing connections");
            listener = None;
        }
    }

    loop {
        let now = Instant::now();
        let draining = inner.draining.load(SeqCst);
        if draining {
            if drain_deadline.is_none() {
                drain_deadline = Some(now + inner.cfg.drain_grace * 2 + Duration::from_secs(1));
                if let Some(l) = listener.take() {
                    let _ = poller.deregister(fd_of(&l), LISTENER_TOKEN);
                    drop(l); // stop accepting immediately
                }
            }
            // Close everything quiescent; keep connections with in-flight
            // queries (their workers still owe responses) until the
            // deadline.
            let quiescent: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    c.conn.inflight.load(SeqCst) == 0 && c.conn.event_sink_pending() == 0
                })
                .map(|(&t, _)| t)
                .collect();
            for token in quiescent {
                destroy(&mut conns, &mut poller, &inner, token);
            }
            if conns.is_empty() {
                break;
            }
            if drain_deadline.is_some_and(|d| now >= d) {
                let all: Vec<u64> = conns.keys().copied().collect();
                for token in all {
                    destroy(&mut conns, &mut poller, &inner, token);
                }
                break;
            }
        }

        let timeout = wheel
            .next_timeout(now)
            .unwrap_or(MAX_WAIT)
            .min(MAX_WAIT)
            .max(Duration::from_millis(1));
        events.clear();
        if let Err(e) = poller.wait(&mut events, Some(timeout)) {
            eprintln!("ppfd: event loop {idx} poll failed: {e}; shutting the loop down");
            break;
        }

        for &ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_burst(&inner, &loops, &mut listener, &mut rr, &home);
                continue;
            }
            if ev.hangup {
                destroy(&mut conns, &mut poller, &inner, ev.token);
                continue;
            }
            if ev.readable {
                handle_readable(&inner, &mut conns, &mut poller, &mut wheel, ev.token);
            }
            if ev.writable && conns.contains_key(&ev.token) {
                flush_conn(&inner, &mut conns, &mut poller, &mut wheel, ev.token);
            }
        }

        // Adopt dealt connections.
        let fresh = std::mem::take(&mut *home.lock_intake());
        for stream in fresh {
            adopt(
                &inner,
                &mut conns,
                &mut poller,
                &mut wheel,
                &home,
                &mut next_token,
                stream,
            );
        }

        // Workers finished queries: flush their responses, re-arming
        // write interest for whatever does not fit the socket buffer.
        let notes = std::mem::take(&mut *home.lock_notes());
        for token in notes {
            if conns.contains_key(&token) {
                flush_conn(&inner, &mut conns, &mut poller, &mut wheel, token);
            }
        }

        // Timer-wheel checks: idle reaping and close graces.
        let now = Instant::now();
        for (token, kind) in wheel.advance(now) {
            match kind {
                TimerKind::Idle => {
                    // Lazy check: reap only when truly idle past the
                    // deadline, otherwise re-arm from the real one.
                    let rearm_at = {
                        let Some(c) = conns.get_mut(&token) else {
                            continue;
                        };
                        let deadline = c.last_activity + inner.cfg.idle_timeout;
                        let quiescent = c.conn.inflight.load(SeqCst) == 0;
                        if quiescent && now >= deadline {
                            None
                        } else if quiescent {
                            Some(deadline)
                        } else {
                            Some(now + inner.cfg.idle_timeout)
                        }
                    };
                    match rearm_at {
                        None => {
                            reg.incr("server.idle_reaped", 1);
                            destroy(&mut conns, &mut poller, &inner, token);
                        }
                        Some(at) => wheel.insert(at, token, TimerKind::Idle),
                    }
                }
                TimerKind::CloseGrace => {
                    let expire = {
                        let Some(c) = conns.get_mut(&token) else {
                            continue;
                        };
                        c.grace_armed = false;
                        c.closing
                    };
                    if expire {
                        destroy(&mut conns, &mut poller, &inner, token);
                    }
                }
            }
        }
    }

    // Loop teardown: anything still tracked is released so gauges and
    // counters stay truthful even on an abnormal exit.
    let leftovers: Vec<u64> = conns.keys().copied().collect();
    for token in leftovers {
        destroy(&mut conns, &mut poller, &inner, token);
    }
}

/// Accept until the listener would block, dealing connections across
/// the loops round-robin. Runs only on loop 0.
fn accept_burst(
    inner: &Arc<Inner>,
    loops: &Arc<EventLoops>,
    listener: &mut Option<TcpListener>,
    rr: &mut usize,
    _home: &Arc<LoopShared>,
) {
    let reg = obs::Registry::global();
    let Some(l) = listener.as_ref() else {
        return;
    };
    loop {
        match l.accept() {
            Ok((stream, _peer)) => {
                if inner.draining.load(SeqCst) {
                    continue; // dropped: the drain already refused new work
                }
                reg.incr("server.accepted", 1);
                let cap = inner.cfg.max_conns;
                if cap > 0 && inner.active_conns.load(SeqCst) >= cap {
                    reg.incr("server.shed", 1);
                    reg.incr("server.shed.max_conns", 1);
                    // Best-effort typed rejection: the socket buffer of a
                    // fresh connection always has room for one frame.
                    let resp =
                        Response::err("-", ErrorKind::Overload, format!("shed: max_conns ({cap})"));
                    let _ = stream.set_nonblocking(true);
                    let _ = (&stream).write_all(
                        {
                            let p = resp.render();
                            format!("{}\n{p}", p.len()).into_bytes()
                        }
                        .as_slice(),
                    );
                    continue;
                }
                open_conn(inner);
                let target = *rr % loops.shared.len();
                *rr = rr.wrapping_add(1);
                loops.shared[target].push_conn(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Take ownership of a dealt connection: nonblocking socket, poller
/// registration, state machine, idle timer.
fn adopt(
    inner: &Arc<Inner>,
    conns: &mut HashMap<u64, ConnState>,
    poller: &mut Box<dyn PollBackend>,
    wheel: &mut TimerWheel,
    home: &Arc<LoopShared>,
    next_token: &mut u64,
    stream: TcpStream,
) {
    let token = *next_token;
    *next_token += 1;
    if stream.set_nonblocking(true).is_err() {
        close_conn(inner);
        return;
    }
    stream.set_nodelay(true).ok();
    if poller
        .register(fd_of(&stream), token, Interest::Read)
        .is_err()
    {
        close_conn(inner);
        return;
    }
    let conn = Arc::new(Conn::event(EventSink {
        out: Mutex::new(OutBuf::default()),
        home: home.clone(),
        token,
    }));
    let now = Instant::now();
    wheel.insert(now + inner.cfg.idle_timeout, token, TimerKind::Idle);
    conns.insert(
        token,
        ConnState {
            stream,
            conn,
            fb: FrameBuffer::new(),
            last_activity: now,
            write_armed: false,
            closing: false,
            grace_armed: false,
        },
    );
}

/// Drain the socket into the frame buffer and run every complete frame.
fn handle_readable(
    inner: &Arc<Inner>,
    conns: &mut HashMap<u64, ConnState>,
    poller: &mut Box<dyn PollBackend>,
    wheel: &mut TimerWheel,
    token: u64,
) {
    let reg = obs::Registry::global();
    let mut fatal = false;
    let closing;
    {
        let Some(c) = conns.get_mut(&token) else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        loop {
            match c.stream.read(&mut buf) {
                Ok(0) => {
                    c.closing = true;
                    break;
                }
                Ok(n) => {
                    c.fb.extend(&buf[..n]);
                    if n < buf.len() {
                        break; // short read: the socket is drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if !fatal {
            loop {
                match c.fb.next_frame() {
                    Ok(Some(payload)) => {
                        c.last_activity = Instant::now();
                        if !handle_frame(inner, &c.conn, &payload) {
                            c.closing = true;
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        reg.incr("server.proto_errors", 1);
                        c.conn
                            .write_response(&Response::err("-", ErrorKind::Proto, e.to_string()));
                        c.closing = true;
                        break;
                    }
                }
            }
        }
        closing = c.closing;
    }
    if fatal {
        destroy(conns, poller, inner, token);
    } else if closing {
        begin_close(inner, conns, poller, wheel, token);
    }
}

/// Start closing: immediate if quiescent and flushed, otherwise wait for
/// in-flight workers under a grace deadline.
fn begin_close(
    inner: &Arc<Inner>,
    conns: &mut HashMap<u64, ConnState>,
    poller: &mut Box<dyn PollBackend>,
    wheel: &mut TimerWheel,
    token: u64,
) {
    // Flush whatever is already buffered (typed proto errors, the tail
    // of pipelined responses) before deciding.
    flush_conn(inner, conns, poller, wheel, token);
    let Some(c) = conns.get_mut(&token) else {
        return;
    };
    if c.conn.inflight.load(SeqCst) == 0 && c.conn.event_sink_pending() == 0 {
        destroy(conns, poller, inner, token);
    } else if !c.grace_armed {
        c.grace_armed = true;
        wheel.insert(
            Instant::now() + inner.cfg.drain_grace,
            token,
            TimerKind::CloseGrace,
        );
    }
}

/// Write as much buffered outbound as the socket accepts; arm or disarm
/// write interest to match what remains.
fn flush_conn(
    inner: &Arc<Inner>,
    conns: &mut HashMap<u64, ConnState>,
    poller: &mut Box<dyn PollBackend>,
    wheel: &mut TimerWheel,
    token: u64,
) {
    let mut dead = false;
    let mut close_now = false;
    {
        let Some(c) = conns.get_mut(&token) else {
            return;
        };
        let sink = c.conn.event_sink().expect("event-core conn");
        let mut out = sink.lock_out();
        if out.sever_now {
            dead = true;
        }
        while !dead && out.pending() > 0 {
            // `&TcpStream` is `Write`, so the sink borrow and the stream
            // write coexist.
            match (&c.stream).write(&out.bytes[out.pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    out.pos += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if !dead && out.pending() == 0 {
            out.bytes.clear();
            out.pos = 0;
            if out.sever_after {
                dead = true;
            }
        }
        let drained = out.pending() == 0;
        drop(out);
        if dead {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
        } else {
            let want_write = !drained;
            if want_write != c.write_armed {
                let interest = if want_write {
                    Interest::ReadWrite
                } else {
                    Interest::Read
                };
                if poller.reregister(fd_of(&c.stream), token, interest).is_ok() {
                    c.write_armed = want_write;
                }
            }
            if drained && c.closing && c.conn.inflight.load(SeqCst) == 0 {
                close_now = true;
            } else if c.closing && !c.grace_armed {
                c.grace_armed = true;
                wheel.insert(
                    Instant::now() + inner.cfg.drain_grace,
                    token,
                    TimerKind::CloseGrace,
                );
            }
        }
    }
    if dead || close_now {
        destroy(conns, poller, inner, token);
    }
}

/// Tear one connection down: deregister, mark the sink gone so late
/// worker responses are discarded, release the connection gauge.
fn destroy(
    conns: &mut HashMap<u64, ConnState>,
    poller: &mut Box<dyn PollBackend>,
    inner: &Arc<Inner>,
    token: u64,
) {
    let Some(c) = conns.remove(&token) else {
        return;
    };
    let _ = poller.deregister(fd_of(&c.stream), token);
    if let Some(sink) = c.conn.event_sink() {
        let mut out = sink.lock_out();
        out.gone = true;
        out.bytes.clear();
        out.pos = 0;
    }
    close_conn(inner);
}

impl Conn {
    /// Bytes still queued in this connection's outbound buffer (0 for
    /// the sync core, which writes synchronously).
    pub(crate) fn event_sink_pending(&self) -> usize {
        self.event_sink().map_or(0, |s| s.lock_out().pending())
    }
}

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_due_entries_once() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_shape(t0, 16, Duration::from_millis(10));
        w.insert(t0 + Duration::from_millis(25), 1, TimerKind::Idle);
        w.insert(t0 + Duration::from_millis(95), 2, TimerKind::CloseGrace);
        assert!(w.advance(t0 + Duration::from_millis(10)).is_empty());
        let due = w.advance(t0 + Duration::from_millis(40));
        assert_eq!(due, vec![(1, TimerKind::Idle)]);
        assert!(w.advance(t0 + Duration::from_millis(50)).is_empty());
        let due = w.advance(t0 + Duration::from_millis(120));
        assert_eq!(due, vec![(2, TimerKind::CloseGrace)]);
        assert!(w.next_timeout(t0 + Duration::from_millis(121)).is_none());
    }

    #[test]
    fn wheel_entries_past_the_horizon_wrap_and_still_fire() {
        let t0 = Instant::now();
        // Horizon = 16 × 10ms = 160ms; the entry sits 3 wraps out.
        let mut w = TimerWheel::with_shape(t0, 16, Duration::from_millis(10));
        w.insert(t0 + Duration::from_millis(500), 9, TimerKind::Idle);
        let mut fired = Vec::new();
        for step in 1..=60 {
            fired.extend(w.advance(t0 + Duration::from_millis(step * 10)));
        }
        assert_eq!(fired, vec![(9, TimerKind::Idle)]);
    }

    #[test]
    fn wheel_next_timeout_tracks_the_nearest_entry() {
        let t0 = Instant::now();
        let mut w = TimerWheel::with_shape(t0, 32, Duration::from_millis(10));
        assert!(w.next_timeout(t0).is_none());
        w.insert(t0 + Duration::from_millis(70), 1, TimerKind::Idle);
        let timeout = w.next_timeout(t0).expect("armed");
        assert!(
            timeout <= Duration::from_millis(90),
            "timeout {timeout:?} overshoots the 70ms entry"
        );
    }
}
