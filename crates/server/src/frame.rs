//! Incremental frame decoding shared by both connection cores.
//!
//! [`FrameBuffer`] accumulates raw bytes (from a blocking read loop in
//! the sync core, or from readiness-driven nonblocking reads in the
//! event loop) and yields complete protocol frames. It keeps a
//! *consumed-offset cursor* instead of draining the front of the buffer
//! per frame: a deeply pipelined client used to cost O(n²) — one
//! `Vec::drain` memmove plus one `to_vec` allocation per frame — and now
//! costs amortized O(n) with a single periodic compaction and in-place
//! UTF-8 validation.

use std::io;

use crate::proto;

/// Compact (memmove the tail to the front) once at least this many
/// consumed bytes sit in front of the cursor. Large enough that a deep
/// pipeline of small frames compacts rarely; small enough that the
/// buffer never holds more than one burst's worth of dead bytes.
const COMPACT_AT: usize = 64 * 1024;

/// Longest accepted frame-length header (decimal digits + whitespace).
const MAX_HEADER: usize = 32;

/// A cursor-based frame accumulator. Feed bytes with
/// [`FrameBuffer::extend`], pull frames with [`FrameBuffer::next_frame`].
#[derive(Default)]
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset are already-parsed frames awaiting
    /// compaction; parsing always starts here.
    pos: usize,
}

impl FrameBuffer {
    pub(crate) fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append freshly read bytes.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any unconsumed bytes remain (a mid-frame EOF detector).
    pub(crate) fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Extract the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". Errors are unrecoverable for
    /// the connection: an unparsable or oversized length header, or a
    /// payload that is not UTF-8.
    pub(crate) fn next_frame(&mut self) -> io::Result<Option<String>> {
        let pending = &self.buf[self.pos..];
        let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
            if pending.len() > MAX_HEADER {
                return Err(bad("frame length header too long"));
            }
            self.compact_if_due();
            return Ok(None);
        };
        let len: usize = std::str::from_utf8(&pending[..nl])
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad("bad frame length header"))?;
        if len > proto::MAX_FRAME {
            return Err(bad("frame exceeds MAX_FRAME"));
        }
        if pending.len() < nl + 1 + len {
            self.compact_if_due();
            return Ok(None);
        }
        // Validate in place, then make exactly one allocation: the
        // returned payload itself.
        let payload = std::str::from_utf8(&pending[nl + 1..nl + 1 + len])
            .map_err(|_| bad("frame is not UTF-8"))?
            .to_owned();
        self.pos += nl + 1 + len;
        self.compact_if_due();
        Ok(Some(payload))
    }

    /// Reclaim consumed bytes: free everything when fully drained,
    /// memmove the live tail forward once enough dead bytes accumulate.
    fn compact_if_due(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_AT {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &str) -> Vec<u8> {
        format!("{}\n{payload}", payload.len()).into_bytes()
    }

    #[test]
    fn partial_frame_across_multiple_extends() {
        let mut fb = FrameBuffer::new();
        let bytes = frame("hello world");
        for (i, b) in bytes.iter().enumerate() {
            assert!(fb.next_frame().unwrap().is_none(), "byte {i}");
            fb.extend(&[*b]);
        }
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some("hello world"));
        assert!(!fb.has_partial());
    }

    #[test]
    fn deep_pipeline_yields_every_frame_in_order() {
        let mut fb = FrameBuffer::new();
        let mut all = Vec::new();
        for n in 0..5_000 {
            all.extend_from_slice(&frame(&format!("payload-{n}")));
        }
        fb.extend(&all);
        for n in 0..5_000 {
            assert_eq!(
                fb.next_frame().unwrap().as_deref(),
                Some(format!("payload-{n}").as_str())
            );
        }
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.buf.len(), 0, "fully drained buffer is reclaimed");
    }

    #[test]
    fn compaction_keeps_the_unconsumed_tail_intact() {
        let mut fb = FrameBuffer::new();
        // Push past the compaction threshold with consumed frames, then
        // leave a partial frame straddling the boundary.
        let big = "x".repeat(40 * 1024);
        fb.extend(&frame(&big));
        fb.extend(&frame(&big));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(big.as_str()));
        let tail = frame("tail-payload");
        fb.extend(&tail[..5]);
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(big.as_str()));
        assert_eq!(fb.pos, 0, "compacted after crossing the threshold");
        assert!(fb.has_partial());
        fb.extend(&tail[5..]);
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some("tail-payload"));
    }

    #[test]
    fn bad_headers_and_payloads_are_typed_errors() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"not-a-number\nxx");
        assert!(fb.next_frame().is_err());

        let mut fb = FrameBuffer::new();
        fb.extend(format!("{}\n", proto::MAX_FRAME + 1).as_bytes());
        assert!(fb.next_frame().is_err());

        let mut fb = FrameBuffer::new();
        fb.extend(b"x".repeat(MAX_HEADER + 1).as_slice());
        assert!(fb.next_frame().is_err(), "runaway header rejected");

        let mut fb = FrameBuffer::new();
        fb.extend(b"2\n");
        fb.extend(&[0xff, 0xfe]);
        assert!(fb.next_frame().is_err(), "non-UTF-8 payload rejected");
    }

    #[test]
    fn empty_frames_round_trip() {
        let mut fb = FrameBuffer::new();
        fb.extend(&frame(""));
        fb.extend(&frame("next"));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(""));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some("next"));
    }
}
