//! A small blocking client for the `ppfd` protocol, used by
//! `ppf-stress` and the integration tests.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{self, Response, Verb};

/// One protocol connection. Supports sequential request/response via
/// [`Client::request`] and explicit pipelining via [`Client::send`] /
/// [`Client::recv`].
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect with the given I/O timeout on reads and writes.
    pub fn connect(addr: &str, io_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Fire one request without waiting for its response.
    pub fn send(
        &mut self,
        id: &str,
        verb: Verb,
        options: &[(&str, &str)],
        body: &str,
    ) -> io::Result<()> {
        let payload = proto::render_request(id, verb, options, body);
        proto::write_frame(&mut self.writer, &payload)
    }

    /// Read the next response frame (responses arrive in completion
    /// order, correlated by id). `InvalidData` means the server broke
    /// framing — with chaos `drop` faults, an expected outcome.
    pub fn recv(&mut self) -> io::Result<Response> {
        match proto::read_frame(&mut self.reader)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed",
            )),
            Some(payload) => proto::parse_response(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Sequential convenience: send, then wait for the matching response.
    pub fn request(
        &mut self,
        id: &str,
        verb: Verb,
        options: &[(&str, &str)],
        body: &str,
    ) -> io::Result<Response> {
        self.send(id, verb, options, body)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {:?} does not match request {id:?}", resp.id),
            ));
        }
        Ok(resp)
    }
}
