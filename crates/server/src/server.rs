//! The serving loop: accept, admit, execute, respond, drain.
//!
//! One [`SharedEngine`] serves N connections through one of two
//! connection cores sharing every layer above the socket:
//!
//! * the **event core** (default, [`crate::event_loop`]): a fixed pool
//!   of readiness-driven threads owns every connection, so 10 000 idle
//!   connections cost a handful of resident threads and zero wakeups;
//! * the **sync core** (`sync_conns` / `--sync-conns`): the legacy
//!   thread-per-connection loop, kept as a portable reference and a
//!   bisection aid.
//!
//! Either way, each admitted query still runs on its own short-lived
//! worker thread (so a connection can pipeline queries up to its cap and
//! `cancel` can reach a query mid-flight), bounded by the admission
//! controller's in-flight cap plus queue depth — never by connection
//! count.
//!
//! Robustness properties the tests and the chaos harness hold us to:
//!
//! * a panicking query (injected or real) is contained by `catch_unwind`
//!   in its worker and degrades to one `err exec` response — never a
//!   process death;
//! * a failed *thread spawn* (fd/PID exhaustion) sheds the one request
//!   or connection with a typed `[overload]` error — never a process
//!   death and never a leaked connection count;
//! * every rejection is typed (`overload`, `shutdown`, `proto`) so
//!   clients can back off instead of guessing;
//! * slow or vanished clients cannot pin resources: the sync core uses
//!   socket timeouts, the event core bounded outbound buffers and
//!   timer-wheel idle reaping;
//! * `shutdown`/SIGTERM drains gracefully: stop accepting, give
//!   in-flight queries a grace period, cancel stragglers through their
//!   [`CancelToken`]s, then exit with counters flushed.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use ppf_core::{CancelToken, QueryLimits, ReloadError, SharedEngine, XmlDb};

use crate::admission::{Admission, AdmissionPolicy, ShedReason, Slot, TryAdmit};
use crate::event_loop::{self, EventLoops, EventSink};
use crate::fault::{ChaosState, DropPhase, Fault, ReloadFault};
use crate::frame::FrameBuffer;
use crate::proto::{self, ErrorKind, Request, Response, Verb};

/// Rebuilds the server's data source into a fresh staging [`XmlDb`]
/// (parse → shred → finalize), entirely off the serving path. Installed
/// via [`serve_with_reload`]; invoked by the `reload` verb and (through
/// [`ServerHandle::reload`]) by `ppfd`'s SIGHUP handler. Must be pure
/// with respect to serving state: a failure or panic here is contained
/// by [`SharedEngine::reload_with`] and leaves the old snapshot serving.
pub type ReloadFn = Arc<dyn Fn() -> Result<XmlDb, ReloadError> + Send + Sync>;

/// Tunables. `Default` is sized for a small daemon; `ppfd` exposes each
/// knob as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission: queries allowed to run at once, process-wide.
    pub max_inflight: usize,
    /// Admission: requests allowed to wait for a slot (0 = pure shed).
    pub queue_depth: usize,
    /// Admission: longest a queued request waits before it is shed.
    pub queue_wait: Duration,
    /// Queue or shed when all slots are busy.
    pub policy: AdmissionPolicy,
    /// Queries one connection may have in flight at once (pipelining cap).
    pub per_conn_cap: usize,
    /// Deadline applied to queries that do not send `timeout=MS`.
    pub default_deadline: Option<Duration>,
    /// Socket write timeout: a stuck client forfeits its response (sync
    /// core; the event core bounds stuck clients by outbound-buffer cap
    /// and idle reaping instead).
    pub write_timeout: Duration,
    /// Close connections with no traffic and no queries for this long.
    pub idle_timeout: Duration,
    /// Drain: how long in-flight queries get to finish before their
    /// cancel tokens fire (applied twice: once before, once after).
    pub drain_grace: Duration,
    /// Result rows rendered per query response (the rest is truncated
    /// with a count; the frame cap is the hard bound).
    pub max_response_rows: usize,
    /// Queries at or above this wall-clock duration enter the slow-query
    /// log (`Duration::ZERO` logs every query; useful in tests).
    pub slow_query: Duration,
    /// Slots in the bounded slow-query ring (0 disables the log).
    pub slowlog_capacity: usize,
    /// When set, a background thread writes a metrics snapshot to stderr
    /// at this interval until the server drains.
    pub metrics_interval: Option<Duration>,
    /// Event core: readiness threads owning the connections. Each extra
    /// thread only helps while network processing itself saturates one.
    pub event_threads: usize,
    /// Hard connection cap (0 = unlimited). Arrivals beyond it get a
    /// typed `[overload]` rejection at accept time.
    pub max_conns: usize,
    /// Use the legacy thread-per-connection core instead of the event
    /// core (also honoured from `PPF_SYNC_CONNS=1` for CI matrices).
    pub sync_conns: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: ppf_pool::current_threads().max(2) * 2,
            queue_depth: 16,
            queue_wait: Duration::from_millis(200),
            policy: AdmissionPolicy::Queue,
            per_conn_cap: 4,
            default_deadline: Some(Duration::from_secs(10)),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            drain_grace: Duration::from_secs(2),
            max_response_rows: 100_000,
            slow_query: Duration::from_millis(250),
            slowlog_capacity: 64,
            metrics_interval: None,
            event_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 4),
            max_conns: 0,
            sync_conns: std::env::var("PPF_SYNC_CONNS").as_deref() == Ok("1"),
        }
    }
}

/// How often blocked reads wake to check drain/idle state (sync core).
const POLL_TICK: Duration = Duration::from_millis(50);
/// How often the accept loop polls for new connections / drain (sync core).
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Shared server state.
pub(crate) struct Inner {
    pub(crate) engine: SharedEngine,
    /// Snapshot builder for the `reload` verb / SIGHUP (`None` = this
    /// server has no reloadable data source; `reload` is unsupported).
    reloader: Option<ReloadFn>,
    pub(crate) cfg: ServerConfig,
    pub(crate) admission: Arc<Admission>,
    pub(crate) chaos: ChaosState,
    pub(crate) draining: AtomicBool,
    pub(crate) active_conns: AtomicUsize,
    /// In-flight queries by request id, for `cancel` and drain.
    queries: Mutex<HashMap<String, CancelToken>>,
    /// Bounded ring of the slowest recent queries, oldest evicted first.
    slowlog: Mutex<VecDeque<SlowEntry>>,
    /// Server start, the epoch for slowlog entry ages.
    started: Instant,
    /// Which connection core runs, for `health` and logs.
    core: OnceLock<String>,
    /// Event-core loop handles (absent under `sync_conns`), so drains
    /// can wake every loop immediately.
    pub(crate) event: OnceLock<Arc<EventLoops>>,
    /// Drain announcement for interval sleepers (the metrics loop):
    /// flips exactly once, under the lock, with a broadcast.
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
}

impl Inner {
    fn lock_queries(&self) -> MutexGuard<'_, HashMap<String, CancelToken>> {
        self.queries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_slowlog(&self) -> MutexGuard<'_, VecDeque<SlowEntry>> {
        self.slowlog.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One slow-query record: what ran, how long, and where the time went.
struct SlowEntry {
    /// Time since server start when the query finished.
    at: Duration,
    id: String,
    verb: &'static str,
    /// The query text, truncated to keep the ring small.
    query: String,
    total: Duration,
    rows: u64,
    /// `parse/translate/plan/execute/publish` nanoseconds, when the verb
    /// surfaced engine stats (plain queries; explain/analyze and errors
    /// carry `None`).
    phases: Option<[u64; 5]>,
    /// `ok`, or the response's error kind.
    outcome: String,
}

impl SlowEntry {
    fn render(&self) -> String {
        let mut line = format!(
            "[+{:.3}s] {} {} {:.1} ms rows={} {}",
            self.at.as_secs_f64(),
            self.id,
            self.verb,
            self.total.as_secs_f64() * 1e3,
            self.rows,
            self.outcome,
        );
        if let Some([parse, translate, plan, execute, publish]) = self.phases {
            let ms = |ns: u64| ns as f64 / 1e6;
            line.push_str(&format!(
                " parse={:.2} translate={:.2} plan={:.2} exec={:.2} publish={:.2}",
                ms(parse),
                ms(translate),
                ms(plan),
                ms(execute),
                ms(publish),
            ));
        }
        line.push_str(" :: ");
        line.push_str(&self.query);
        line
    }
}

/// Longest query text kept per slowlog entry.
const SLOWLOG_QUERY_CHARS: usize = 200;

/// Deliberate thread-spawn failure injection, so tests can prove that
/// resource exhaustion sheds requests instead of killing the server.
pub mod test_hooks {
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    static FAIL_SPAWNS: AtomicUsize = AtomicUsize::new(0);

    /// Make the next `n` sheddable spawns (connection threads, query
    /// workers, the drain helper) report failure instead of spawning.
    pub fn fail_next_spawns(n: usize) {
        FAIL_SPAWNS.store(n, SeqCst);
    }

    pub(crate) fn spawn_should_fail() -> bool {
        FAIL_SPAWNS
            .fetch_update(SeqCst, SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// Spawn a thread the server can live without: failure is returned, not
/// panicked, so callers shed the one piece of work instead of dying.
fn spawn_sheddable(
    name: &str,
    f: impl FnOnce() + Send + 'static,
) -> io::Result<std::thread::JoinHandle<()>> {
    if test_hooks::spawn_should_fail() {
        return Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "injected spawn failure",
        ));
    }
    std::thread::Builder::new().name(name.to_string()).spawn(f)
}

/// Handle returned by [`serve`]: inspect the bound address, trigger a
/// drain, wait for exit.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain (idempotent; also triggered by the
    /// `shutdown` verb). Returns immediately; use [`ServerHandle::join`]
    /// to wait for completion.
    pub fn shutdown(&self) {
        trigger_drain(&self.inner);
    }

    /// Install a chaos plan programmatically (tests; errors without the
    /// `chaos` feature).
    pub fn install_chaos(&self, spec: &str) -> Result<String, String> {
        self.inner.chaos.install(spec)
    }

    /// Whether a drain has begun (via [`ServerHandle::shutdown`], the
    /// `shutdown` verb, or a signal). `ppfd`'s main loop polls this to
    /// notice protocol-initiated shutdowns.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(SeqCst)
    }

    /// Rebuild the data source and swap in a fresh snapshot (the SIGHUP
    /// path; the `reload` verb goes through the same engine machinery).
    /// Blocks for the whole staging build — callers that must not block
    /// (event threads) go through the verb instead. Returns the new
    /// snapshot version. Typed refusals: `Draining` while a drain is in
    /// progress, `Busy` while another reload is staging, and every build
    /// failure mode leaves the old snapshot serving.
    pub fn reload(&self) -> Result<u64, ReloadError> {
        if self.inner.draining.load(SeqCst) {
            obs::Registry::global().incr("engine.reload_refused_draining", 1);
            return Err(ReloadError::Draining);
        }
        let Some(reloader) = self.inner.reloader.clone() else {
            return Err(ReloadError::io("this server has no reload source"));
        };
        do_reload(&self.inner, &reloader).map(|snap| snap.version())
    }

    /// Which connection core is serving (`sync`, `async(epoll, …)`).
    pub fn core(&self) -> &str {
        self.inner
            .core
            .get()
            .map(String::as_str)
            .unwrap_or("unknown")
    }

    /// Wait until the server has fully drained and stopped: the accept
    /// or event-loop threads and the metrics reporter are all joined.
    pub fn join(self) {
        for t in self.threads {
            t.join().ok();
        }
    }
}

/// Bind `addr` and serve `engine` until a drain completes. Fails (rather
/// than panicking) if the listener or any core thread cannot start. The
/// `reload` verb is unsupported; use [`serve_with_reload`] to arm it.
pub fn serve(engine: SharedEngine, addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
    serve_with_reload(engine, addr, cfg, None)
}

/// [`serve`], with an optional snapshot builder armed for hot reload:
/// the `reload` verb (and `ppfd`'s SIGHUP) rebuilds the data source
/// through `reloader` on a worker thread and atomically swaps the result
/// in as the next serving snapshot.
pub fn serve_with_reload(
    engine: SharedEngine,
    addr: &str,
    cfg: ServerConfig,
    reloader: Option<ReloadFn>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let inner = Arc::new(Inner {
        admission: Admission::new(
            cfg.max_inflight,
            cfg.queue_depth,
            cfg.queue_wait,
            cfg.policy,
        ),
        engine,
        reloader,
        cfg,
        chaos: ChaosState::new(),
        draining: AtomicBool::new(false),
        active_conns: AtomicUsize::new(0),
        queries: Mutex::new(HashMap::new()),
        slowlog: Mutex::new(VecDeque::new()),
        started: Instant::now(),
        core: OnceLock::new(),
        event: OnceLock::new(),
        drain_flag: Mutex::new(false),
        drain_cv: Condvar::new(),
    });
    let mut threads = Vec::new();
    if inner.cfg.sync_conns {
        listener.set_nonblocking(true)?;
        let _ = inner.core.set("sync".to_string());
        let accept_inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ppfd-accept".to_string())
                .spawn(move || accept_loop(listener, accept_inner))?,
        );
    } else {
        let (_loops, loop_threads, backend) = event_loop::spawn_event_loops(&inner, listener)?;
        let _ = inner.core.set(format!(
            "async({backend}, {} loops)",
            inner.cfg.event_threads.max(1)
        ));
        threads.extend(loop_threads);
    }
    if let Some(interval) = inner.cfg.metrics_interval {
        let metrics_inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ppfd-metrics".to_string())
                .spawn(move || metrics_loop(metrics_inner, interval))?,
        );
    }
    Ok(ServerHandle {
        addr: local,
        inner,
        threads,
    })
}

/// Record one accepted connection in the gauges. Shared by both cores.
pub(crate) fn open_conn(inner: &Inner) -> usize {
    let reg = obs::Registry::global();
    let n = inner.active_conns.fetch_add(1, SeqCst) + 1;
    reg.set_gauge("server.active", n as u64);
    reg.set_max("server.active_peak", n as u64);
    n
}

pub(crate) fn close_conn(inner: &Inner) {
    let reg = obs::Registry::global();
    let n = inner.active_conns.fetch_sub(1, SeqCst) - 1;
    reg.incr("server.closed", 1);
    reg.set_gauge("server.active", n as u64);
}

// ---------------------------------------------------------------------
// Sync core (legacy thread-per-connection), kept behind `sync_conns`.
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let reg = obs::Registry::global();
    while !inner.draining.load(SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                reg.incr("server.accepted", 1);
                let cap = inner.cfg.max_conns;
                if cap > 0 && inner.active_conns.load(SeqCst) >= cap {
                    reg.incr("server.shed", 1);
                    reg.incr("server.shed.max_conns", 1);
                    stream.set_write_timeout(Some(inner.cfg.write_timeout)).ok();
                    let _ = proto::write_frame(
                        &mut stream,
                        &Response::err(
                            "-",
                            ErrorKind::Overload,
                            format!("shed: max_conns ({cap})"),
                        )
                        .render(),
                    );
                    continue;
                }
                open_conn(&inner);
                // Held back from the worker closure so a failed spawn can
                // still deliver its typed rejection.
                let reject_stream = stream.try_clone().ok();
                let conn_inner = inner.clone();
                match spawn_sheddable("ppfd-conn", move || connection_loop(stream, conn_inner)) {
                    Ok(_) => {}
                    Err(_) => {
                        // The old code `.expect`ed here: one EAGAIN from
                        // `clone(2)` killed the accept loop *and* leaked
                        // the just-incremented connection count. Shed
                        // the one connection instead.
                        reg.incr("server.spawn_failures", 1);
                        reg.incr("server.shed", 1);
                        reg.incr("server.shed.spawn", 1);
                        if let Some(mut s) = reject_stream {
                            s.set_write_timeout(Some(inner.cfg.write_timeout)).ok();
                            let _ = proto::write_frame(
                                &mut s,
                                &Response::err(
                                    "-",
                                    ErrorKind::Overload,
                                    "shed: cannot spawn connection thread",
                                )
                                .render(),
                            );
                        }
                        close_conn(&inner);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
    drop(listener); // stop accepting before waiting out the drain
    let deadline = Instant::now() + inner.cfg.drain_grace * 2 + Duration::from_secs(1);
    while (inner.active_conns.load(SeqCst) > 0 || inner.admission.inflight() > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(ACCEPT_TICK);
    }
}

/// Begin the drain exactly once: count and grace in-flight queries, then
/// cancel the stragglers.
pub(crate) fn trigger_drain(inner: &Arc<Inner>) {
    if inner.draining.swap(true, SeqCst) {
        return;
    }
    // Wake the interval sleepers and the event loops so the drain is
    // observed now, not at the next tick.
    {
        let mut flag = inner
            .drain_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *flag = true;
    }
    inner.drain_cv.notify_all();
    if let Some(loops) = inner.event.get() {
        loops.wake_all();
    }
    let reg = obs::Registry::global();
    let in_flight = inner.admission.inflight() as u64;
    reg.incr("server.drained", in_flight);
    let drain_inner = inner.clone();
    if spawn_sheddable("ppfd-drain", move || drain_stragglers(drain_inner, true)).is_err() {
        // Degraded drain: no helper thread means no grace period — cancel
        // stragglers immediately rather than dying or blocking the
        // caller (which may be an event thread).
        reg.incr("server.spawn_failures", 1);
        drain_stragglers(inner.clone(), false);
    }
}

fn drain_stragglers(inner: Arc<Inner>, grace: bool) {
    if grace {
        let deadline = Instant::now() + inner.cfg.drain_grace;
        while inner.admission.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL_TICK);
        }
    }
    let stragglers: Vec<CancelToken> = inner.lock_queries().values().cloned().collect();
    if !stragglers.is_empty() {
        obs::Registry::global().incr("server.drain_cancelled", stragglers.len() as u64);
        for token in stragglers {
            token.cancel();
        }
    }
}

/// Timeout-tolerant frame reader for the sync core: accumulates bytes
/// across read timeouts in a [`FrameBuffer`], so a poll tick never
/// corrupts a partially-received frame and a pipelining client costs
/// amortized O(n), not O(n²).
struct FrameReader {
    stream: TcpStream,
    fb: FrameBuffer,
}

enum ReadEvent {
    Frame(String),
    Eof,
    /// The poll tick elapsed without completing a frame.
    Idle,
}

impl FrameReader {
    fn poll_frame(&mut self) -> io::Result<ReadEvent> {
        loop {
            if let Some(frame) = self.fb.next_frame()? {
                return Ok(ReadEvent::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.fb.has_partial() {
                        Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "connection closed inside a frame",
                        ))
                    } else {
                        Ok(ReadEvent::Eof)
                    };
                }
                Ok(n) => self.fb.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadEvent::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Per-connection state shared with this connection's query workers.
/// The sink hides which core owns the socket: the sync core writes
/// frames directly (socket write timeout bounds a stuck peer), the event
/// core queues into the connection's outbound buffer and wakes its loop.
pub(crate) struct Conn {
    sink: Sink,
    pub(crate) inflight: AtomicUsize,
}

enum Sink {
    Sync(Mutex<TcpStream>),
    Event(EventSink),
}

impl Conn {
    fn sync(writer: TcpStream) -> Conn {
        Conn {
            sink: Sink::Sync(Mutex::new(writer)),
            inflight: AtomicUsize::new(0),
        }
    }

    pub(crate) fn event(sink: EventSink) -> Conn {
        Conn {
            sink: Sink::Event(sink),
            inflight: AtomicUsize::new(0),
        }
    }

    pub(crate) fn event_sink(&self) -> Option<&EventSink> {
        match &self.sink {
            Sink::Event(s) => Some(s),
            Sink::Sync(_) => None,
        }
    }

    pub(crate) fn write_response(&self, resp: &Response) {
        match &self.sink {
            Sink::Sync(writer) => {
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                // A failed write (peer gone, write timeout) is the
                // client's loss; the server must not wedge on it.
                let _ = proto::write_frame(&mut *w, &resp.render());
            }
            Sink::Event(sink) => sink.push_frame(&resp.render()),
        }
    }

    /// Like [`write_response`](Conn::write_response), but on the event
    /// core the owning loop is NOT woken — the caller must follow up
    /// with [`release_request`], whose `ring_home` delivers the wake
    /// after the pipelining gauge has dropped. Waking first lets the
    /// client's next pipelined request race the gauge release and shed
    /// spuriously on `conn_cap`.
    fn write_response_quiet(&self, resp: &Response) {
        match &self.sink {
            Sink::Sync(writer) => {
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = proto::write_frame(&mut *w, &resp.render());
            }
            Sink::Event(sink) => sink.push_frame_quiet(&resp.render()),
        }
    }

    /// Write half a frame then cut the socket (chaos `drop=P:mid`).
    fn write_severed(&self, resp: &Response) {
        let full = resp.render();
        match &self.sink {
            Sink::Sync(writer) => {
                use std::io::Write;
                let cut = full.len() / 2;
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = w.write_all(format!("{}\n", full.len()).as_bytes());
                let _ = w.write_all(&full.as_bytes()[..cut]);
                let _ = w.flush();
                let _ = w.shutdown(Shutdown::Both);
            }
            Sink::Event(sink) => sink.push_severed_prefix(&full),
        }
    }

    /// Sever the socket abruptly (chaos `drop` faults, protocol errors).
    fn sever(&self) {
        match &self.sink {
            Sink::Sync(writer) => {
                let w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = w.shutdown(Shutdown::Both);
            }
            Sink::Event(sink) => sink.sever(),
        }
    }
}

fn connection_loop(stream: TcpStream, inner: Arc<Inner>) {
    let reg = obs::Registry::global();
    stream.set_read_timeout(Some(POLL_TICK)).ok();
    stream.set_write_timeout(Some(inner.cfg.write_timeout)).ok();
    stream.set_nodelay(true).ok();
    let conn = match stream.try_clone() {
        Ok(w) => Arc::new(Conn::sync(w)),
        Err(_) => {
            close_conn(&inner);
            return;
        }
    };
    let mut reader = FrameReader {
        stream,
        fb: FrameBuffer::new(),
    };
    let mut last_activity = Instant::now();
    loop {
        match reader.poll_frame() {
            Ok(ReadEvent::Frame(payload)) => {
                last_activity = Instant::now();
                if !handle_frame(&inner, &conn, &payload) {
                    break;
                }
            }
            Ok(ReadEvent::Eof) => break,
            Ok(ReadEvent::Idle) => {
                let quiescent = conn.inflight.load(SeqCst) == 0;
                if inner.draining.load(SeqCst) && quiescent {
                    break;
                }
                if quiescent && last_activity.elapsed() > inner.cfg.idle_timeout {
                    reg.incr("server.idle_reaped", 1);
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                reg.incr("server.proto_errors", 1);
                conn.write_response(&Response::err("-", ErrorKind::Proto, e.to_string()));
                break;
            }
            Err(_) => break,
        }
    }
    // Give this connection's in-flight workers a moment to finish their
    // writes before the last stream handle drops.
    let wait_until = Instant::now() + inner.cfg.drain_grace;
    while conn.inflight.load(SeqCst) > 0 && Instant::now() < wait_until {
        std::thread::sleep(POLL_TICK);
    }
    close_conn(&inner);
}

// ---------------------------------------------------------------------
// Frame handling, shared by both cores.
// ---------------------------------------------------------------------

/// Handle one decoded frame. Returns `false` to close the connection.
pub(crate) fn handle_frame(inner: &Arc<Inner>, conn: &Arc<Conn>, payload: &str) -> bool {
    let reg = obs::Registry::global();
    let req = match proto::parse_request(payload) {
        Ok(req) => req,
        Err(msg) => {
            reg.incr("server.proto_errors", 1);
            conn.write_response(&Response::err("-", ErrorKind::Proto, msg));
            return true;
        }
    };
    if matches!(req.verb, Verb::Query | Verb::Explain | Verb::Analyze) {
        // Query-class verbs observe their latency in `run_admitted`,
        // where the real work (and the slow-query log) lives.
        start_query(inner, conn, req);
        return true;
    }
    let t0 = Instant::now();
    let verb = req.verb.as_str();
    match req.verb {
        Verb::Query | Verb::Explain | Verb::Analyze => unreachable!("handled above"),
        Verb::Stats => {
            conn.write_response(&Response::ok(
                &req.id,
                obs::Registry::global().snapshot().render(),
            ));
        }
        Verb::Health => {
            let status = if inner.draining.load(SeqCst) {
                "draining"
            } else {
                "ok"
            };
            // Pin the serving snapshot once so every reported line
            // describes the same version, even mid-swap.
            let snap = inner.engine.snapshot();
            let body = format!(
                "status: {status}\ncore: {}\nactive_conns: {}\ninflight: {}\nwaiting: {}\npool_threads: {}\nsnapshot_version: {}\nloaded_at_unix: {}\ndocuments: {}\ntables: {}\nrows: {}",
                inner.core.get().map(String::as_str).unwrap_or("unknown"),
                inner.active_conns.load(SeqCst),
                inner.admission.inflight(),
                inner.admission.waiting(),
                ppf_pool::current_threads(),
                snap.version(),
                snap.loaded_at_unix(),
                snap.doc_count(),
                snap.table_count(),
                snap.row_count(),
            );
            conn.write_response(&Response::ok(&req.id, body).with_version(snap.version()));
        }
        Verb::Cancel => {
            reg.incr("server.cancel_requests", 1);
            let target = req.body.trim();
            let token = inner.lock_queries().get(target).cloned();
            let body = match token {
                Some(t) => {
                    t.cancel();
                    "cancelled"
                }
                None => "not-found",
            };
            conn.write_response(&Response::ok(&req.id, body));
        }
        Verb::Shutdown => {
            conn.write_response(&Response::ok(&req.id, "draining"));
            trigger_drain(inner);
        }
        Verb::Slowlog => {
            let threshold_ms = inner.cfg.slow_query.as_secs_f64() * 1e3;
            let log = inner.lock_slowlog();
            let body = if log.is_empty() {
                format!("slowlog empty (threshold {threshold_ms:.0} ms)")
            } else {
                let mut body = format!(
                    "slow queries (threshold {threshold_ms:.0} ms, {} of cap {}, newest first):\n",
                    log.len(),
                    inner.cfg.slowlog_capacity,
                );
                for entry in log.iter().rev() {
                    body.push_str(&entry.render());
                    body.push('\n');
                }
                body
            };
            drop(log);
            conn.write_response(&Response::ok(&req.id, body));
        }
        Verb::Chaos => match inner.chaos.install(req.body.trim()) {
            Ok(summary) => conn.write_response(&Response::ok(&req.id, summary)),
            Err(msg) => conn.write_response(&Response::err(&req.id, ErrorKind::Unsupported, msg)),
        },
        Verb::Reload => start_reload(inner, conn, req),
    }
    reg.observe(
        &format!("server.verb_ns.{verb}"),
        t0.elapsed().as_nanos() as u64,
    );
    true
}

/// Admission-gate a query-class request and, if admitted, run it on its
/// own worker thread so the connection can keep reading (pipelining,
/// `cancel`).
///
/// This path must never block or panic: it runs on an event thread in
/// the default core. [`Admission::try_admit`] resolves the common cases
/// immediately; only the "all slots busy, queue has room" case defers
/// the blocking wait to the worker thread it needed anyway. A failed
/// worker spawn sheds the one request with a typed `[overload]` error.
fn start_query(inner: &Arc<Inner>, conn: &Arc<Conn>, req: Request) {
    let reg = obs::Registry::global();
    if inner.draining.load(SeqCst) {
        reg.incr("server.rejected_shutdown", 1);
        conn.write_response(&Response::err(
            &req.id,
            ErrorKind::Shutdown,
            "server is draining",
        ));
        return;
    }
    if conn.inflight.load(SeqCst) >= inner.cfg.per_conn_cap {
        reg.incr("server.shed", 1);
        reg.incr("server.shed.conn_cap", 1);
        conn.write_response(&Response::err(
            &req.id,
            ErrorKind::Overload,
            format!("shed: conn_cap ({} in flight)", inner.cfg.per_conn_cap),
        ));
        return;
    }
    let slot = match inner.admission.try_admit() {
        TryAdmit::Admitted(slot) => Some(slot),
        TryAdmit::WouldQueue => None,
        TryAdmit::Shed(reason) => {
            shed_query(&req.id, conn, reason);
            return;
        }
    };
    conn.inflight.fetch_add(1, SeqCst);
    let token = CancelToken::new();
    inner.lock_queries().insert(req.id.clone(), token.clone());
    let id = req.id.clone();
    let worker_inner = inner.clone();
    let worker_conn = conn.clone();
    let spawned = spawn_sheddable("ppfd-query", move || {
        let reg = obs::Registry::global();
        let slot = match slot {
            Some(slot) => slot,
            // All slots were busy: park in the blocking queue here, off
            // the connection's thread.
            None => match worker_inner.admission.admit() {
                Ok(slot) => slot,
                Err(reason) => {
                    shed_query(&req.id, &worker_conn, reason);
                    release_request(&worker_inner, &worker_conn, &req.id);
                    return;
                }
            },
        };
        if slot.waited {
            reg.incr("server.queued", 1);
        }
        reg.incr("server.queries", 1);
        run_admitted(&worker_inner, &worker_conn, &req, token, slot);
    });
    if spawned.is_err() {
        // Undo the reservation and shed: the admission slot (if held)
        // frees itself when the unspawned closure drops.
        reg.incr("server.spawn_failures", 1);
        reg.incr("server.shed", 1);
        reg.incr("server.shed.spawn", 1);
        release_request(inner, conn, &id);
        conn.write_response(&Response::err(
            &id,
            ErrorKind::Overload,
            "shed: cannot spawn query worker",
        ));
    }
}

fn shed_query(id: &str, conn: &Conn, reason: ShedReason) {
    let reg = obs::Registry::global();
    reg.incr("server.shed", 1);
    reg.incr(&format!("server.shed.{}", reason.as_str()), 1);
    conn.write_response(&Response::err(
        id,
        ErrorKind::Overload,
        format!("shed: {}", shed_detail(reason)),
    ));
}

fn shed_detail(reason: ShedReason) -> &'static str {
    match reason {
        ShedReason::Busy => "all slots busy (shed policy)",
        ShedReason::QueueFull => "admission queue full",
        ShedReason::QueueTimeout => "timed out waiting for a slot",
    }
}

/// Handle one `reload` request. Like queries, the staging build runs on
/// its own worker thread — it can take arbitrarily long (parse → shred →
/// finalize → stats) and must never block an event thread. Unlike
/// queries it skips admission (it consumes no query slot; the engine's
/// own staging lock serializes reloads and refuses pile-ups with a typed
/// `busy`), but it does hold the connection's pipelining gauge so the
/// connection is not reaped mid-build.
fn start_reload(inner: &Arc<Inner>, conn: &Arc<Conn>, req: Request) {
    let reg = obs::Registry::global();
    if inner.draining.load(SeqCst) {
        reg.incr("engine.reload_refused_draining", 1);
        conn.write_response(&Response::err(
            &req.id,
            ErrorKind::Shutdown,
            ReloadError::Draining.to_string(),
        ));
        return;
    }
    let Some(reloader) = inner.reloader.clone() else {
        conn.write_response(&Response::err(
            &req.id,
            ErrorKind::Unsupported,
            "this server has no reload source",
        ));
        return;
    };
    conn.inflight.fetch_add(1, SeqCst);
    let id = req.id.clone();
    let worker_inner = inner.clone();
    let worker_conn = conn.clone();
    let spawned = spawn_sheddable("ppfd-reload", move || {
        let resp = match do_reload(&worker_inner, &reloader) {
            Ok(snap) => Response::ok(
                &req.id,
                format!(
                    "reloaded\nsnapshot_version: {}\ndocuments: {}\ntables: {}\nrows: {}",
                    snap.version(),
                    snap.doc_count(),
                    snap.table_count(),
                    snap.row_count(),
                ),
            )
            .with_version(snap.version()),
            Err(e) => {
                let kind = match e {
                    // Transient staffing conflict: back off and retry.
                    ReloadError::Busy => ErrorKind::Overload,
                    ReloadError::Draining => ErrorKind::Shutdown,
                    ReloadError::Parse(_) => ErrorKind::Parse,
                    ReloadError::Io(_) | ReloadError::Shred(_) | ReloadError::Panic(_) => {
                        ErrorKind::Exec
                    }
                };
                Response::err(&req.id, kind, e.to_string())
            }
        };
        worker_conn.write_response_quiet(&resp);
        worker_conn.inflight.fetch_sub(1, SeqCst);
        if let Some(sink) = worker_conn.event_sink() {
            sink.ring_home();
        }
    });
    if spawned.is_err() {
        reg.incr("server.spawn_failures", 1);
        reg.incr("server.shed", 1);
        reg.incr("server.shed.spawn", 1);
        conn.inflight.fetch_sub(1, SeqCst);
        conn.write_response(&Response::err(
            &id,
            ErrorKind::Overload,
            "shed: cannot spawn reload worker",
        ));
    }
}

/// Stage and swap one snapshot through [`SharedEngine::reload_with`],
/// applying any chaos load-path fault *inside* the builder so an
/// injected panic/IO failure travels the real containment path. Shared
/// by the `reload` verb worker and [`ServerHandle::reload`] (SIGHUP).
fn do_reload(
    inner: &Arc<Inner>,
    reloader: &ReloadFn,
) -> Result<Arc<ppf_core::EngineSnapshot>, ReloadError> {
    let reg = obs::Registry::global();
    let t0 = Instant::now();
    let chaos_inner = inner.clone();
    let reloader = reloader.clone();
    let outcome = inner.engine.reload_with(move || {
        // Drawn here — not before `reload_with` — so a `busy` refusal
        // consumes no fault and the injected/observed counts reconcile.
        let fault = chaos_inner.chaos.next_reload_fault();
        if fault != ReloadFault::None {
            obs::Registry::global().incr(&format!("server.faults.{}", fault.label()), 1);
        }
        match fault {
            ReloadFault::Panic => panic!("chaos: injected reload panic"),
            ReloadFault::Io => {
                return Err(ReloadError::io("chaos: injected reload I/O fault"));
            }
            ReloadFault::Slow(pause) => std::thread::sleep(pause),
            ReloadFault::None => {}
        }
        reloader()
    });
    reg.observe("server.verb_ns.reload", t0.elapsed().as_nanos() as u64);
    outcome
}

/// Run one admitted query to completion on the worker thread, applying
/// any chaos fault, and deliver exactly one response unless a `drop`
/// fault severs the connection first. Cleanup (query-table entry,
/// per-connection gauge, admission slot) happens on every path.
fn run_admitted(
    inner: &Arc<Inner>,
    conn: &Arc<Conn>,
    req: &Request,
    token: CancelToken,
    slot: Slot,
) {
    let reg = obs::Registry::global();
    let fault = inner.chaos.next_query_fault();
    if fault != Fault::None {
        reg.incr(&format!("server.faults.{}", fault.label()), 1);
    }
    match fault {
        Fault::Drop(DropPhase::PreExec) => {
            conn.sever();
            finish_query(inner, conn, &req.id, slot);
            return;
        }
        Fault::Slow(pause) => std::thread::sleep(pause),
        _ => {}
    }

    let mut limits = QueryLimits::none().with_cancel_token(token);
    match req.timeout_ms() {
        Some(ms) => limits = limits.with_timeout(Duration::from_millis(ms)),
        None => {
            if let Some(d) = inner.cfg.default_deadline {
                limits = limits.with_timeout(d);
            }
        }
    }
    if let Some(n) = req.max_rows() {
        limits = limits.with_max_rows(n);
    }

    // `Poison` forces the partitioned pipeline on this thread and arms a
    // one-shot pool-worker panic: the shared caches get poisoned under a
    // real lock holder and must recover (counted in the registry).
    let prev_mode = matches!(fault, Fault::Poison).then(|| {
        sqlexec::exec::test_hooks::arm_worker_panic();
        sqlexec::set_parallel_mode(sqlexec::ParallelMode::ForceOn)
    });
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if matches!(fault, Fault::Panic) {
            panic!("chaos: injected worker panic");
        }
        execute(inner, req, &limits)
    }));
    let elapsed = t0.elapsed();
    if let Some(prev) = prev_mode {
        sqlexec::set_parallel_mode(prev);
    }

    let (resp, rows, phases, verdict) = match outcome {
        Ok(Ok((body, phases, rows, version))) => (
            Response::ok(&req.id, body).with_version(version),
            rows,
            phases,
            "ok",
        ),
        Ok(Err(e)) => {
            let kind = ErrorKind::from_engine_kind(e.kind());
            (
                Response::err(&req.id, kind, e.to_string()),
                0,
                None,
                kind.as_str(),
            )
        }
        Err(payload) => {
            reg.incr("server.panics_contained", 1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (
                Response::err(&req.id, ErrorKind::Exec, format!("panic contained: {msg}")),
                0,
                None,
                "panic",
            )
        }
    };
    reg.observe(
        &format!("server.verb_ns.{}", req.verb.as_str()),
        elapsed.as_nanos() as u64,
    );
    if inner.cfg.slowlog_capacity > 0 && elapsed >= inner.cfg.slow_query {
        let mut query = req.body.trim().to_string();
        if let Some((idx, _)) = query.char_indices().nth(SLOWLOG_QUERY_CHARS) {
            query.truncate(idx);
            query.push_str("...");
        }
        let entry = SlowEntry {
            at: inner.started.elapsed(),
            id: req.id.clone(),
            verb: req.verb.as_str(),
            query,
            total: elapsed,
            rows,
            phases,
            outcome: verdict.to_string(),
        };
        let mut log = inner.lock_slowlog();
        while log.len() >= inner.cfg.slowlog_capacity {
            log.pop_front();
        }
        log.push_back(entry);
    }
    match fault {
        Fault::Drop(DropPhase::PreWrite) => conn.sever(),
        Fault::Drop(DropPhase::MidWrite) => conn.write_severed(&resp),
        // Quiet: buffer the bytes now, let `finish_query` drop the
        // pipelining gauge, and only then (via `release_request`'s
        // `ring_home`) wake the event loop. The wake can preempt this
        // worker on a busy host; if it lands before the gauge release,
        // a strictly sequential client's next request can reach
        // `start_query` while this one still counts against `conn_cap`.
        _ => conn.write_response_quiet(&resp),
    }
    finish_query(inner, conn, &req.id, slot);
}

/// Release the request's bookkeeping: the `cancel` table entry and the
/// connection's pipelining gauge. The event loop notices the gauge going
/// to zero through its outbound-buffer notes.
fn release_request(inner: &Inner, conn: &Conn, id: &str) {
    inner.lock_queries().remove(id);
    conn.inflight.fetch_sub(1, SeqCst);
    // This ring is what flushes a completed query's response: the push
    // was quiet so that the gauge drop above happens before the loop
    // (and therefore the client) can see the response. It also lets a
    // closing connection re-check its in-flight count promptly on paths
    // that wrote nothing (severed, shed).
    if let Some(sink) = conn.event_sink() {
        sink.ring_home();
    }
}

fn finish_query(inner: &Inner, conn: &Conn, id: &str, slot: Slot) {
    release_request(inner, conn, id);
    drop(slot);
}

/// What [`execute`] hands back on success: the body of the `ok`
/// response, the engine's phase breakdown when the verb surfaces one
/// (plain queries), the result row count — both feed the slow-query
/// log — and the snapshot version that answered (the response's
/// `version=` header stamp).
type Executed = (String, Option<[u64; 5]>, u64, u64);

/// Execute the engine work for one request. Each request pins exactly
/// one snapshot, so a query racing a reload is answered wholly by the
/// version it stamps.
fn execute(
    inner: &Inner,
    req: &Request,
    limits: &QueryLimits,
) -> Result<Executed, ppf_core::QueryError> {
    match req.verb {
        Verb::Query => {
            let result = inner
                .engine
                .query_with_limits(req.body.trim(), limits.clone())?;
            let ids = result.ids();
            let e = &result.engine;
            let phases = Some([
                e.parse_ns,
                e.translate_ns,
                e.plan_ns,
                e.execute_ns,
                e.publish_ns,
            ]);
            let cap = inner.cfg.max_response_rows;
            let mut body = format!("rows {}\n", ids.len());
            for id in ids.iter().take(cap) {
                body.push_str(&id.to_string());
                body.push('\n');
            }
            if ids.len() > cap {
                body.push_str(&format!("truncated {}\n", ids.len() - cap));
            }
            Ok((body, phases, ids.len() as u64, result.snapshot_version))
        }
        Verb::Explain => {
            let snap = inner.engine.snapshot();
            let t = snap.translate(req.body.trim())?;
            let body = match t.stmt {
                None => "(statically empty)".to_string(),
                Some(stmt) => {
                    sqlexec::explain_stmt(snap.db(), &stmt).map_err(ppf_core::QueryError::from)?
                }
            };
            Ok((body, None, 0, snap.version()))
        }
        Verb::Analyze => {
            let snap = inner.engine.snapshot();
            let t = snap.translate(req.body.trim())?;
            let body = match t.stmt {
                None => "(statically empty)".to_string(),
                Some(stmt) => {
                    sqlexec::explain_analyze_with_limits(snap.db(), &stmt, limits.clone())
                        .map_err(ppf_core::QueryError::from)?
                }
            };
            Ok((body, None, 0, snap.version()))
        }
        _ => unreachable!("only query-class verbs reach execute()"),
    }
}

/// Background metrics reporter: a registry snapshot to stderr at the
/// configured interval. Sleeps on the drain condvar — not a poll tick —
/// so it wakes exactly on schedule or on drain, and is joined by
/// [`ServerHandle::join`] like every other core thread.
fn metrics_loop(inner: Arc<Inner>, interval: Duration) {
    let mut next = Instant::now() + interval;
    let mut flag = inner
        .drain_flag
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    while !*flag {
        let now = Instant::now();
        if now >= next {
            next = now + interval;
            eprintln!(
                "--- metrics snapshot (+{:.1}s) ---\n{}",
                inner.started.elapsed().as_secs_f64(),
                obs::Registry::global().snapshot().render()
            );
        }
        let wait = next
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        let (guard, _) = inner
            .drain_cv
            .wait_timeout(flag, wait)
            .unwrap_or_else(PoisonError::into_inner);
        flag = guard;
    }
}
