//! The serving loop: accept, admit, execute, respond, drain.
//!
//! One [`SharedEngine`] serves N connections, one OS thread per
//! connection plus one short-lived worker thread per admitted query (so
//! a connection can pipeline queries up to its cap, and `cancel` can
//! reach a query mid-flight). Worker count is bounded by the admission
//! controller's in-flight cap, not by connection count.
//!
//! Robustness properties the tests and the chaos harness hold us to:
//!
//! * a panicking query (injected or real) is contained by `catch_unwind`
//!   in its worker and degrades to one `err exec` response — never a
//!   process death;
//! * every rejection is typed (`overload`, `shutdown`, `proto`) so
//!   clients can back off instead of guessing;
//! * sockets carry read/write timeouts and idle connections are reaped,
//!   so slow or vanished clients cannot pin resources;
//! * `shutdown`/SIGTERM drains gracefully: stop accepting, give
//!   in-flight queries a grace period, cancel stragglers through their
//!   [`CancelToken`]s, then exit with counters flushed.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ppf_core::{CancelToken, QueryLimits, SharedEngine};

use crate::admission::{Admission, AdmissionPolicy, ShedReason, Slot};
use crate::fault::{ChaosState, DropPhase, Fault};
use crate::proto::{self, ErrorKind, Request, Response, Verb};

/// Tunables. `Default` is sized for a small daemon; `ppfd` exposes each
/// knob as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission: queries allowed to run at once, process-wide.
    pub max_inflight: usize,
    /// Admission: requests allowed to wait for a slot (0 = pure shed).
    pub queue_depth: usize,
    /// Admission: longest a queued request waits before it is shed.
    pub queue_wait: Duration,
    /// Queue or shed when all slots are busy.
    pub policy: AdmissionPolicy,
    /// Queries one connection may have in flight at once (pipelining cap).
    pub per_conn_cap: usize,
    /// Deadline applied to queries that do not send `timeout=MS`.
    pub default_deadline: Option<Duration>,
    /// Socket write timeout: a stuck client forfeits its response.
    pub write_timeout: Duration,
    /// Close connections with no traffic and no queries for this long.
    pub idle_timeout: Duration,
    /// Drain: how long in-flight queries get to finish before their
    /// cancel tokens fire (applied twice: once before, once after).
    pub drain_grace: Duration,
    /// Result rows rendered per query response (the rest is truncated
    /// with a count; the frame cap is the hard bound).
    pub max_response_rows: usize,
    /// Queries at or above this wall-clock duration enter the slow-query
    /// log (`Duration::ZERO` logs every query; useful in tests).
    pub slow_query: Duration,
    /// Slots in the bounded slow-query ring (0 disables the log).
    pub slowlog_capacity: usize,
    /// When set, a background thread writes a metrics snapshot to stderr
    /// at this interval until the server drains.
    pub metrics_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: ppf_pool::current_threads().max(2) * 2,
            queue_depth: 16,
            queue_wait: Duration::from_millis(200),
            policy: AdmissionPolicy::Queue,
            per_conn_cap: 4,
            default_deadline: Some(Duration::from_secs(10)),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            drain_grace: Duration::from_secs(2),
            max_response_rows: 100_000,
            slow_query: Duration::from_millis(250),
            slowlog_capacity: 64,
            metrics_interval: None,
        }
    }
}

/// How often blocked reads wake to check drain/idle state.
const POLL_TICK: Duration = Duration::from_millis(50);
/// How often the accept loop polls for new connections / drain.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Shared server state.
struct Inner {
    engine: SharedEngine,
    cfg: ServerConfig,
    admission: Arc<Admission>,
    chaos: ChaosState,
    draining: AtomicBool,
    active_conns: AtomicUsize,
    /// In-flight queries by request id, for `cancel` and drain.
    queries: Mutex<HashMap<String, CancelToken>>,
    /// Bounded ring of the slowest recent queries, oldest evicted first.
    slowlog: Mutex<VecDeque<SlowEntry>>,
    /// Server start, the epoch for slowlog entry ages.
    started: Instant,
}

impl Inner {
    fn lock_queries(&self) -> MutexGuard<'_, HashMap<String, CancelToken>> {
        self.queries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_slowlog(&self) -> MutexGuard<'_, VecDeque<SlowEntry>> {
        self.slowlog.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One slow-query record: what ran, how long, and where the time went.
struct SlowEntry {
    /// Time since server start when the query finished.
    at: Duration,
    id: String,
    verb: &'static str,
    /// The query text, truncated to keep the ring small.
    query: String,
    total: Duration,
    rows: u64,
    /// `parse/translate/plan/execute/publish` nanoseconds, when the verb
    /// surfaced engine stats (plain queries; explain/analyze and errors
    /// carry `None`).
    phases: Option<[u64; 5]>,
    /// `ok`, or the response's error kind.
    outcome: String,
}

impl SlowEntry {
    fn render(&self) -> String {
        let mut line = format!(
            "[+{:.3}s] {} {} {:.1} ms rows={} {}",
            self.at.as_secs_f64(),
            self.id,
            self.verb,
            self.total.as_secs_f64() * 1e3,
            self.rows,
            self.outcome,
        );
        if let Some([parse, translate, plan, execute, publish]) = self.phases {
            let ms = |ns: u64| ns as f64 / 1e6;
            line.push_str(&format!(
                " parse={:.2} translate={:.2} plan={:.2} exec={:.2} publish={:.2}",
                ms(parse),
                ms(translate),
                ms(plan),
                ms(execute),
                ms(publish),
            ));
        }
        line.push_str(" :: ");
        line.push_str(&self.query);
        line
    }
}

/// Longest query text kept per slowlog entry.
const SLOWLOG_QUERY_CHARS: usize = 200;

/// Handle returned by [`serve`]: inspect the bound address, trigger a
/// drain, wait for exit.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain (idempotent; also triggered by the
    /// `shutdown` verb). Returns immediately; use [`ServerHandle::join`]
    /// to wait for completion.
    pub fn shutdown(&self) {
        trigger_drain(&self.inner);
    }

    /// Install a chaos plan programmatically (tests; errors without the
    /// `chaos` feature).
    pub fn install_chaos(&self, spec: &str) -> Result<String, String> {
        self.inner.chaos.install(spec)
    }

    /// Whether a drain has begun (via [`ServerHandle::shutdown`], the
    /// `shutdown` verb, or a signal). `ppfd`'s main loop polls this to
    /// notice protocol-initiated shutdowns.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(SeqCst)
    }

    /// Wait until the server has fully drained and stopped.
    pub fn join(self) {
        self.accept_thread.join().ok();
    }
}

/// Bind `addr` and serve `engine` until a drain completes.
pub fn serve(engine: SharedEngine, addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let inner = Arc::new(Inner {
        admission: Admission::new(
            cfg.max_inflight,
            cfg.queue_depth,
            cfg.queue_wait,
            cfg.policy,
        ),
        engine,
        cfg,
        chaos: ChaosState::new(),
        draining: AtomicBool::new(false),
        active_conns: AtomicUsize::new(0),
        queries: Mutex::new(HashMap::new()),
        slowlog: Mutex::new(VecDeque::new()),
        started: Instant::now(),
    });
    if let Some(interval) = inner.cfg.metrics_interval {
        let metrics_inner = inner.clone();
        std::thread::Builder::new()
            .name("ppfd-metrics".to_string())
            .spawn(move || metrics_loop(metrics_inner, interval))
            .expect("spawn metrics thread");
    }
    let accept_inner = inner.clone();
    let accept_thread = std::thread::Builder::new()
        .name("ppfd-accept".to_string())
        .spawn(move || accept_loop(listener, accept_inner))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        addr: local,
        inner,
        accept_thread,
    })
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let reg = obs::Registry::global();
    while !inner.draining.load(SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                reg.incr("server.accepted", 1);
                let n = inner.active_conns.fetch_add(1, SeqCst) + 1;
                reg.observe("server.active", n as u64);
                let conn_inner = inner.clone();
                std::thread::Builder::new()
                    .name("ppfd-conn".to_string())
                    .spawn(move || {
                        connection_loop(stream, conn_inner);
                    })
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
    drop(listener); // stop accepting before waiting out the drain
    let deadline = Instant::now() + inner.cfg.drain_grace * 2 + Duration::from_secs(1);
    while (inner.active_conns.load(SeqCst) > 0 || inner.admission.inflight() > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(ACCEPT_TICK);
    }
}

/// Begin the drain exactly once: count and grace in-flight queries, then
/// cancel the stragglers.
fn trigger_drain(inner: &Arc<Inner>) {
    if inner.draining.swap(true, SeqCst) {
        return;
    }
    let reg = obs::Registry::global();
    let in_flight = inner.admission.inflight() as u64;
    reg.incr("server.drained", in_flight);
    let drain_inner = inner.clone();
    std::thread::Builder::new()
        .name("ppfd-drain".to_string())
        .spawn(move || {
            let deadline = Instant::now() + drain_inner.cfg.drain_grace;
            while drain_inner.admission.inflight() > 0 && Instant::now() < deadline {
                std::thread::sleep(POLL_TICK);
            }
            let stragglers: Vec<CancelToken> =
                drain_inner.lock_queries().values().cloned().collect();
            if !stragglers.is_empty() {
                obs::Registry::global().incr("server.drain_cancelled", stragglers.len() as u64);
                for token in stragglers {
                    token.cancel();
                }
            }
        })
        .expect("spawn drain thread");
}

/// Timeout-tolerant frame reader: accumulates bytes across read timeouts
/// so a poll tick never corrupts a partially-received frame.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum ReadEvent {
    Frame(String),
    Eof,
    /// The poll tick elapsed without completing a frame.
    Idle,
}

impl FrameReader {
    fn poll_frame(&mut self) -> io::Result<ReadEvent> {
        loop {
            if let Some(frame) = self.try_parse()? {
                return Ok(ReadEvent::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadEvent::Eof)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "connection closed inside a frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadEvent::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Extract one complete frame from the buffer, if present.
    fn try_parse(&mut self) -> io::Result<Option<String>> {
        let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > 32 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame length header too long",
                ));
            }
            return Ok(None);
        };
        let len: usize = std::str::from_utf8(&self.buf[..nl])
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad frame length header"))?;
        if len > proto::MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        if self.buf.len() < nl + 1 + len {
            return Ok(None);
        }
        let payload = String::from_utf8(self.buf[nl + 1..nl + 1 + len].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
        self.buf.drain(..nl + 1 + len);
        Ok(Some(payload))
    }
}

/// Per-connection state shared with this connection's query workers.
struct Conn {
    writer: Mutex<TcpStream>,
    inflight: AtomicUsize,
}

impl Conn {
    fn write_response(&self, resp: &Response) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // A failed write (peer gone, write timeout) is the client's
        // loss; the server must not wedge on it.
        let _ = proto::write_frame(&mut *w, &resp.render());
    }

    /// Sever the socket abruptly (chaos `drop` faults, protocol errors).
    fn sever(&self) {
        let w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.shutdown(Shutdown::Both);
    }
}

fn connection_loop(stream: TcpStream, inner: Arc<Inner>) {
    let reg = obs::Registry::global();
    stream.set_read_timeout(Some(POLL_TICK)).ok();
    stream.set_write_timeout(Some(inner.cfg.write_timeout)).ok();
    stream.set_nodelay(true).ok();
    let conn = match stream.try_clone() {
        Ok(w) => Arc::new(Conn {
            writer: Mutex::new(w),
            inflight: AtomicUsize::new(0),
        }),
        Err(_) => {
            close_conn(&inner);
            return;
        }
    };
    let mut reader = FrameReader {
        stream,
        buf: Vec::new(),
    };
    let mut last_activity = Instant::now();
    loop {
        match reader.poll_frame() {
            Ok(ReadEvent::Frame(payload)) => {
                last_activity = Instant::now();
                if !handle_frame(&inner, &conn, &payload) {
                    break;
                }
            }
            Ok(ReadEvent::Eof) => break,
            Ok(ReadEvent::Idle) => {
                let quiescent = conn.inflight.load(SeqCst) == 0;
                if inner.draining.load(SeqCst) && quiescent {
                    break;
                }
                if quiescent && last_activity.elapsed() > inner.cfg.idle_timeout {
                    reg.incr("server.idle_reaped", 1);
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                reg.incr("server.proto_errors", 1);
                conn.write_response(&Response::err("-", ErrorKind::Proto, e.to_string()));
                break;
            }
            Err(_) => break,
        }
    }
    // Give this connection's in-flight workers a moment to finish their
    // writes before the last stream handle drops.
    let wait_until = Instant::now() + inner.cfg.drain_grace;
    while conn.inflight.load(SeqCst) > 0 && Instant::now() < wait_until {
        std::thread::sleep(POLL_TICK);
    }
    close_conn(&inner);
}

fn close_conn(inner: &Inner) {
    let reg = obs::Registry::global();
    let n = inner.active_conns.fetch_sub(1, SeqCst) - 1;
    reg.incr("server.closed", 1);
    reg.observe("server.active", n as u64);
}

/// Handle one decoded frame. Returns `false` to close the connection.
fn handle_frame(inner: &Arc<Inner>, conn: &Arc<Conn>, payload: &str) -> bool {
    let reg = obs::Registry::global();
    let req = match proto::parse_request(payload) {
        Ok(req) => req,
        Err(msg) => {
            reg.incr("server.proto_errors", 1);
            conn.write_response(&Response::err("-", ErrorKind::Proto, msg));
            return true;
        }
    };
    if matches!(req.verb, Verb::Query | Verb::Explain | Verb::Analyze) {
        // Query-class verbs observe their latency in `run_admitted`,
        // where the real work (and the slow-query log) lives.
        start_query(inner, conn, req);
        return true;
    }
    let t0 = Instant::now();
    let verb = req.verb.as_str();
    match req.verb {
        Verb::Query | Verb::Explain | Verb::Analyze => unreachable!("handled above"),
        Verb::Stats => {
            conn.write_response(&Response::ok(
                &req.id,
                obs::Registry::global().snapshot().render(),
            ));
        }
        Verb::Health => {
            let status = if inner.draining.load(SeqCst) {
                "draining"
            } else {
                "ok"
            };
            let body = format!(
                "status: {status}\nactive_conns: {}\ninflight: {}\nwaiting: {}\npool_threads: {}",
                inner.active_conns.load(SeqCst),
                inner.admission.inflight(),
                inner.admission.waiting(),
                ppf_pool::current_threads(),
            );
            conn.write_response(&Response::ok(&req.id, body));
        }
        Verb::Cancel => {
            reg.incr("server.cancel_requests", 1);
            let target = req.body.trim();
            let token = inner.lock_queries().get(target).cloned();
            let body = match token {
                Some(t) => {
                    t.cancel();
                    "cancelled"
                }
                None => "not-found",
            };
            conn.write_response(&Response::ok(&req.id, body));
        }
        Verb::Shutdown => {
            conn.write_response(&Response::ok(&req.id, "draining"));
            trigger_drain(inner);
        }
        Verb::Slowlog => {
            let threshold_ms = inner.cfg.slow_query.as_secs_f64() * 1e3;
            let log = inner.lock_slowlog();
            let body = if log.is_empty() {
                format!("slowlog empty (threshold {threshold_ms:.0} ms)")
            } else {
                let mut body = format!(
                    "slow queries (threshold {threshold_ms:.0} ms, {} of cap {}, newest first):\n",
                    log.len(),
                    inner.cfg.slowlog_capacity,
                );
                for entry in log.iter().rev() {
                    body.push_str(&entry.render());
                    body.push('\n');
                }
                body
            };
            drop(log);
            conn.write_response(&Response::ok(&req.id, body));
        }
        Verb::Chaos => match inner.chaos.install(req.body.trim()) {
            Ok(summary) => conn.write_response(&Response::ok(&req.id, summary)),
            Err(msg) => conn.write_response(&Response::err(&req.id, ErrorKind::Unsupported, msg)),
        },
    }
    reg.observe(
        &format!("server.verb_ns.{verb}"),
        t0.elapsed().as_nanos() as u64,
    );
    true
}

/// Admission-gate a query-class request and, if admitted, run it on its
/// own worker thread so the connection can keep reading (pipelining,
/// `cancel`).
fn start_query(inner: &Arc<Inner>, conn: &Arc<Conn>, req: Request) {
    let reg = obs::Registry::global();
    if inner.draining.load(SeqCst) {
        reg.incr("server.rejected_shutdown", 1);
        conn.write_response(&Response::err(
            &req.id,
            ErrorKind::Shutdown,
            "server is draining",
        ));
        return;
    }
    if conn.inflight.load(SeqCst) >= inner.cfg.per_conn_cap {
        reg.incr("server.shed", 1);
        reg.incr("server.shed.conn_cap", 1);
        conn.write_response(&Response::err(
            &req.id,
            ErrorKind::Overload,
            format!("shed: conn_cap ({} in flight)", inner.cfg.per_conn_cap),
        ));
        return;
    }
    let slot = match inner.admission.admit() {
        Ok(slot) => slot,
        Err(reason) => {
            reg.incr("server.shed", 1);
            reg.incr(&format!("server.shed.{}", reason.as_str()), 1);
            conn.write_response(&Response::err(
                &req.id,
                ErrorKind::Overload,
                format!("shed: {}", shed_detail(reason)),
            ));
            return;
        }
    };
    if slot.waited {
        reg.incr("server.queued", 1);
    }
    reg.incr("server.queries", 1);
    conn.inflight.fetch_add(1, SeqCst);
    let token = CancelToken::new();
    inner.lock_queries().insert(req.id.clone(), token.clone());
    let inner = inner.clone();
    let conn = conn.clone();
    std::thread::Builder::new()
        .name("ppfd-query".to_string())
        .spawn(move || {
            run_admitted(&inner, &conn, &req, token, slot);
        })
        .expect("spawn query worker");
}

fn shed_detail(reason: ShedReason) -> &'static str {
    match reason {
        ShedReason::Busy => "all slots busy (shed policy)",
        ShedReason::QueueFull => "admission queue full",
        ShedReason::QueueTimeout => "timed out waiting for a slot",
    }
}

/// Run one admitted query to completion on the worker thread, applying
/// any chaos fault, and deliver exactly one response unless a `drop`
/// fault severs the connection first. Cleanup (query-table entry,
/// per-connection gauge, admission slot) happens on every path.
fn run_admitted(
    inner: &Arc<Inner>,
    conn: &Arc<Conn>,
    req: &Request,
    token: CancelToken,
    slot: Slot,
) {
    let reg = obs::Registry::global();
    let fault = inner.chaos.next_query_fault();
    if fault != Fault::None {
        reg.incr(&format!("server.faults.{}", fault.label()), 1);
    }
    match fault {
        Fault::Drop(DropPhase::PreExec) => {
            conn.sever();
            finish_query(inner, conn, &req.id, slot);
            return;
        }
        Fault::Slow(pause) => std::thread::sleep(pause),
        _ => {}
    }

    let mut limits = QueryLimits::none().with_cancel_token(token);
    match req.timeout_ms() {
        Some(ms) => limits = limits.with_timeout(Duration::from_millis(ms)),
        None => {
            if let Some(d) = inner.cfg.default_deadline {
                limits = limits.with_timeout(d);
            }
        }
    }
    if let Some(n) = req.max_rows() {
        limits = limits.with_max_rows(n);
    }

    // `Poison` forces the partitioned pipeline on this thread and arms a
    // one-shot pool-worker panic: the shared caches get poisoned under a
    // real lock holder and must recover (counted in the registry).
    let prev_mode = matches!(fault, Fault::Poison).then(|| {
        sqlexec::exec::test_hooks::arm_worker_panic();
        sqlexec::set_parallel_mode(sqlexec::ParallelMode::ForceOn)
    });
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if matches!(fault, Fault::Panic) {
            panic!("chaos: injected worker panic");
        }
        execute(inner, req, &limits)
    }));
    let elapsed = t0.elapsed();
    if let Some(prev) = prev_mode {
        sqlexec::set_parallel_mode(prev);
    }

    let (resp, rows, phases, verdict) = match outcome {
        Ok(Ok((body, phases, rows))) => (Response::ok(&req.id, body), rows, phases, "ok"),
        Ok(Err(e)) => {
            let kind = ErrorKind::from_engine_kind(e.kind());
            (
                Response::err(&req.id, kind, e.to_string()),
                0,
                None,
                kind.as_str(),
            )
        }
        Err(payload) => {
            reg.incr("server.panics_contained", 1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (
                Response::err(&req.id, ErrorKind::Exec, format!("panic contained: {msg}")),
                0,
                None,
                "panic",
            )
        }
    };
    reg.observe(
        &format!("server.verb_ns.{}", req.verb.as_str()),
        elapsed.as_nanos() as u64,
    );
    if inner.cfg.slowlog_capacity > 0 && elapsed >= inner.cfg.slow_query {
        let mut query = req.body.trim().to_string();
        if let Some((idx, _)) = query.char_indices().nth(SLOWLOG_QUERY_CHARS) {
            query.truncate(idx);
            query.push_str("...");
        }
        let entry = SlowEntry {
            at: inner.started.elapsed(),
            id: req.id.clone(),
            verb: req.verb.as_str(),
            query,
            total: elapsed,
            rows,
            phases,
            outcome: verdict.to_string(),
        };
        let mut log = inner.lock_slowlog();
        while log.len() >= inner.cfg.slowlog_capacity {
            log.pop_front();
        }
        log.push_back(entry);
    }
    match fault {
        Fault::Drop(DropPhase::PreWrite) => conn.sever(),
        Fault::Drop(DropPhase::MidWrite) => {
            let full = resp.render();
            let cut = full.len() / 2;
            let mut w = conn.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = w.write_all(format!("{}\n", full.len()).as_bytes());
            let _ = w.write_all(&full.as_bytes()[..cut]);
            let _ = w.flush();
            let _ = w.shutdown(Shutdown::Both);
        }
        _ => conn.write_response(&resp),
    }
    finish_query(inner, conn, &req.id, slot);
}

fn finish_query(inner: &Inner, conn: &Conn, id: &str, slot: Slot) {
    inner.lock_queries().remove(id);
    conn.inflight.fetch_sub(1, SeqCst);
    drop(slot);
}

/// Execute the engine work for one request. On success: the body of the
/// `ok` response, the engine's phase breakdown when the verb surfaces
/// one (plain queries), and the result row count — both feed the
/// slow-query log.
fn execute(
    inner: &Inner,
    req: &Request,
    limits: &QueryLimits,
) -> Result<(String, Option<[u64; 5]>, u64), ppf_core::QueryError> {
    match req.verb {
        Verb::Query => {
            let result = inner
                .engine
                .query_with_limits(req.body.trim(), limits.clone())?;
            let ids = result.ids();
            let e = &result.engine;
            let phases = Some([
                e.parse_ns,
                e.translate_ns,
                e.plan_ns,
                e.execute_ns,
                e.publish_ns,
            ]);
            let cap = inner.cfg.max_response_rows;
            let mut body = format!("rows {}\n", ids.len());
            for id in ids.iter().take(cap) {
                body.push_str(&id.to_string());
                body.push('\n');
            }
            if ids.len() > cap {
                body.push_str(&format!("truncated {}\n", ids.len() - cap));
            }
            Ok((body, phases, ids.len() as u64))
        }
        Verb::Explain => {
            let t = inner.engine.translate(req.body.trim())?;
            let body = match t.stmt {
                None => "(statically empty)".to_string(),
                Some(stmt) => sqlexec::explain_stmt(inner.engine.db(), &stmt)
                    .map_err(ppf_core::QueryError::from)?,
            };
            Ok((body, None, 0))
        }
        Verb::Analyze => {
            let t = inner.engine.translate(req.body.trim())?;
            let body = match t.stmt {
                None => "(statically empty)".to_string(),
                Some(stmt) => {
                    sqlexec::explain_analyze_with_limits(inner.engine.db(), &stmt, limits.clone())
                        .map_err(ppf_core::QueryError::from)?
                }
            };
            Ok((body, None, 0))
        }
        _ => unreachable!("only query-class verbs reach execute()"),
    }
}

/// Background metrics reporter: a registry snapshot to stderr at a fixed
/// interval until the server drains.
fn metrics_loop(inner: Arc<Inner>, interval: Duration) {
    let mut next = Instant::now() + interval;
    while !inner.draining.load(SeqCst) {
        std::thread::sleep(POLL_TICK);
        if Instant::now() >= next {
            next = Instant::now() + interval;
            eprintln!(
                "--- metrics snapshot (+{:.1}s) ---\n{}",
                inner.started.elapsed().as_secs_f64(),
                obs::Registry::global().snapshot().render()
            );
        }
    }
}
