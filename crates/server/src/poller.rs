//! Readiness polling behind one trait, with zero dependencies.
//!
//! Two backends implement [`PollBackend`]:
//!
//! * [`EpollPoller`] — Linux `epoll` reached through raw `syscall!`
//!   wrappers (inline-asm syscalls on x86_64/aarch64; no `libc` crate,
//!   no `extern` symbols). Level-triggered, one `eventfd` per poller as
//!   the cross-thread wakeup channel. Millions of mostly-idle
//!   connections cost one sleeping `epoll_pwait` per event thread.
//! * [`FallbackPoller`] — a portable degraded mode for non-Linux hosts
//!   (and for CI coverage via `PPF_POLLER=fallback`): it cannot ask the
//!   kernel which sockets are ready, so every `wait` tick reports all
//!   registered tokens as ready and relies on the event loop's
//!   nonblocking reads/writes to no-op on the quiet ones. Its wakeup
//!   channel is a loopback `TcpStream` pair, so cross-thread wakeups are
//!   still prompt, not tick-bound.
//!
//! [`Poller::new`] picks the backend: epoll where the shim exists,
//! fallback elsewhere or when forced by the environment.

use std::io;
use std::time::Duration;

/// What the event loop wants to hear about for one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only (the common idle-connection state).
    Read,
    /// Readable plus writable (outbound bytes are queued).
    ReadWrite,
}

/// One readiness event. `token` is the registration's identity; a level
/// may report both directions at once.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup on the fd — the connection should be torn down
    /// after a final read attempt drains whatever the kernel still has.
    pub hangup: bool,
}

/// A thread-safe handle that interrupts a blocked [`PollBackend::wait`].
#[derive(Clone)]
pub struct Waker(WakerImpl);

#[derive(Clone)]
enum WakerImpl {
    #[cfg(ppf_epoll)]
    Epoll(std::sync::Arc<sys::OwnedFd>),
    Stream(std::sync::Arc<std::net::TcpStream>),
}

impl Waker {
    /// Wake the poller. Cheap, idempotent within one wait cycle, and
    /// safe from any thread (including the poller's own).
    pub fn wake(&self) {
        match &self.0 {
            #[cfg(ppf_epoll)]
            WakerImpl::Epoll(fd) => {
                // An eventfd write of 1; EAGAIN means the counter is
                // already nonzero — the wakeup is pending, done.
                let _ = sys::write_u64(fd.raw(), 1);
            }
            WakerImpl::Stream(stream) => {
                use std::io::Write;
                // A full pipe means unread wakeups are already queued.
                let _ = (&**stream).write(&[1u8]);
            }
        }
    }
}

/// The readiness backend the event loop drives. Registration keys are
/// caller-chosen `token`s; fds are raw so the trait stays identical
/// across backends (the fallback ignores them).
pub trait PollBackend: Send {
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;
    fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;
    fn deregister(&mut self, fd: i32, token: u64) -> io::Result<()>;
    /// Block until readiness, a wakeup, or `timeout`; deliver events.
    /// Wakeup consumption is internal — wakers never surface as events.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
    fn waker(&self) -> Waker;
    /// Backend name for the `health` verb and logs.
    fn name(&self) -> &'static str;
}

/// Construct the best backend for this host. `PPF_POLLER=fallback`
/// forces the portable path (used by CI to cover it on Linux too).
pub fn new_poller() -> io::Result<Box<dyn PollBackend>> {
    let forced = std::env::var("PPF_POLLER").ok();
    match forced.as_deref() {
        Some("fallback") => return Ok(Box::new(FallbackPoller::new()?)),
        Some("epoll") | None => {}
        Some(other) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("PPF_POLLER must be epoll|fallback, got {other:?}"),
            ))
        }
    }
    #[cfg(ppf_epoll)]
    {
        Ok(Box::new(EpollPoller::new()?))
    }
    #[cfg(not(ppf_epoll))]
    {
        if forced.as_deref() == Some("epoll") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "PPF_POLLER=epoll but this target has no epoll shim",
            ));
        }
        Ok(Box::new(FallbackPoller::new()?))
    }
}

// ---------------------------------------------------------------------
// Raw Linux syscall shim (x86_64 / aarch64), no libc crate.
// ---------------------------------------------------------------------

#[cfg(ppf_epoll)]
pub(crate) mod sys {
    //! The five syscalls the epoll backend needs, as thin `usize`-level
    //! wrappers over the architecture's syscall instruction. Return
    //! values in `[-4095, -1]` are `-errno`, per the Linux ABI.

    use std::io;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
    }

    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn raw_syscall(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn raw_syscall(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    /// Issue a syscall and fold the kernel's `-errno` convention into
    /// `io::Result`. Arguments beyond the given ones are zero — which
    /// matters: `epoll_pwait` validates its (unused here) 5th and 6th
    /// arguments, so garbage registers mean spurious `EINVAL`.
    macro_rules! syscall {
        ($nr:expr $(, $arg:expr)*) => {{
            let args = [$($arg as usize),*];
            let a = |i: usize| args.get(i).copied().unwrap_or(0);
            let ret = unsafe { raw_syscall($nr, a(0), a(1), a(2), a(3), a(4), a(5)) };
            if (-4095..0).contains(&ret) {
                Err(io::Error::from_raw_os_error(-ret as i32))
            } else {
                Ok(ret)
            }
        }};
    }

    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLL_CTL_MOD: usize = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EFD_CLOEXEC: usize = 0o2000000;
    const EFD_NONBLOCK: usize = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86_64 (the one ABI
    /// where the kernel declares it so); naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// A raw fd that closes itself on drop.
    pub struct OwnedFd(i32);

    impl OwnedFd {
        pub fn raw(&self) -> i32 {
            self.0
        }
    }

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            let _ = syscall!(nr::CLOSE, self.0);
        }
    }

    pub fn epoll_create1() -> io::Result<OwnedFd> {
        syscall!(nr::EPOLL_CREATE1, EPOLL_CLOEXEC).map(|fd| OwnedFd(fd as i32))
    }

    pub fn eventfd() -> io::Result<OwnedFd> {
        syscall!(nr::EVENTFD2, 0usize, EFD_CLOEXEC | EFD_NONBLOCK).map(|fd| OwnedFd(fd as i32))
    }

    pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
        let ev = event.unwrap_or_default();
        let ptr = match op {
            EPOLL_CTL_DEL => 0usize,
            _ => &ev as *const EpollEvent as usize,
        };
        syscall!(nr::EPOLL_CTL, epfd, op, fd, ptr).map(|_| ())
    }

    /// `epoll_pwait` with a null sigmask (aarch64 has no plain
    /// `epoll_wait`; pwait covers both). Returns the event count.
    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let ret = syscall!(
            nr::EPOLL_PWAIT,
            epfd,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize
        )?;
        Ok(ret as usize)
    }

    /// Read one `u64` (the eventfd counter drain).
    pub fn read_u64(fd: i32) -> io::Result<u64> {
        let mut buf = 0u64;
        syscall!(nr::READ, fd, &mut buf as *mut u64 as usize, 8usize)?;
        Ok(buf)
    }

    /// Write one `u64` (the eventfd wakeup).
    pub fn write_u64(fd: i32, value: u64) -> io::Result<()> {
        syscall!(nr::WRITE, fd, &value as *const u64 as usize, 8usize).map(|_| ())
    }
}

// ---------------------------------------------------------------------
// Epoll backend.
// ---------------------------------------------------------------------

#[cfg(ppf_epoll)]
pub struct EpollPoller {
    epfd: sys::OwnedFd,
    wake: std::sync::Arc<sys::OwnedFd>,
    /// Reused kernel-facing event buffer.
    scratch: Vec<sys::EpollEvent>,
}

/// The token the wakeup eventfd is registered under; never handed out
/// by the event loop (its tokens start at 1).
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(ppf_epoll)]
impl EpollPoller {
    pub fn new() -> io::Result<EpollPoller> {
        let epfd = sys::epoll_create1()?;
        let wake = sys::eventfd()?;
        sys::epoll_ctl(
            epfd.raw(),
            sys::EPOLL_CTL_ADD,
            wake.raw(),
            Some(sys::EpollEvent {
                events: sys::EPOLLIN,
                data: WAKE_TOKEN,
            }),
        )?;
        Ok(EpollPoller {
            epfd,
            wake: std::sync::Arc::new(wake),
            scratch: vec![sys::EpollEvent::default(); 1024],
        })
    }

    fn mask(interest: Interest) -> u32 {
        match interest {
            Interest::Read => sys::EPOLLIN | sys::EPOLLRDHUP,
            Interest::ReadWrite => sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP,
        }
    }
}

#[cfg(ppf_epoll)]
impl PollBackend for EpollPoller {
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd.raw(),
            sys::EPOLL_CTL_ADD,
            fd,
            Some(sys::EpollEvent {
                events: Self::mask(interest),
                data: token,
            }),
        )
    }

    fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd.raw(),
            sys::EPOLL_CTL_MOD,
            fd,
            Some(sys::EpollEvent {
                events: Self::mask(interest),
                data: token,
            }),
        )
    }

    fn deregister(&mut self, fd: i32, _token: u64) -> io::Result<()> {
        sys::epoll_ctl(self.epfd.raw(), sys::EPOLL_CTL_DEL, fd, None)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0.4ms deadline does not busy-spin at 0.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        let n = loop {
            match sys::epoll_wait(self.epfd.raw(), &mut self.scratch, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &self.scratch[..n] {
            let (bits, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                let _ = sys::read_u64(self.wake.raw());
                continue;
            }
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker(WakerImpl::Epoll(self.wake.clone()))
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

// ---------------------------------------------------------------------
// Portable fallback backend.
// ---------------------------------------------------------------------

/// Degraded-mode tick between "everything might be ready" sweeps when no
/// wakeup arrives sooner.
const FALLBACK_TICK: Duration = Duration::from_millis(10);

pub struct FallbackPoller {
    /// token → interest; fds are unused (readiness is not knowable
    /// portably, so every tick reports everything).
    registered: std::collections::BTreeMap<u64, Interest>,
    /// Read side of the loopback wakeup pair.
    wake_rx: std::net::TcpStream,
    wake_tx: std::sync::Arc<std::net::TcpStream>,
}

impl FallbackPoller {
    pub fn new() -> io::Result<FallbackPoller> {
        // A connected loopback pair is the only std-portable
        // selectable-ish wakeup channel: the receiving side blocks in a
        // timed read, the waker writes one byte.
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let tx = std::net::TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nodelay(true).ok();
        tx.set_nonblocking(true)?;
        Ok(FallbackPoller {
            registered: std::collections::BTreeMap::new(),
            wake_rx: rx,
            wake_tx: std::sync::Arc::new(tx),
        })
    }
}

impl PollBackend for FallbackPoller {
    fn register(&mut self, _fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.registered.insert(token, interest);
        Ok(())
    }

    fn reregister(&mut self, _fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.registered.insert(token, interest);
        Ok(())
    }

    fn deregister(&mut self, _fd: i32, token: u64) -> io::Result<()> {
        self.registered.remove(&token);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        use std::io::Read;
        // Sleep on the wakeup stream: a waker byte ends the sleep early,
        // otherwise the tick (bounded by the caller's timeout) elapses.
        let tick = match timeout {
            Some(d) => d.min(FALLBACK_TICK),
            None => FALLBACK_TICK,
        };
        self.wake_rx
            .set_read_timeout(Some(tick.max(Duration::from_millis(1))))
            .ok();
        let mut buf = [0u8; 64];
        if self.wake_rx.read(&mut buf).is_ok() {
            // Drain any pile-up without blocking again.
            self.wake_rx
                .set_read_timeout(Some(Duration::from_micros(1)))
                .ok();
            while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
        }
        // Degraded readiness: report every registration; the event
        // loop's nonblocking I/O no-ops on the quiet ones.
        for (&token, &interest) in &self.registered {
            events.push(Event {
                token,
                readable: true,
                writable: interest == Interest::ReadWrite,
                hangup: false,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker(WakerImpl::Stream(self.wake_tx.clone()))
    }

    fn name(&self) -> &'static str {
        "fallback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn backends() -> Vec<Box<dyn PollBackend>> {
        let mut v: Vec<Box<dyn PollBackend>> = vec![Box::new(FallbackPoller::new().unwrap())];
        #[cfg(ppf_epoll)]
        v.push(Box::new(EpollPoller::new().unwrap()));
        v
    }

    #[test]
    fn wait_times_out_without_events() {
        for mut p in backends() {
            let mut events = Vec::new();
            let t0 = Instant::now();
            p.wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: no registrations, no events",
                p.name()
            );
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "{}: timeout honored",
                p.name()
            );
        }
    }

    #[test]
    fn waker_interrupts_a_long_wait() {
        for mut p in backends() {
            let name = p.name();
            let waker = p.waker();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let mut events = Vec::new();
            let t0 = Instant::now();
            p.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "{name}: wakeup cut the wait short"
            );
            t.join().unwrap();
        }
    }

    #[test]
    fn wakeups_are_consumed_not_surfaced() {
        for mut p in backends() {
            let name = p.name();
            p.waker().wake();
            let mut events = Vec::new();
            p.wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token != WAKE_TOKEN),
                "{name}: wake token never surfaces"
            );
            // And the wakeup does not stick: the next wait times out.
            let t0 = Instant::now();
            events.clear();
            p.wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(
                t0.elapsed() >= Duration::from_millis(5) || events.is_empty(),
                "{name}: wakeup was drained"
            );
        }
    }

    #[cfg(ppf_epoll)]
    #[test]
    fn epoll_sees_socket_readability() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut p = EpollPoller::new().unwrap();
        p.register(rx.as_raw_fd(), 7, Interest::Read).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no bytes yet");

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Write interest fires immediately on an empty socket buffer.
        p.reregister(rx.as_raw_fd(), 7, Interest::ReadWrite)
            .unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        p.deregister(rx.as_raw_fd(), 7).unwrap();
        drop(tx);
    }
}
