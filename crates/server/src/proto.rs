//! Wire protocol: length-prefixed UTF-8 frames carrying one request or
//! one response each.
//!
//! # Framing
//!
//! ```text
//! frame   := length "\n" payload
//! length  := ASCII decimal byte count of `payload` (at most MAX_FRAME)
//! payload := UTF-8 text
//! ```
//!
//! # Request payload grammar
//!
//! ```text
//! request := header "\n" body
//! header  := id SP verb (SP option)*
//! id      := [^ \n]+            client-chosen correlation token
//! verb    := "query" | "explain" | "analyze" | "stats" | "health"
//!          | "slowlog" | "cancel" | "shutdown" | "chaos" | "reload"
//! option  := key "=" value      e.g. timeout=250 maxrows=100000
//! body    := the verb's argument (XPath text, cancel target id, chaos spec)
//! ```
//!
//! # Response payload grammar
//!
//! ```text
//! response := id SP ("ok" | "err" SP kind) (SP meta)* "\n" body
//! kind     := stable error tag — engine lifecycle kinds (parse, translate,
//!             plan, exec, limit, cancelled) plus server kinds (overload,
//!             proto, shutdown, unsupported)
//! meta     := key "=" value     e.g. version=3 (the snapshot stamp on
//!             query/reload responses)
//! ```
//!
//! Meta tokens ride the header, never the body, so body formats stay
//! stable; parsers that predate a given key simply skip it.
//!
//! Responses are correlated by `id`, not by arrival order: a connection
//! may pipeline several requests (up to the server's per-connection cap)
//! and receives each response as its query completes.

use std::io::{self, BufRead, Write};

/// Hard ceiling on one frame's payload, both directions. Large enough
/// for a full metrics snapshot or a multi-thousand-row id list; small
/// enough that a malicious length header cannot balloon allocation.
pub const MAX_FRAME: usize = 4 << 20;

/// Write one frame: decimal payload length, newline, payload bytes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(format!("{}\n", payload.len()).as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary; a
/// truncated frame, an unparsable or oversized length header, or invalid
/// UTF-8 are `InvalidData` errors.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return if header.is_empty() {
            Ok(None)
        } else {
            Err(bad_data("eof inside frame header"))
        };
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| bad_data(&format!("bad frame length {:?}", header.trim())))?;
    if len > MAX_FRAME {
        return Err(bad_data(&format!("frame length {len} exceeds MAX_FRAME")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|_| bad_data("eof inside frame payload"))?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad_data("frame payload is not UTF-8"))
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Protocol verbs a client may send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Run an XPath query (body = the XPath); returns result element ids.
    Query,
    /// Render the physical plan for an XPath without executing it.
    Explain,
    /// Execute with per-step profiling; returns the annotated plan.
    Analyze,
    /// Snapshot the process-wide metrics registry.
    Stats,
    /// Liveness / drain-state probe.
    Health,
    /// Render the server's bounded slow-query log, newest first.
    Slowlog,
    /// Fire the cancel token of an in-flight query (body = its `id`).
    Cancel,
    /// Begin a graceful drain, then exit the serve loop.
    Shutdown,
    /// Install or clear a fault-injection plan (chaos builds only).
    Chaos,
    /// Rebuild the engine's data source into a fresh snapshot and swap
    /// it in atomically; in-flight queries finish on the old snapshot.
    Reload,
}

impl Verb {
    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Query => "query",
            Verb::Explain => "explain",
            Verb::Analyze => "analyze",
            Verb::Stats => "stats",
            Verb::Health => "health",
            Verb::Slowlog => "slowlog",
            Verb::Cancel => "cancel",
            Verb::Shutdown => "shutdown",
            Verb::Chaos => "chaos",
            Verb::Reload => "reload",
        }
    }

    pub fn parse(s: &str) -> Option<Verb> {
        Some(match s {
            "query" => Verb::Query,
            "explain" => Verb::Explain,
            "analyze" => Verb::Analyze,
            "stats" => Verb::Stats,
            "health" => Verb::Health,
            "slowlog" => Verb::Slowlog,
            "cancel" => Verb::Cancel,
            "shutdown" => Verb::Shutdown,
            "chaos" => Verb::Chaos,
            "reload" => Verb::Reload,
            _ => return None,
        })
    }
}

/// Stable error tags carried on `err` responses. Clients branch on the
/// tag, never on message text; [`ErrorKind::is_retryable`] encodes the
/// back-off contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    // Engine lifecycle kinds (mirror `ppf_core::QueryError::kind`).
    Parse,
    Translate,
    Plan,
    Exec,
    Limit,
    Cancelled,
    // Server-side kinds.
    /// Admission refused the request (in-flight cap, queue full/timeout,
    /// or the per-connection cap). Back off exponentially and retry.
    Overload,
    /// The request frame or header was malformed.
    Proto,
    /// The server is draining; it will accept no further work.
    Shutdown,
    /// The verb exists but this build does not support it (e.g. `chaos`
    /// without the feature).
    Unsupported,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Translate => "translate",
            ErrorKind::Plan => "plan",
            ErrorKind::Exec => "exec",
            ErrorKind::Limit => "limit",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Overload => "overload",
            ErrorKind::Proto => "proto",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Unsupported => "unsupported",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "translate" => ErrorKind::Translate,
            "plan" => ErrorKind::Plan,
            "exec" => ErrorKind::Exec,
            "limit" => ErrorKind::Limit,
            "cancelled" => ErrorKind::Cancelled,
            "overload" => ErrorKind::Overload,
            "proto" => ErrorKind::Proto,
            "shutdown" => ErrorKind::Shutdown,
            "unsupported" => ErrorKind::Unsupported,
            _ => return None,
        })
    }

    /// Whether a client should retry the same request after backing off.
    /// Only transient conditions qualify: overload clears as in-flight
    /// work drains. Everything else is either permanent for that input
    /// (parse/translate/plan), a per-query outcome (exec/limit/cancelled),
    /// or terminal for the server (shutdown).
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Overload)
    }

    /// Map an engine error's `kind()` tag onto the wire kind.
    pub fn from_engine_kind(kind: &str) -> ErrorKind {
        match kind {
            "parse" => ErrorKind::Parse,
            "translate" => ErrorKind::Translate,
            "plan" => ErrorKind::Plan,
            "limit" => ErrorKind::Limit,
            "cancelled" => ErrorKind::Cancelled,
            _ => ErrorKind::Exec,
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: String,
    pub verb: Verb,
    /// `key=value` options from the header line (e.g. `timeout=250`).
    pub options: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    /// First `timeout=MS` option, if present and well-formed.
    pub fn timeout_ms(&self) -> Option<u64> {
        self.option("timeout")
    }

    /// First `maxrows=N` option, if present and well-formed.
    pub fn max_rows(&self) -> Option<u64> {
        self.option("maxrows")
    }

    fn option(&self, key: &str) -> Option<u64> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }
}

/// Parse a request payload. Errors are human messages the server wraps
/// in an `err proto` response.
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let (header, body) = match payload.split_once('\n') {
        Some((h, b)) => (h, b),
        None => (payload, ""),
    };
    let mut parts = header.split_whitespace();
    let id = parts.next().ok_or("empty request header")?.to_string();
    let verb_str = parts.next().ok_or("request header is missing a verb")?;
    let verb = Verb::parse(verb_str).ok_or_else(|| format!("unknown verb {verb_str:?}"))?;
    let mut options = Vec::new();
    for opt in parts {
        let (k, v) = opt
            .split_once('=')
            .ok_or_else(|| format!("malformed option {opt:?} (want key=value)"))?;
        options.push((k.to_string(), v.to_string()));
    }
    Ok(Request {
        id,
        verb,
        options,
        body: body.to_string(),
    })
}

/// Render a request payload (the client side of [`parse_request`]).
pub fn render_request(id: &str, verb: Verb, options: &[(&str, &str)], body: &str) -> String {
    let mut out = String::new();
    out.push_str(id);
    out.push(' ');
    out.push_str(verb.as_str());
    for (k, v) in options {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('\n');
    out.push_str(body);
    out
}

/// A parsed server response.
#[derive(Debug, Clone)]
pub struct Response {
    pub id: String,
    pub result: Result<String, (ErrorKind, String)>,
    /// `key=value` meta tokens from the header line. Today: `version=N`,
    /// the engine-snapshot stamp on query and reload responses. Meta
    /// lives in the header so body formats never change shape; unknown
    /// keys are carried through and ignored by old clients.
    pub meta: Vec<(String, String)>,
}

impl Response {
    pub fn ok(id: &str, body: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            result: Ok(body.into()),
            meta: Vec::new(),
        }
    }

    pub fn err(id: &str, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            result: Err((kind, message.into())),
            meta: Vec::new(),
        }
    }

    /// Attach a header meta token (builder style).
    pub fn with_meta(mut self, key: &str, value: impl std::fmt::Display) -> Response {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Stamp the snapshot version this response was answered from.
    pub fn with_version(self, version: u64) -> Response {
        self.with_meta("version", version)
    }

    /// The `version=N` meta token, if present and well-formed.
    pub fn version(&self) -> Option<u64> {
        self.meta
            .iter()
            .find(|(k, _)| k == "version")
            .and_then(|(_, v)| v.parse().ok())
    }

    pub fn render(&self) -> String {
        let mut header = match &self.result {
            Ok(_) => format!("{} ok", self.id),
            Err((kind, _)) => format!("{} err {}", self.id, kind.as_str()),
        };
        for (k, v) in &self.meta {
            header.push(' ');
            header.push_str(k);
            header.push('=');
            header.push_str(v);
        }
        match &self.result {
            Ok(body) => format!("{header}\n{body}"),
            Err((_, msg)) => format!("{header}\n{msg}"),
        }
    }
}

/// Parse a response payload. Errors mean the server broke the protocol
/// (or the connection was cut mid-frame — chaos `drop` faults do this on
/// purpose). Header tokens after the status that look like `key=value`
/// are collected as meta; anything else is ignored for forward
/// compatibility.
pub fn parse_response(payload: &str) -> Result<Response, String> {
    let (header, body) = match payload.split_once('\n') {
        Some((h, b)) => (h, b),
        None => (payload, ""),
    };
    let mut parts = header.split_whitespace();
    let id = parts.next().ok_or("empty response header")?.to_string();
    let collect_meta = |parts: std::str::SplitWhitespace<'_>| -> Vec<(String, String)> {
        parts
            .filter_map(|tok| tok.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    };
    match parts.next() {
        Some("ok") => Ok(Response {
            id,
            result: Ok(body.to_string()),
            meta: collect_meta(parts),
        }),
        Some("err") => {
            let kind_str = parts.next().ok_or("err response is missing a kind")?;
            let kind = ErrorKind::parse(kind_str)
                .ok_or_else(|| format!("unknown error kind {kind_str:?}"))?;
            Ok(Response {
                id,
                result: Err((kind, body.to_string())),
                meta: collect_meta(parts),
            })
        }
        other => Err(format!("bad response status {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello\nworld"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut r = BufReader::new(&b"10\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new(&b"99999999999\nx"[..]);
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new(&b"not-a-number\nx"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_roundtrip_with_options() {
        let payload = render_request(
            "q1",
            Verb::Query,
            &[("timeout", "250"), ("maxrows", "1000")],
            "//keyword",
        );
        let req = parse_request(&payload).unwrap();
        assert_eq!(req.id, "q1");
        assert_eq!(req.verb, Verb::Query);
        assert_eq!(req.timeout_ms(), Some(250));
        assert_eq!(req.max_rows(), Some(1000));
        assert_eq!(req.body, "//keyword");
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("id-only").is_err());
        assert!(parse_request("id frobnicate").is_err());
        assert!(parse_request("id query notkv\nbody").is_err());
    }

    #[test]
    fn response_roundtrip_both_arms() {
        let ok = Response::ok("a", "rows 2\n1\n2");
        let parsed = parse_response(&ok.render()).unwrap();
        assert_eq!(parsed.id, "a");
        assert_eq!(parsed.result.unwrap(), "rows 2\n1\n2");

        let err = Response::err("b", ErrorKind::Overload, "shed: queue full");
        let parsed = parse_response(&err.render()).unwrap();
        let (kind, msg) = parsed.result.unwrap_err();
        assert_eq!(kind, ErrorKind::Overload);
        assert_eq!(msg, "shed: queue full");
    }

    #[test]
    fn version_meta_rides_the_header_not_the_body() {
        let r = Response::ok("q7", "rows 2\n1\n2").with_version(3);
        let rendered = r.render();
        assert!(rendered.starts_with("q7 ok version=3\n"));
        let parsed = parse_response(&rendered).unwrap();
        assert_eq!(parsed.version(), Some(3));
        assert_eq!(parsed.result.unwrap(), "rows 2\n1\n2", "body unchanged");

        // Err responses carry meta the same way.
        let e = Response::err("q8", ErrorKind::Shutdown, "draining").with_version(5);
        let parsed = parse_response(&e.render()).unwrap();
        assert_eq!(parsed.version(), Some(5));
        assert_eq!(parsed.result.unwrap_err().0, ErrorKind::Shutdown);

        // Plain responses have no version; unknown meta keys are kept.
        let parsed = parse_response("q9 ok trace=abc\nrows 0\n").unwrap();
        assert_eq!(parsed.version(), None);
        assert_eq!(parsed.meta, vec![("trace".to_string(), "abc".to_string())]);
    }

    #[test]
    fn every_verb_roundtrips() {
        let verbs = [
            Verb::Query,
            Verb::Explain,
            Verb::Analyze,
            Verb::Stats,
            Verb::Health,
            Verb::Slowlog,
            Verb::Cancel,
            Verb::Shutdown,
            Verb::Chaos,
            Verb::Reload,
        ];
        for v in verbs {
            assert_eq!(Verb::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verb::parse("frobnicate"), None);
    }

    #[test]
    fn every_kind_roundtrips_and_only_overload_retries() {
        let kinds = [
            ErrorKind::Parse,
            ErrorKind::Translate,
            ErrorKind::Plan,
            ErrorKind::Exec,
            ErrorKind::Limit,
            ErrorKind::Cancelled,
            ErrorKind::Overload,
            ErrorKind::Proto,
            ErrorKind::Shutdown,
            ErrorKind::Unsupported,
        ];
        for k in kinds {
            assert_eq!(ErrorKind::parse(k.as_str()), Some(k));
            assert_eq!(k.is_retryable(), k == ErrorKind::Overload);
        }
    }
}
