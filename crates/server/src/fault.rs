//! Compile-time-off fault injection.
//!
//! With the `chaos` feature enabled, a [`FaultPlan`] — installed at
//! startup (`ppfd --chaos SPEC`) or at runtime (the `chaos` protocol
//! verb) — makes the server misbehave on purpose, with the configured
//! probabilities, so `ppf-stress` can prove the robustness machinery
//! holds: injected panics stay contained, slow queries trip admission
//! control and deadlines, dropped connections never wedge the daemon,
//! and forced lock poisoning is recovered and counted.
//!
//! Without the feature (the default, and every release build) the whole
//! module collapses: [`ChaosState`] is a zero-sized type and
//! [`ChaosState::next_query_fault`] is a `const`-foldable `Fault::None`,
//! so the serving path carries zero chaos overhead.
//!
//! # Spec grammar
//!
//! Space-separated `kind=arg` tokens; probabilities in `[0,1]`:
//!
//! ```text
//! panic=P            with probability P, panic inside the query worker
//! poison=P           with probability P, arm a pool-worker panic while
//!                    the partitioned pipeline holds shared-cache locks
//!                    (forces lock poisoning + recovery)
//! slow=P:MS          with probability P, sleep MS ms holding the
//!                    admission slot before executing
//! drop=P[:PHASE]     with probability P, sever the connection; PHASE is
//!                    pre (before executing), post (after executing,
//!                    before the response), or mid (inside the response
//!                    frame); omitted = rotate through all three
//! seed=N             RNG seed (deterministic runs)
//! reload_fault=K:P[:MS]  with probability P, sabotage a reload attempt;
//!                    K is panic (panic mid-shred inside the builder),
//!                    io (fail the build with an injected I/O error), or
//!                    slow (sleep MS ms inside the builder, stretching
//!                    the staging window that queries must not notice).
//!                    Repeat the token to arm several kinds at once.
//! off                clear the plan
//! ```
//!
//! Query faults and reload faults draw from independent streams: a
//! reload-only spec (`reload_fault=...` + `seed=N`) injects zero query
//! faults, which is what lets `ppf-stress --reload-storm` assert a
//! zero query-error budget while reloads are failing on purpose.

use std::time::Duration;

/// Where a `drop` fault severs the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPhase {
    /// After the request was read and admitted, before executing.
    PreExec,
    /// After executing, before any response byte.
    PreWrite,
    /// After writing a deliberately truncated response frame.
    MidWrite,
}

impl DropPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            DropPhase::PreExec => "pre",
            DropPhase::PreWrite => "post",
            DropPhase::MidWrite => "mid",
        }
    }
}

/// The fault chosen for one request. At most one fires per request, so
/// the injected counts reconcile 1:1 with observed effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    None,
    /// Panic inside the server's query worker mid-request.
    Panic,
    /// Sleep this long while holding the admission slot.
    Slow(Duration),
    /// Sever the connection at the given phase.
    Drop(DropPhase),
    /// Arm `sqlexec`'s one-shot pool-worker panic and force the
    /// partitioned pipeline, poisoning shared locks for recovery.
    Poison,
}

impl Fault {
    /// Stable counter suffix (`server.faults.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Panic => "panic",
            Fault::Slow(_) => "slow",
            Fault::Drop(_) => "drop",
            Fault::Poison => "poison",
        }
    }
}

/// The fault chosen for one reload attempt. Injected *inside* the
/// snapshot builder, so a fired fault exercises the real containment
/// path (`SharedEngine::reload_with`'s catch_unwind and error mapping),
/// not a shortcut around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadFault {
    None,
    /// Panic mid-build; must surface as a typed `ReloadError::Panic`.
    Panic,
    /// Fail the build with an injected I/O error (`ReloadError::Io`).
    Io,
    /// Sleep inside the builder, stretching the staging window.
    Slow(Duration),
}

impl ReloadFault {
    /// Stable counter suffix (`server.faults.reload_<label>`).
    pub fn label(self) -> &'static str {
        match self {
            ReloadFault::None => "none",
            ReloadFault::Panic => "reload_panic",
            ReloadFault::Io => "reload_io",
            ReloadFault::Slow(_) => "reload_slow",
        }
    }
}

#[cfg(feature = "chaos")]
pub use chaos_impl::{ChaosState, FaultPlan};

#[cfg(feature = "chaos")]
mod chaos_impl {
    use super::{DropPhase, Fault, ReloadFault};
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// Parsed fault probabilities (see the module doc for the grammar).
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct FaultPlan {
        pub panic_p: f64,
        pub poison_p: f64,
        pub slow_p: f64,
        pub slow_ms: u64,
        pub drop_p: f64,
        /// `None` = rotate pre → post → mid.
        pub drop_phase: Option<DropPhase>,
        pub seed: u64,
        /// Load-path faults (`reload_fault=K:P[:MS]` tokens).
        pub reload_panic_p: f64,
        pub reload_io_p: f64,
        pub reload_slow_p: f64,
        pub reload_slow_ms: u64,
    }

    impl FaultPlan {
        pub fn parse(spec: &str) -> Result<FaultPlan, String> {
            let mut plan = FaultPlan {
                seed: 0x9E37_79B9_7F4A_7C15,
                ..FaultPlan::default()
            };
            for token in spec.split_whitespace() {
                if token == "off" {
                    return Ok(FaultPlan::default());
                }
                let (key, val) = token
                    .split_once('=')
                    .ok_or_else(|| format!("malformed chaos token {token:?}"))?;
                match key {
                    "panic" => plan.panic_p = parse_prob(val)?,
                    "poison" => plan.poison_p = parse_prob(val)?,
                    "slow" => {
                        let (p, ms) = val
                            .split_once(':')
                            .ok_or_else(|| format!("slow wants P:MS, got {val:?}"))?;
                        plan.slow_p = parse_prob(p)?;
                        plan.slow_ms = ms.parse().map_err(|_| format!("bad slow millis {ms:?}"))?;
                    }
                    "drop" => match val.split_once(':') {
                        Some((p, phase)) => {
                            plan.drop_p = parse_prob(p)?;
                            plan.drop_phase = Some(match phase {
                                "pre" => DropPhase::PreExec,
                                "post" => DropPhase::PreWrite,
                                "mid" => DropPhase::MidWrite,
                                other => return Err(format!("bad drop phase {other:?}")),
                            });
                        }
                        None => plan.drop_p = parse_prob(val)?,
                    },
                    "seed" => plan.seed = val.parse().map_err(|_| format!("bad seed {val:?}"))?,
                    "reload_fault" => {
                        let mut it = val.splitn(3, ':');
                        let kind = it.next().unwrap_or_default();
                        let p = parse_prob(
                            it.next()
                                .ok_or_else(|| format!("reload_fault wants K:P, got {val:?}"))?,
                        )?;
                        match (kind, it.next()) {
                            ("panic", None) => plan.reload_panic_p = p,
                            ("io", None) => plan.reload_io_p = p,
                            ("slow", Some(ms)) => {
                                plan.reload_slow_p = p;
                                plan.reload_slow_ms = ms
                                    .parse()
                                    .map_err(|_| format!("bad reload slow millis {ms:?}"))?;
                            }
                            ("slow", None) => {
                                return Err("reload_fault=slow wants slow:P:MS".to_string())
                            }
                            (other, _) => return Err(format!("bad reload_fault kind {other:?}")),
                        }
                    }
                    other => return Err(format!("unknown chaos key {other:?}")),
                }
            }
            Ok(plan)
        }

        fn is_off(&self) -> bool {
            self.panic_p == 0.0
                && self.poison_p == 0.0
                && self.slow_p == 0.0
                && self.drop_p == 0.0
                && self.reload_panic_p == 0.0
                && self.reload_io_p == 0.0
                && self.reload_slow_p == 0.0
        }

        /// Whether this plan injects only load-path faults (the
        /// reload-storm contract: queries must see zero chaos).
        pub fn is_reload_only(&self) -> bool {
            !self.is_off()
                && self.panic_p == 0.0
                && self.poison_p == 0.0
                && self.slow_p == 0.0
                && self.drop_p == 0.0
        }
    }

    fn parse_prob(s: &str) -> Result<f64, String> {
        let p: f64 = s.parse().map_err(|_| format!("bad probability {s:?}"))?;
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(format!("probability {p} outside [0,1]"))
        }
    }

    struct Rng(u64);

    impl Rng {
        /// xorshift64*; plenty for fault sampling.
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    struct Active {
        plan: FaultPlan,
        rng: Rng,
        /// Rotation cursor for phase-less `drop`.
        drop_cursor: usize,
    }

    /// Server-wide chaos switchboard (chaos builds).
    #[derive(Default)]
    pub struct ChaosState {
        active: Mutex<Option<Active>>,
    }

    impl ChaosState {
        pub fn new() -> ChaosState {
            ChaosState::default()
        }

        /// Install (or with `off`, clear) a plan. Returns a confirmation
        /// line for the `chaos` response body.
        pub fn install(&self, spec: &str) -> Result<String, String> {
            let plan = FaultPlan::parse(spec)?;
            let mut slot = self.active.lock().unwrap_or_else(PoisonError::into_inner);
            if plan.is_off() {
                *slot = None;
                return Ok("chaos off".to_string());
            }
            let summary = format!(
                "chaos on: panic={} poison={} slow={}:{}ms drop={}{} reload_panic={} reload_io={} reload_slow={}:{}ms seed={}",
                plan.panic_p,
                plan.poison_p,
                plan.slow_p,
                plan.slow_ms,
                plan.drop_p,
                plan.drop_phase
                    .map(|p| format!(":{}", p.as_str()))
                    .unwrap_or_default(),
                plan.reload_panic_p,
                plan.reload_io_p,
                plan.reload_slow_p,
                plan.reload_slow_ms,
                plan.seed
            );
            let seed = plan.seed;
            *slot = Some(Active {
                plan,
                rng: Rng(seed | 1),
                drop_cursor: 0,
            });
            Ok(summary)
        }

        /// Decide the fault for one query-class request. First match in
        /// drop → panic → poison → slow order wins (at most one fault per
        /// request, for reconcilable counts).
        pub fn next_query_fault(&self) -> Fault {
            let mut slot = self.active.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(active) = slot.as_mut() else {
                return Fault::None;
            };
            let roll = active.rng.next_f64();
            let p = &active.plan;
            if roll < p.drop_p {
                let phase = p.drop_phase.unwrap_or_else(|| {
                    let phases = [DropPhase::PreExec, DropPhase::PreWrite, DropPhase::MidWrite];
                    let ph = phases[active.drop_cursor % phases.len()];
                    active.drop_cursor += 1;
                    ph
                });
                return Fault::Drop(phase);
            }
            if roll < p.drop_p + p.panic_p {
                return Fault::Panic;
            }
            if roll < p.drop_p + p.panic_p + p.poison_p {
                return Fault::Poison;
            }
            if roll < p.drop_p + p.panic_p + p.poison_p + p.slow_p {
                return Fault::Slow(Duration::from_millis(p.slow_ms));
            }
            Fault::None
        }

        /// Decide the fault for one reload attempt. Same first-match
        /// discipline as [`ChaosState::next_query_fault`] — at most one
        /// fault per attempt, panic → io → slow order — drawn from the
        /// same RNG stream but gated on reload-only probabilities, so a
        /// reload-only plan never touches the query path.
        pub fn next_reload_fault(&self) -> ReloadFault {
            let mut slot = self.active.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(active) = slot.as_mut() else {
                return ReloadFault::None;
            };
            let roll = active.rng.next_f64();
            let p = &active.plan;
            if roll < p.reload_panic_p {
                return ReloadFault::Panic;
            }
            if roll < p.reload_panic_p + p.reload_io_p {
                return ReloadFault::Io;
            }
            if roll < p.reload_panic_p + p.reload_io_p + p.reload_slow_p {
                return ReloadFault::Slow(Duration::from_millis(p.reload_slow_ms));
            }
            ReloadFault::None
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_full_spec() {
            let p =
                FaultPlan::parse("panic=0.1 poison=0.05 slow=0.25:40 drop=0.2:mid seed=7").unwrap();
            assert_eq!(p.panic_p, 0.1);
            assert_eq!(p.poison_p, 0.05);
            assert_eq!(p.slow_p, 0.25);
            assert_eq!(p.slow_ms, 40);
            assert_eq!(p.drop_p, 0.2);
            assert_eq!(p.drop_phase, Some(DropPhase::MidWrite));
            assert_eq!(p.seed, 7);
        }

        #[test]
        fn rejects_bad_specs() {
            assert!(FaultPlan::parse("panic=2").is_err());
            assert!(FaultPlan::parse("slow=0.5").is_err());
            assert!(FaultPlan::parse("drop=0.5:sideways").is_err());
            assert!(FaultPlan::parse("frob=1").is_err());
        }

        #[test]
        fn fault_mix_matches_probabilities_roughly() {
            let chaos = ChaosState::new();
            chaos
                .install("panic=0.2 slow=0.3:1 drop=0.1 seed=42")
                .unwrap();
            let mut counts = [0u32; 4]; // none, panic, slow, drop
            for _ in 0..10_000 {
                match chaos.next_query_fault() {
                    Fault::None => counts[0] += 1,
                    Fault::Panic => counts[1] += 1,
                    Fault::Slow(_) => counts[2] += 1,
                    Fault::Drop(_) => counts[3] += 1,
                    Fault::Poison => unreachable!("poison_p is 0"),
                }
            }
            assert!((1500..2500).contains(&counts[1]), "panic ~20%: {counts:?}");
            assert!((2500..3500).contains(&counts[2]), "slow ~30%: {counts:?}");
            assert!((500..1500).contains(&counts[3]), "drop ~10%: {counts:?}");
        }

        #[test]
        fn parses_reload_fault_tokens() {
            let p = FaultPlan::parse(
                "reload_fault=panic:0.3 reload_fault=io:0.2 reload_fault=slow:0.1:50 seed=9",
            )
            .unwrap();
            assert_eq!(p.reload_panic_p, 0.3);
            assert_eq!(p.reload_io_p, 0.2);
            assert_eq!(p.reload_slow_p, 0.1);
            assert_eq!(p.reload_slow_ms, 50);
            assert!(p.is_reload_only());
            assert!(!FaultPlan::parse("panic=0.1 reload_fault=io:0.2")
                .unwrap()
                .is_reload_only());

            assert!(FaultPlan::parse("reload_fault=panic").is_err());
            assert!(FaultPlan::parse("reload_fault=slow:0.5").is_err());
            assert!(FaultPlan::parse("reload_fault=eat:0.5").is_err());
            assert!(FaultPlan::parse("reload_fault=io:7").is_err());
        }

        #[test]
        fn reload_only_plan_never_faults_queries() {
            let chaos = ChaosState::new();
            chaos
                .install("reload_fault=panic:0.5 reload_fault=io:0.5 seed=11")
                .unwrap();
            let mut reload_hits = 0;
            for _ in 0..1000 {
                assert_eq!(chaos.next_query_fault(), Fault::None);
                match chaos.next_reload_fault() {
                    ReloadFault::Panic | ReloadFault::Io => reload_hits += 1,
                    ReloadFault::None | ReloadFault::Slow(_) => {
                        panic!("p(panic)+p(io)=1: every attempt must fault")
                    }
                }
            }
            assert_eq!(reload_hits, 1000);
        }

        #[test]
        fn off_clears_the_plan() {
            let chaos = ChaosState::new();
            chaos.install("panic=1").unwrap();
            assert_eq!(chaos.next_query_fault(), Fault::Panic);
            assert_eq!(chaos.install("off").unwrap(), "chaos off");
            assert_eq!(chaos.next_query_fault(), Fault::None);
        }

        #[test]
        fn phaseless_drop_rotates_phases() {
            let chaos = ChaosState::new();
            chaos.install("drop=1 seed=3").unwrap();
            let mut seen = Vec::new();
            for _ in 0..3 {
                match chaos.next_query_fault() {
                    Fault::Drop(p) => seen.push(p),
                    other => panic!("expected drop, got {other:?}"),
                }
            }
            assert_eq!(
                seen,
                vec![DropPhase::PreExec, DropPhase::PreWrite, DropPhase::MidWrite]
            );
        }
    }
}

#[cfg(not(feature = "chaos"))]
mod no_chaos_impl {
    use super::{Fault, ReloadFault};

    /// Zero-sized stand-in: release builds carry no chaos state and the
    /// fault decision constant-folds away.
    #[derive(Default)]
    pub struct ChaosState;

    impl ChaosState {
        pub fn new() -> ChaosState {
            ChaosState
        }

        pub fn install(&self, _spec: &str) -> Result<String, String> {
            Err("this build has no fault injection (rebuild with --features chaos)".to_string())
        }

        #[inline(always)]
        pub fn next_query_fault(&self) -> Fault {
            Fault::None
        }

        #[inline(always)]
        pub fn next_reload_fault(&self) -> ReloadFault {
            ReloadFault::None
        }
    }
}

#[cfg(not(feature = "chaos"))]
pub use no_chaos_impl::ChaosState;
