//! Admission control: a bounded in-flight gauge with a queue-or-shed
//! policy.
//!
//! Every `query`/`explain`/`analyze` request must acquire a slot before
//! it may touch the engine. At most `max_inflight` slots exist; when all
//! are taken a request either *queues* (bounded depth, bounded wait) or
//! is *shed* immediately with a typed `[overload]` rejection the client
//! backs off from. Shedding is load-proportional and cheap — a shed
//! request costs one mutex acquisition and one small write, so the
//! server stays responsive precisely when it is busiest.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// What to do with a request that arrives while every slot is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait up to `queue_wait` for a slot, as long as fewer than
    /// `queue_depth` requests are already waiting; shed otherwise.
    #[default]
    Queue,
    /// Shed immediately; never wait.
    Shed,
}

/// Why a request was shed. The variant names are stable: they are the
/// `shed:`-prefixed detail in `[overload]` messages and the suffix of
/// the `server.shed.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Policy is [`AdmissionPolicy::Shed`] and all slots were busy.
    Busy,
    /// The wait queue already holds `queue_depth` requests.
    QueueFull,
    /// Queued, but no slot freed within `queue_wait`.
    QueueTimeout,
}

impl ShedReason {
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::Busy => "busy",
            ShedReason::QueueFull => "queue_full",
            ShedReason::QueueTimeout => "queue_timeout",
        }
    }
}

/// Outcome of the non-blocking [`Admission::try_admit`] fast path.
#[derive(Debug)]
pub enum TryAdmit {
    /// A slot was free; the caller holds it.
    Admitted(Slot),
    /// All slots busy but the queue has room under the Queue policy —
    /// park a worker in the blocking [`Admission::admit`] instead.
    WouldQueue,
    /// Definite rejection (shed policy, or the queue is full).
    Shed(ShedReason),
}

#[derive(Default)]
struct Gauge {
    inflight: usize,
    waiting: usize,
}

/// The controller. Cheap to share (`Arc`); one per server.
pub struct Admission {
    max_inflight: usize,
    queue_depth: usize,
    queue_wait: Duration,
    policy: AdmissionPolicy,
    gauge: Mutex<Gauge>,
    freed: Condvar,
}

/// RAII admission slot: holding one is the permission to run a query.
/// Dropping it (on every exit path, panics included) frees the slot and
/// wakes one queued waiter.
pub struct Slot {
    admission: Arc<Admission>,
    /// Whether this slot was granted only after queueing (the server
    /// counts these into `server.queued`).
    pub waited: bool,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("waited", &self.waited)
            .finish()
    }
}

impl Drop for Slot {
    fn drop(&mut self) {
        let mut g = self.admission.lock_gauge();
        g.inflight -= 1;
        drop(g);
        self.admission.freed.notify_one();
    }
}

impl Admission {
    pub fn new(
        max_inflight: usize,
        queue_depth: usize,
        queue_wait: Duration,
        policy: AdmissionPolicy,
    ) -> Arc<Admission> {
        Arc::new(Admission {
            max_inflight: max_inflight.max(1),
            queue_depth,
            queue_wait,
            policy,
            gauge: Mutex::default(),
            freed: Condvar::new(),
        })
    }

    /// The gauge is a pair of counts that is valid at every instruction
    /// boundary, so recovering from a poisoned lock is always safe.
    fn lock_gauge(&self) -> MutexGuard<'_, Gauge> {
        self.gauge.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queries currently holding a slot.
    pub fn inflight(&self) -> usize {
        self.lock_gauge().inflight
    }

    /// Requests currently parked in the wait queue.
    pub fn waiting(&self) -> usize {
        self.lock_gauge().waiting
    }

    /// Non-blocking admission for callers that must never sleep (event
    /// threads): a free slot is taken immediately, a definite rejection
    /// is returned immediately, and only the genuinely ambiguous case —
    /// the queue has room and policy allows waiting — is deferred to a
    /// thread that can afford the blocking [`Admission::admit`].
    pub fn try_admit(self: &Arc<Admission>) -> TryAdmit {
        let mut g = self.lock_gauge();
        if g.inflight < self.max_inflight {
            g.inflight += 1;
            return TryAdmit::Admitted(Slot {
                admission: self.clone(),
                waited: false,
            });
        }
        if self.policy == AdmissionPolicy::Shed {
            return TryAdmit::Shed(ShedReason::Busy);
        }
        if g.waiting >= self.queue_depth {
            return TryAdmit::Shed(ShedReason::QueueFull);
        }
        TryAdmit::WouldQueue
    }

    /// Acquire a slot or learn why not. Never blocks longer than
    /// `queue_wait`.
    pub fn admit(self: &Arc<Admission>) -> Result<Slot, ShedReason> {
        let mut g = self.lock_gauge();
        if g.inflight < self.max_inflight {
            g.inflight += 1;
            return Ok(Slot {
                admission: self.clone(),
                waited: false,
            });
        }
        if self.policy == AdmissionPolicy::Shed {
            return Err(ShedReason::Busy);
        }
        if g.waiting >= self.queue_depth {
            return Err(ShedReason::QueueFull);
        }
        g.waiting += 1;
        let deadline = Instant::now() + self.queue_wait;
        loop {
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(d) if !d.is_zero() => d,
                _ => {
                    g.waiting -= 1;
                    return Err(ShedReason::QueueTimeout);
                }
            };
            let (guard, _timeout) = self
                .freed
                .wait_timeout(g, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if g.inflight < self.max_inflight {
                g.waiting -= 1;
                g.inflight += 1;
                return Ok(Slot {
                    admission: self.clone(),
                    waited: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    #[test]
    fn grants_up_to_capacity_then_sheds_under_shed_policy() {
        let adm = Admission::new(2, 0, Duration::from_millis(10), AdmissionPolicy::Shed);
        let a = adm.admit().unwrap();
        let b = adm.admit().unwrap();
        assert_eq!(adm.inflight(), 2);
        assert_eq!(adm.admit().unwrap_err(), ShedReason::Busy);
        drop(a);
        let c = adm.admit().unwrap();
        assert!(!c.waited);
        drop(b);
        drop(c);
        assert_eq!(adm.inflight(), 0);
    }

    #[test]
    fn queue_policy_waits_for_a_freed_slot() {
        let adm = Admission::new(1, 4, Duration::from_secs(5), AdmissionPolicy::Queue);
        let slot = adm.admit().unwrap();
        let waited = Arc::new(AtomicUsize::new(0));
        let t = {
            let adm = adm.clone();
            let waited = waited.clone();
            std::thread::spawn(move || {
                let s = adm.admit().unwrap();
                waited.store(usize::from(s.waited) + 1, SeqCst);
                drop(s);
            })
        };
        // Give the waiter time to park, then free the slot.
        while adm.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(slot);
        t.join().unwrap();
        assert_eq!(
            waited.load(SeqCst),
            2,
            "the waiter was granted after queueing"
        );
        assert_eq!(adm.inflight(), 0);
        assert_eq!(adm.waiting(), 0);
    }

    #[test]
    fn queue_overflow_and_timeout_shed_with_distinct_reasons() {
        let adm = Admission::new(1, 1, Duration::from_millis(30), AdmissionPolicy::Queue);
        let _slot = adm.admit().unwrap();
        // One waiter fills the queue.
        let t = {
            let adm = adm.clone();
            std::thread::spawn(move || adm.admit().map(|_| ()).unwrap_err())
        };
        while adm.waiting() == 0 {
            std::thread::yield_now();
        }
        // The queue is full: an immediate arrival sheds without waiting.
        assert_eq!(adm.admit().unwrap_err(), ShedReason::QueueFull);
        // The parked waiter eventually times out (the slot is never freed).
        assert_eq!(t.join().unwrap(), ShedReason::QueueTimeout);
        assert_eq!(adm.waiting(), 0);
    }

    #[test]
    fn try_admit_never_blocks_and_mirrors_admit() {
        let adm = Admission::new(1, 1, Duration::from_secs(5), AdmissionPolicy::Queue);
        let a = match adm.try_admit() {
            TryAdmit::Admitted(slot) => slot,
            other => panic!("free slot must admit, got {other:?}"),
        };
        // Slots busy, queue empty → the ambiguous case defers.
        assert!(matches!(adm.try_admit(), TryAdmit::WouldQueue));
        // Fill the queue with a real waiter; try_admit now sheds.
        let t = {
            let adm = adm.clone();
            std::thread::spawn(move || adm.admit().map(|_| ()))
        };
        while adm.waiting() == 0 {
            std::thread::yield_now();
        }
        assert!(matches!(
            adm.try_admit(),
            TryAdmit::Shed(ShedReason::QueueFull)
        ));
        drop(a);
        t.join().unwrap().unwrap();

        let shed = Admission::new(1, 0, Duration::from_millis(10), AdmissionPolicy::Shed);
        let _s = shed.admit().unwrap();
        assert!(matches!(shed.try_admit(), TryAdmit::Shed(ShedReason::Busy)));
    }

    #[test]
    fn slot_frees_on_panic() {
        let adm = Admission::new(1, 0, Duration::from_millis(10), AdmissionPolicy::Shed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _slot = adm.admit().unwrap();
            panic!("boom");
        }));
        assert!(r.is_err());
        assert_eq!(adm.inflight(), 0, "the slot was released by unwinding");
        drop(adm.admit().unwrap());
    }
}
