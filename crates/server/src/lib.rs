//! `ppf-server` — a fault-tolerant network front end for the PPF engine.
//!
//! Serves one [`ppf_core::SharedEngine`] to N TCP connections over a
//! length-prefixed line protocol ([`proto`]), with the robustness
//! machinery a long-lived daemon needs:
//!
//! * **Admission control** ([`admission`]): a bounded in-flight gauge
//!   with a queue-or-shed policy and a per-connection concurrent-query
//!   cap; rejected requests carry a typed `[overload]` error that
//!   clients back off from.
//! * **Resource bounds**: per-query deadlines wired into
//!   [`ppf_core::QueryLimits`], socket read/write timeouts, and
//!   idle-connection reaping.
//! * **Graceful drain** (`shutdown` verb or SIGTERM in `ppfd`): stop
//!   accepting, let in-flight queries finish within a grace period,
//!   cancel stragglers through their [`ppf_core::CancelToken`]s, flush
//!   counters.
//! * **Fault injection** ([`fault`], compile-time gated behind the
//!   `chaos` feature): injected panics, forced lock poisoning,
//!   artificial slow queries, and connection drops at chosen protocol
//!   phases, driven by the bundled `ppf-stress` client.
//!
//! Server-side counters land in the process-wide [`obs::Registry`]
//! (`server.accepted`, `server.shed`, `server.drained`, …) next to the
//! engine's own, and the `stats` verb snapshots them over the wire.

pub mod admission;
pub mod client;
mod event_loop;
pub mod fault;
mod frame;
pub mod poller;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmissionPolicy, ShedReason, TryAdmit};
pub use client::Client;
pub use fault::{ChaosState, DropPhase, Fault, ReloadFault};
pub use proto::{ErrorKind, Request, Response, Verb};
pub use server::{serve, serve_with_reload, ReloadFn, ServerConfig, ServerHandle};
