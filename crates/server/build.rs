//! Sets `ppf_epoll` on targets where the raw epoll syscall shim exists:
//! Linux on the two architectures the inline-asm wrappers cover. Every
//! other target gets the portable fallback poller only.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(ppf_epoll)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    if os == "linux" && (arch == "x86_64" || arch == "aarch64") {
        println!("cargo::rustc-cfg=ppf_epoll");
    }
}
