//! Deterministic XMark-like auction-site generator (paper §5, refs 20 and 21).
//!
//! The real XMark generator and its 12 MB / 113 MB documents are not
//! available offline, so this generator produces documents with the same
//! element vocabulary and nesting (regions/items with recursive
//! parlist/listitem descriptions, people, open and closed auctions,
//! mailboxes), calibrated so the benchmark queries select node counts in
//! the same regime as the paper's Appendix C, and so that doubling
//! `scale` scales everything linearly (the paper's small:large = 1:10).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, TreeBuilder};
use xmlschema::{parse_schema, Schema};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct XMarkConfig {
    /// 1.0 ≈ the paper's "small" document regime (≈2,175 items).
    pub scale: f64,
    pub seed: u64,
}

impl Default for XMarkConfig {
    fn default() -> Self {
        XMarkConfig {
            scale: 1.0,
            seed: 42,
        }
    }
}

/// The schema graph of the generated documents (DTD-style, as XMark's).
pub fn xmark_schema() -> Schema {
    parse_schema(
        "root site\n\
         site = regions categories people open_auctions closed_auctions\n\
         regions = africa asia australia europe namerica samerica\n\
         africa = item*\n\
         asia = item*\n\
         australia = item*\n\
         europe = item*\n\
         namerica = item*\n\
         samerica = item*\n\
         item @id @featured = location quantity name payment description shipping incategory* mailbox\n\
         location : text\n\
         quantity : int\n\
         name : text\n\
         payment : text\n\
         shipping : text\n\
         incategory @category\n\
         description = text parlist\n\
         parlist = listitem*\n\
         listitem = text parlist\n\
         text : text = keyword* bold* emph*\n\
         keyword : text\n\
         bold : text\n\
         emph : text\n\
         mailbox = mail*\n\
         mail = from to date text\n\
         from : text\n\
         to : text\n\
         date : text\n\
         categories = category*\n\
         category @id = name description\n\
         people = person*\n\
         person @id = name emailaddress? phone? address? homepage? creditcard? profile? watches?\n\
         emailaddress : text\n\
         phone : text\n\
         homepage : text\n\
         creditcard : text\n\
         address = street city country zipcode?\n\
         street : text\n\
         city : text\n\
         country : text\n\
         zipcode : int\n\
         profile @income:float = interest* education? gender? age?\n\
         interest @category\n\
         education : text\n\
         gender : text\n\
         age : int\n\
         watches = watch*\n\
         watch @open_auction\n\
         open_auctions = open_auction*\n\
         open_auction @id = initial reserve? bidder* current itemref seller annotation quantity type interval\n\
         initial : float\n\
         reserve : float\n\
         current : float\n\
         bidder = date time personref increase\n\
         time : text\n\
         personref @person\n\
         increase : float\n\
         itemref @item\n\
         seller @person\n\
         annotation = author happiness description\n\
         author @person : text\n\
         happiness : int\n\
         type : text\n\
         interval = start end\n\
         start : text\n\
         end : text\n\
         closed_auctions = closed_auction*\n\
         closed_auction = seller buyer itemref price date quantity type annotation\n\
         buyer @person\n\
         price : float\n",
    )
    .expect("the XMark schema is valid")
}

const KEYWORDS: &[&str] = &[
    "rebel", "libre", "dolor", "magna", "jumps", "quick", "brown", "opaque", "zebra", "amber",
];
const CITIES: &[&str] = &["Athens", "Tours", "Dayton", "Paris", "Kyoto", "Lima"];

struct Gen {
    rng: StdRng,
    item_seq: usize,
    person_seq: usize,
    auction_seq: usize,
    category_seq: usize,
}

impl Gen {
    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.gen_range(1..=12),
            self.rng.gen_range(1..=28),
            1998 + self.rng.gen_range(0..4)
        )
    }

    fn keyword_text(&mut self, b: &mut TreeBuilder, n_keywords: usize) {
        // `text` elements hold mixed content with keyword/bold/emph.
        b.start_element("text");
        b.text("lorem ipsum ");
        for _ in 0..n_keywords {
            let w = KEYWORDS[self.rng.gen_range(0..KEYWORDS.len())];
            match self.rng.gen_range(0..4) {
                0 => b.leaf("bold", w),
                1 => b.leaf("emph", w),
                _ => b.leaf("keyword", w),
            };
            b.text(" dolor ");
        }
        b.end_element();
    }

    fn parlist(&mut self, b: &mut TreeBuilder, depth: usize) {
        b.start_element("parlist");
        let items = self.rng.gen_range(1..=2);
        for _ in 0..items {
            b.start_element("listitem");
            let kw = self.rng.gen_range(0..=2);
            self.keyword_text(b, kw);
            if depth > 0 && self.rng.gen_bool(0.3) {
                self.parlist(b, depth - 1);
            }
            b.end_element();
        }
        b.end_element();
    }

    fn description(&mut self, b: &mut TreeBuilder, rich: bool) {
        b.start_element("description");
        let kw = self.rng.gen_range(0..=2);
        self.keyword_text(b, kw);
        if rich && self.rng.gen_bool(0.35) {
            let depth = self.rng.gen_range(0..=2);
            self.parlist(b, depth);
        }
        b.end_element();
    }

    fn item(&mut self, b: &mut TreeBuilder, n_categories: usize) {
        let id = self.item_seq;
        self.item_seq += 1;
        b.start_element("item");
        b.attribute("id", format!("item{id}"));
        if self.rng.gen_bool(0.104) {
            b.attribute("featured", "yes");
        }
        b.leaf("location", CITIES[self.rng.gen_range(0..CITIES.len())]);
        b.leaf("quantity", format!("{}", self.rng.gen_range(1..10)));
        b.leaf("name", format!("thing{}", self.rng.gen_range(0..1000)));
        b.leaf("payment", "Cash");
        self.description(b, true);
        b.leaf("shipping", "Will ship internationally");
        for _ in 0..self.rng.gen_range(0..3) {
            b.start_element("incategory");
            b.attribute(
                "category",
                format!("category{}", self.rng.gen_range(0..n_categories.max(1))),
            );
            b.end_element();
        }
        b.start_element("mailbox");
        for _ in 0..self.rng.gen_range(0..2) {
            b.start_element("mail");
            b.leaf("from", format!("person{}", self.rng.gen_range(0..50)));
            b.leaf("to", format!("person{}", self.rng.gen_range(0..50)));
            let d = self.date();
            b.leaf("date", d);
            let kw = self.rng.gen_range(0..=2);
            self.keyword_text(b, kw);
            b.end_element();
        }
        b.end_element();
        b.end_element();
    }

    fn person(&mut self, b: &mut TreeBuilder) {
        let id = self.person_seq;
        self.person_seq += 1;
        b.start_element("person");
        b.attribute("id", format!("person{id}"));
        b.leaf("name", format!("Name {id}"));
        if self.rng.gen_bool(0.8) {
            b.leaf("emailaddress", format!("mailto:p{id}@example.org"));
        }
        let has_phone = self.rng.gen_bool(0.5);
        if has_phone {
            b.leaf(
                "phone",
                format!("+30 210 {:07}", self.rng.gen_range(0..9_999_999)),
            );
        }
        if self.rng.gen_bool(0.75) {
            b.start_element("address");
            b.leaf("street", format!("{} Main St", self.rng.gen_range(1..99)));
            b.leaf("city", CITIES[self.rng.gen_range(0..CITIES.len())]);
            b.leaf("country", "Greece");
            if self.rng.gen_bool(0.5) {
                b.leaf("zipcode", format!("{}", self.rng.gen_range(10000..99999)));
            }
            b.end_element();
        }
        if self.rng.gen_bool(0.4) {
            b.leaf("homepage", format!("http://example.org/~p{id}"));
        }
        if self.rng.gen_bool(0.3) {
            b.leaf("creditcard", "1234 5678 9012 3456");
        }
        if self.rng.gen_bool(0.5) {
            b.start_element("profile");
            b.attribute(
                "income",
                format!("{:.2}", self.rng.gen_range(9000.0..99000.0)),
            );
            for _ in 0..self.rng.gen_range(0..3) {
                b.start_element("interest");
                b.attribute("category", format!("category{}", self.rng.gen_range(0..20)));
                b.end_element();
            }
            if self.rng.gen_bool(0.5) {
                b.leaf("education", "Graduate School");
            }
            if self.rng.gen_bool(0.5) {
                b.leaf(
                    "gender",
                    if self.rng.gen_bool(0.5) {
                        "male"
                    } else {
                        "female"
                    },
                );
            }
            if self.rng.gen_bool(0.6) {
                b.leaf("age", format!("{}", self.rng.gen_range(18..80)));
            }
            b.end_element();
        }
        if self.rng.gen_bool(0.3) {
            b.start_element("watches");
            for _ in 0..self.rng.gen_range(1..3) {
                b.start_element("watch");
                b.attribute(
                    "open_auction",
                    format!("open_auction{}", self.rng.gen_range(0..100)),
                );
                b.end_element();
            }
            b.end_element();
        }
        b.end_element();
    }

    fn open_auction(&mut self, b: &mut TreeBuilder, n_people: usize, n_items: usize) {
        let id = self.auction_seq;
        self.auction_seq += 1;
        b.start_element("open_auction");
        b.attribute("id", format!("open_auction{id}"));
        b.leaf("initial", format!("{:.2}", self.rng.gen_range(1.0..100.0)));
        if self.rng.gen_bool(0.5) {
            b.leaf("reserve", format!("{:.2}", self.rng.gen_range(50.0..200.0)));
        }
        let start_date = self.date();
        let n_bidders = self.rng.gen_range(0..5);
        for i in 0..n_bidders {
            b.start_element("bidder");
            // Every now and then a bid lands on the auction's start date
            // (this is what Q-A joins on).
            let d = if self.rng.gen_bool(0.08) {
                start_date.clone()
            } else {
                self.date()
            };
            b.leaf("date", d);
            b.leaf(
                "time",
                format!("{:02}:{:02}:00", self.rng.gen_range(0..24), i),
            );
            b.start_element("personref");
            b.attribute(
                "person",
                format!("person{}", self.rng.gen_range(0..n_people.max(1))),
            );
            b.end_element();
            b.leaf("increase", format!("{:.2}", self.rng.gen_range(1.0..20.0)));
            b.end_element();
        }
        b.leaf("current", format!("{:.2}", self.rng.gen_range(1.0..300.0)));
        b.start_element("itemref");
        b.attribute(
            "item",
            format!("item{}", self.rng.gen_range(0..n_items.max(1))),
        );
        b.end_element();
        b.start_element("seller");
        b.attribute(
            "person",
            format!("person{}", self.rng.gen_range(0..n_people.max(1))),
        );
        b.end_element();
        self.annotation(b, n_people);
        b.leaf("quantity", format!("{}", self.rng.gen_range(1..5)));
        b.leaf("type", "Regular");
        b.start_element("interval");
        b.leaf("start", start_date);
        let d = self.date();
        b.leaf("end", d);
        b.end_element();
        b.end_element();
    }

    fn annotation(&mut self, b: &mut TreeBuilder, n_people: usize) {
        b.start_element("annotation");
        b.start_element("author");
        b.attribute(
            "person",
            format!("person{}", self.rng.gen_range(0..n_people.max(1))),
        );
        b.end_element();
        b.leaf("happiness", format!("{}", self.rng.gen_range(1..10)));
        self.description(b, true);
        b.end_element();
    }

    fn closed_auction(&mut self, b: &mut TreeBuilder, n_people: usize, n_items: usize) {
        b.start_element("closed_auction");
        b.start_element("seller");
        b.attribute(
            "person",
            format!("person{}", self.rng.gen_range(0..n_people.max(1))),
        );
        b.end_element();
        b.start_element("buyer");
        b.attribute(
            "person",
            format!("person{}", self.rng.gen_range(0..n_people.max(1))),
        );
        b.end_element();
        b.start_element("itemref");
        b.attribute(
            "item",
            format!("item{}", self.rng.gen_range(0..n_items.max(1))),
        );
        b.end_element();
        b.leaf("price", format!("{:.2}", self.rng.gen_range(1.0..500.0)));
        let d = self.date();
        b.leaf("date", d);
        b.leaf("quantity", format!("{}", self.rng.gen_range(1..5)));
        b.leaf("type", "Regular");
        self.annotation(b, n_people);
        b.end_element();
    }
}

/// Generate an XMark-like document.
pub fn generate_xmark(cfg: XMarkConfig) -> Document {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed),
        item_seq: 0,
        person_seq: 0,
        auction_seq: 0,
        category_seq: 0,
    };
    let scale = cfg.scale.max(0.01);
    let n_items = (2175.0 * scale) as usize;
    let n_people = (1275.0 * scale) as usize;
    let n_open = (600.0 * scale) as usize;
    let n_closed = (500.0 * scale) as usize;
    let n_categories = (500.0 * scale) as usize;
    // Region shares calibrated so namerica+samerica ≈ half the items
    // (paper Q5 ≈ 1100 of 2175).
    let shares: &[(&str, f64)] = &[
        ("africa", 0.05),
        ("asia", 0.20),
        ("australia", 0.10),
        ("europe", 0.144),
        ("namerica", 0.45),
        ("samerica", 0.056),
    ];

    let mut b = TreeBuilder::new();
    b.start_element("site");

    b.start_element("regions");
    for (region, share) in shares {
        b.start_element(*region);
        let count = (n_items as f64 * share).round() as usize;
        for _ in 0..count {
            g.item(&mut b, n_categories);
        }
        b.end_element();
    }
    b.end_element();

    b.start_element("categories");
    for _ in 0..n_categories {
        let id = g.category_seq;
        g.category_seq += 1;
        b.start_element("category");
        b.attribute("id", format!("category{id}"));
        b.leaf("name", format!("Category {id}"));
        g.description(&mut b, false);
        b.end_element();
    }
    b.end_element();

    b.start_element("people");
    for _ in 0..n_people {
        g.person(&mut b);
    }
    b.end_element();

    b.start_element("open_auctions");
    for _ in 0..n_open {
        g.open_auction(&mut b, n_people, n_items);
    }
    b.end_element();

    b.start_element("closed_auctions");
    for _ in 0..n_closed {
        g.closed_auction(&mut b, n_people, n_items);
    }
    b.end_element();

    b.end_element();
    b.finish()
}

/// The XPathMark query subset of Appendix B (plus Q-A from §5), in the
/// paper's numbering.
pub fn xmark_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Q1", "/site/regions/*/item"),
        (
            "Q2",
            "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword",
        ),
        ("Q3", "//keyword"),
        ("Q4", "/descendant-or-self::listitem/descendant-or-self::keyword"),
        ("Q5", "/site/regions/*/item[parent::namerica or parent::samerica]"),
        ("Q6", "//keyword/ancestor::listitem"),
        ("Q7", "//keyword/ancestor-or-self::mail"),
        (
            "Q9",
            "/site/open_auctions/open_auction[@id='open_auction0']/bidder/preceding-sibling::bidder",
        ),
        ("Q10", "/site/regions/*/item[@id='item0']/following::item"),
        (
            "Q11",
            "/site/open_auctions/open_auction/bidder[personref/@person='person1']/preceding::bidder[personref/@person='person0']",
        ),
        ("Q12", "//item[@featured='yes']"),
        ("Q13", "//*[@id]"),
        ("Q21", "/site/regions/*/item[@id='item0']/description//keyword/text()"),
        ("Q22", "/site/regions/namerica/item | /site/regions/samerica/item"),
        ("Q23", "/site/people/person[address and (phone or homepage)]"),
        ("Q24", "/site/people/person[not(homepage)]"),
        ("QA", "/site/open_auctions/open_auction[bidder/date = interval/start]"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_document_validates() {
        let doc = generate_xmark(XMarkConfig {
            scale: 0.02,
            seed: 7,
        });
        xmark_schema().validate(&doc).expect("schema-valid");
        assert!(doc.element_count() > 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = XMarkConfig {
            scale: 0.01,
            seed: 99,
        };
        let a = generate_xmark(cfg);
        let b = generate_xmark(cfg);
        assert_eq!(xmldom::to_xml(&a), xmldom::to_xml(&b));
    }

    #[test]
    fn scale_is_linear() {
        let small = generate_xmark(XMarkConfig {
            scale: 0.02,
            seed: 3,
        });
        let large = generate_xmark(XMarkConfig {
            scale: 0.2,
            seed: 3,
        });
        let ratio = large.element_count() as f64 / small.element_count() as f64;
        assert!((6.0..14.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn benchmark_queries_parse_and_match() {
        let doc = generate_xmark(XMarkConfig {
            scale: 0.05,
            seed: 1,
        });
        for (name, q) in xmark_queries() {
            let expr = xpath::parse_xpath(q).unwrap_or_else(|e| panic!("{name}: {e}"));
            let items = xpath::evaluate(&doc, &expr).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Structural queries must be non-empty at this scale.
            if ["Q1", "Q3", "Q5", "Q12", "Q13", "Q22", "Q23", "Q24"].contains(&name) {
                assert!(!items.is_empty(), "{name} returned nothing");
            }
        }
    }
}
