//! `xmark` — deterministic workload generators for the paper's evaluation:
//! an XMark-like auction site ([`generate_xmark`]) and a DBLP-like
//! bibliography ([`generate_dblp`]), plus the benchmark query sets
//! (Appendix B's XPathMark subset + Q-A, and Table 7's QD1–QD5).
//!
//! Substitution note (see DESIGN.md): the original 12/113 MB XMark files
//! and the 130 MB DBLP dump are unavailable offline; these generators
//! reproduce the element vocabulary, nesting (including recursive
//! `parlist`/`listitem` and `sup`/`sub`), and selectivity regime, with
//! linear scaling so the paper's 1:10 small:large ratio is preserved.

pub mod dblp;
pub mod xmark;

pub use dblp::{dblp_queries, dblp_schema, generate_dblp, DblpConfig, QD1_AUTHOR};
pub use xmark::{generate_xmark, xmark_queries, xmark_schema, XMarkConfig};
