//! Deterministic DBLP-like bibliography generator (paper §5 uses the
//! 130 MB DBLP dump; we synthesize the same shape: flat entry lists with
//! author/title/year children and occasionally marked-up titles with
//! `sup`/`sub`/`i` — including the deep `article//sub/sup/i` nesting QD4
//! looks for).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, TreeBuilder};
use xmlschema::{parse_schema, Schema};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// 1.0 ≈ tens of thousands of entries (the paper's regime scaled to
    /// in-memory benchmarking).
    pub scale: f64,
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            scale: 1.0,
            seed: 42,
        }
    }
}

/// Schema graph of the generated bibliography. `sup`/`sub` are mutually
/// recursive (they are I-P — root-to-node paths are unbounded).
pub fn dblp_schema() -> Schema {
    parse_schema(
        "root dblp\n\
         dblp = inproceedings* article* book*\n\
         inproceedings @key = author* title year pages? booktitle?\n\
         article @key = author* title year pages? journal?\n\
         book @key = author* title year pages? publisher?\n\
         author : text\n\
         title : text = sup* sub* i*\n\
         sup : text = sub* i*\n\
         sub : text = sup* i*\n\
         i : text\n\
         year : int\n\
         pages : text\n\
         booktitle : text\n\
         journal : text\n\
         publisher : text\n",
    )
    .expect("the DBLP schema is valid")
}

/// The paper's special author for QD1.
pub const QD1_AUTHOR: &str = "Harold G. Longbotham";

const SURNAMES: &[&str] = &[
    "Vassalos",
    "Georgiadis",
    "Grust",
    "Teubner",
    "Boncz",
    "Keulen",
    "Naughton",
    "Kaushik",
];

struct Gen {
    rng: StdRng,
    key_seq: usize,
}

impl Gen {
    fn author_name(&mut self) -> String {
        format!(
            "{}. {}",
            (b'A' + self.rng.gen_range(0..26)) as char,
            SURNAMES[self.rng.gen_range(0..SURNAMES.len())]
        )
    }

    /// A title, occasionally with `sup`/`sub`/`i` markup; inside articles
    /// sometimes the deep `sub/sup/i` chain QD4 needs.
    fn title(&mut self, b: &mut TreeBuilder, in_article: bool) {
        b.start_element("title");
        b.text("On the complexity of H");
        let style = self.rng.gen_range(0..100);
        if style < 6 {
            // plain subscript
            b.leaf("sub", "2");
        } else if style < 10 {
            b.leaf("sup", "n");
        } else if style < 12 {
            b.start_element("sup");
            b.leaf("i", "x");
            b.end_element();
        } else if in_article && style < 13 {
            // article//sub/sup/i — the QD4 target (rare, like the paper's
            // single result).
            b.start_element("sub");
            b.start_element("sup");
            b.leaf("i", "k");
            b.end_element();
            b.end_element();
        }
        b.text(" queries");
        b.end_element();
    }

    fn entry(&mut self, b: &mut TreeBuilder, kind: &str, year_lo: i32) {
        let key = self.key_seq;
        self.key_seq += 1;
        b.start_element(kind);
        b.attribute("key", format!("{kind}/{key}"));
        let n_authors = self.rng.gen_range(1..4);
        for _ in 0..n_authors {
            let name = if kind == "inproceedings" && self.rng.gen_bool(0.0004) {
                QD1_AUTHOR.to_string()
            } else {
                self.author_name()
            };
            b.leaf("author", name);
        }
        self.title(b, kind == "article");
        b.leaf("year", format!("{}", year_lo + self.rng.gen_range(0..15)));
        if self.rng.gen_bool(0.7) {
            b.leaf("pages", format!("{}-{}", key % 100, key % 100 + 12));
        }
        match kind {
            "inproceedings" => {
                if self.rng.gen_bool(0.9) {
                    b.leaf("booktitle", "Proc. EDBT");
                }
            }
            "article" => {
                if self.rng.gen_bool(0.9) {
                    b.leaf("journal", "TODS");
                }
            }
            _ => {
                if self.rng.gen_bool(0.9) {
                    b.leaf("publisher", "Springer");
                }
            }
        }
        b.end_element();
    }
}

/// Generate a DBLP-like document.
pub fn generate_dblp(cfg: DblpConfig) -> Document {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed),
        key_seq: 0,
    };
    let scale = cfg.scale.max(0.01);
    let n_inproc = (9000.0 * scale) as usize;
    let n_article = (5000.0 * scale) as usize;
    let n_book = (400.0 * scale) as usize;

    let mut b = TreeBuilder::new();
    b.start_element("dblp");
    for _ in 0..n_inproc {
        g.entry(&mut b, "inproceedings", 1988);
    }
    for _ in 0..n_article {
        g.entry(&mut b, "article", 1985);
    }
    for _ in 0..n_book {
        g.entry(&mut b, "book", 1990);
    }
    b.end_element();
    b.finish()
}

/// The DBLP query set of the paper's Table 7.
pub fn dblp_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "QD1",
            "//inproceedings/title[preceding-sibling::author = 'Harold G. Longbotham']",
        ),
        ("QD2", "/dblp/inproceedings[year>=1994]//sup"),
        ("QD3", "/dblp/inproceedings/title/sup"),
        ("QD4", "//i[parent::*/parent::sub/ancestor::article]"),
        ("QD5", "/dblp/inproceedings[author=/dblp/book/author]/title"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_document_validates() {
        let doc = generate_dblp(DblpConfig {
            scale: 0.02,
            seed: 5,
        });
        dblp_schema().validate(&doc).expect("schema-valid");
        assert!(doc.element_count() > 500);
    }

    #[test]
    fn deterministic() {
        let cfg = DblpConfig {
            scale: 0.01,
            seed: 11,
        };
        assert_eq!(
            xmldom::to_xml(&generate_dblp(cfg)),
            xmldom::to_xml(&generate_dblp(cfg))
        );
    }

    #[test]
    fn queries_run_natively() {
        let doc = generate_dblp(DblpConfig {
            scale: 0.05,
            seed: 2,
        });
        for (name, q) in dblp_queries() {
            let expr = xpath::parse_xpath(q).unwrap_or_else(|e| panic!("{name}: {e}"));
            let items = xpath::evaluate(&doc, &expr).unwrap_or_else(|e| panic!("{name}: {e}"));
            if ["QD2", "QD3"].contains(&name) {
                assert!(!items.is_empty(), "{name} returned nothing");
            }
        }
    }

    #[test]
    fn title_markup_recursion_present_at_scale() {
        let doc = generate_dblp(DblpConfig {
            scale: 0.2,
            seed: 2,
        });
        let q = xpath::parse_xpath("//sub/sup/i").expect("parse");
        let hits = xpath::evaluate(&doc, &q).expect("eval");
        assert!(!hits.is_empty(), "deep markup should appear at scale 0.2");
    }
}
