//! A compact textual schema language.
//!
//! The paper consumes only the *graph* of an XML Schema (element
//! definitions + nesting edges), so instead of full XSD syntax we parse a
//! DTD-flavoured DSL with one definition per line:
//!
//! ```text
//! root site
//! site        = regions people open_auctions
//! regions     = africa asia
//! africa      = item*
//! item @id @featured = name description incategory*
//! name        : text
//! description : text = keyword* bold*
//! year        : int
//! parlist     = listitem*
//! listitem    = text parlist          # recursion is fine
//! ```
//!
//! Grammar per definition line:
//! `name (@attr[:int|:float])* [: text|int|float] [= child[*+?] ...]`.
//! Occurrence markers on children are accepted and ignored — the schema
//! graph only records *possible* nesting. `#` starts a comment.

use crate::graph::{AttrDef, ElemDef, Schema, SchemaError, ValueType};

/// Parse the schema DSL into a [`Schema`].
pub fn parse_schema(input: &str) -> Result<Schema, SchemaError> {
    let mut root: Option<String> = None;
    let mut defs: Vec<ElemDef> = Vec::new();

    for (lineno, raw_line) in input.lines().enumerate() {
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| SchemaError(format!("line {}: {msg}", lineno + 1));

        if let Some(rest) = line.strip_prefix("root ") {
            let name = rest.trim();
            if name.is_empty() || name.contains(' ') {
                return Err(err("`root` takes exactly one element name"));
            }
            if root.replace(name.to_string()).is_some() {
                return Err(err("duplicate `root` declaration"));
            }
            continue;
        }

        // Split off the children part (after `=`); the head is then
        // `name (@attr)* [`:` [type]]` parsed token by token so that the
        // `:` type separator is not confused with the `:` inside `@x:int`.
        let (head, children_part) = match line.split_once('=') {
            Some((h, c)) => (h.trim(), Some(c.trim())),
            None => (line, None),
        };

        let mut tokens = head.split_whitespace().peekable();
        let name = tokens.next().ok_or_else(|| err("missing element name"))?;
        if !is_name(name) {
            return Err(err(&format!("invalid element name `{name}`")));
        }
        let mut attributes = Vec::new();
        let mut text: Option<ValueType> = None;
        while let Some(tok) = tokens.next() {
            if tok == ":" {
                text = match tokens.next() {
                    None | Some("text") => Some(ValueType::Text),
                    Some("int") => Some(ValueType::Int),
                    Some("float") => Some(ValueType::Float),
                    Some(other) => return Err(err(&format!("unknown text type `{other}`"))),
                };
                if tokens.peek().is_some() {
                    return Err(err("unexpected tokens after text type"));
                }
                break;
            }
            let attr = tok
                .strip_prefix('@')
                .ok_or_else(|| err(&format!("expected `@attr` or `:`, found `{tok}`")))?;
            let (aname, ty) = parse_typed(attr)
                .ok_or_else(|| err(&format!("invalid attribute declaration `@{attr}`")))?;
            attributes.push(AttrDef {
                name: aname.to_string(),
                ty,
            });
        }

        let mut children = Vec::new();
        if let Some(part) = children_part {
            for tok in part.split_whitespace() {
                let base = tok.trim_end_matches(['*', '+', '?']);
                if !is_name(base) {
                    return Err(err(&format!("invalid child name `{tok}`")));
                }
                if !children.iter().any(|c| c == base) {
                    children.push(base.to_string());
                }
            }
        }

        defs.push(ElemDef {
            name: name.to_string(),
            attributes,
            text,
            children,
        });
    }

    let root = root.ok_or_else(|| SchemaError("missing `root` declaration".into()))?;
    Schema::new(&root, defs)
}

fn parse_typed(s: &str) -> Option<(&str, ValueType)> {
    if let Some((n, t)) = s.split_once(':') {
        let ty = match t {
            "int" => ValueType::Int,
            "float" => ValueType::Float,
            "text" => ValueType::Text,
            _ => return None,
        };
        if is_name(n) {
            Some((n, ty))
        } else {
            None
        }
    } else if is_name(s) {
        Some((s, ValueType::Text))
    } else {
        None
    }
}

fn is_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
        # the paper's Figure 1(a) schema
        root A
        A @x:int       = B
        B              = C G
        C              = D E
        D @x:int : int
        E              = F
        F : int
        G              = G
    ";

    #[test]
    fn parses_figure1() {
        let s = parse_schema(SAMPLE).expect("parse");
        assert_eq!(s.root(), "A");
        assert_eq!(s.len(), 7);
        assert_eq!(s.children_of("C"), &["D", "E"]);
        let d = s.def("D").expect("D");
        assert_eq!(d.attributes.len(), 1);
        assert_eq!(d.attributes[0].ty, ValueType::Int);
        assert_eq!(d.text, Some(ValueType::Int));
        assert_eq!(s.children_of("G"), &["G"]);
    }

    #[test]
    fn occurrence_markers_ignored() {
        let s = parse_schema("root a\na = b* c+ d?\nb\nc\nd").expect("parse");
        assert_eq!(s.children_of("a"), &["b", "c", "d"]);
    }

    #[test]
    fn untyped_text_defaults_to_text() {
        let s = parse_schema("root a\na : text\n").expect("parse");
        assert_eq!(s.def("a").expect("a").text, Some(ValueType::Text));
        let s2 = parse_schema("root a\na :\n").expect("parse");
        assert_eq!(s2.def("a").expect("a").text, Some(ValueType::Text));
    }

    #[test]
    fn error_reporting() {
        assert!(parse_schema("a = b\nb").is_err()); // missing root
        assert!(parse_schema("root a\nroot b\na\nb").is_err()); // dup root
        assert!(parse_schema("root a\na = 1bad").is_err());
        assert!(parse_schema("root a\na @x:bogus").is_err());
        assert!(parse_schema("root a\na : json").is_err());
        let err = parse_schema("root a\na\na").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let s = parse_schema("\n# c\nroot a # trailing\n\na # leaf\n").expect("parse");
        assert_eq!(s.len(), 1);
    }
}
