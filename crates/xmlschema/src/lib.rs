//! `xmlschema` — XML schema graphs, a compact schema DSL, and the paper's
//! §4.5 path marking (U-P / F-P / I-P).
//!
//! The paper's translation consumes an XML Schema only through its *graph
//! representation* (element definitions as vertices, nesting as edges —
//! Figure 1(a)). This crate provides that graph ([`Schema`]), a DTD-style
//! textual format for writing one ([`parse_schema`]), a document validator,
//! and the marking analysis ([`Marking`]) that lets the translator omit
//! redundant `Paths` joins.
//!
//! # Example
//! ```
//! use xmlschema::{parse_schema, Marking, PathMark};
//! let s = parse_schema("root a\na = b\nb = b c\nc").unwrap();
//! let m = Marking::analyze(&s);
//! assert_eq!(m.mark("a"), Some(&PathMark::Unique("/a".into())));
//! assert_eq!(m.mark("b"), Some(&PathMark::Infinite)); // recursive
//! ```

pub mod dsl;
pub mod dtd;
pub mod graph;
pub mod marking;
pub mod xsd;

pub use dsl::parse_schema;
pub use dtd::parse_dtd;
pub use graph::{figure1_schema, AttrDef, ElemDef, Schema, SchemaBuilder, SchemaError, ValueType};
pub use marking::{Marking, PathMark};
pub use xsd::parse_xsd;
