//! DTD parsing: build a [`Schema`] from a Document Type Definition.
//!
//! The paper's datasets are DTD-described (XMark ships a DTD; DBLP has
//! one too), so accepting real DTDs removes the need to hand-write the
//! schema DSL for existing corpora. Supported declarations:
//!
//! ```text
//! <!ELEMENT name (child1, (child2 | child3)*, #PCDATA ...)>
//! <!ELEMENT name EMPTY> / ANY / (#PCDATA)
//! <!ATTLIST name attr CDATA #REQUIRED attr2 (a|b) #IMPLIED>
//! ```
//!
//! The schema graph only needs the *set* of possible children, so content
//! models collapse to their mentioned element names; `ANY` expands to
//! every declared element. The document element is taken from an optional
//! `<!DOCTYPE root …>` wrapper or defaults to the first declared element.

use crate::graph::{AttrDef, ElemDef, Schema, SchemaError, ValueType};

/// Parse a DTD (either a bare sequence of declarations or a full
/// `<!DOCTYPE root [ … ]>`).
pub fn parse_dtd(input: &str) -> Result<Schema, SchemaError> {
    let mut root_from_doctype: Option<String> = None;
    let mut body = input.trim();

    if let Some(rest) = body.strip_prefix("<!DOCTYPE") {
        let open = rest
            .find('[')
            .ok_or_else(|| SchemaError("DOCTYPE without internal subset".into()))?;
        let name = rest[..open]
            .split_whitespace()
            .next()
            .ok_or_else(|| SchemaError("DOCTYPE without a name".into()))?;
        root_from_doctype = Some(name.to_string());
        let close = rest
            .rfind(']')
            .ok_or_else(|| SchemaError("unterminated DOCTYPE subset".into()))?;
        body = &rest[open + 1..close];
    }

    let mut order: Vec<String> = Vec::new();
    let mut elements: Vec<(String, Vec<String>, bool, bool)> = Vec::new(); // (name, children, text, any)
    let mut attlists: Vec<(String, Vec<AttrDef>)> = Vec::new();

    let mut rest = body;
    while let Some(start) = rest.find("<!") {
        let after = &rest[start..];
        let end = after
            .find('>')
            .ok_or_else(|| SchemaError("unterminated declaration".into()))?;
        let decl = &after[2..end];
        rest = &after[end + 1..];

        if let Some(d) = decl.strip_prefix("ELEMENT") {
            let d = d.trim();
            let (name, model) = d
                .split_once(char::is_whitespace)
                .ok_or_else(|| SchemaError(format!("bad ELEMENT declaration `{d}`")))?;
            let model = model.trim();
            let mut children = Vec::new();
            let mut text = false;
            let mut any = false;
            match model {
                "EMPTY" => {}
                "ANY" => {
                    any = true;
                    text = true;
                }
                _ => {
                    // Collapse the content model: every NAME token is a
                    // possible child; #PCDATA marks text.
                    for token in model
                        .split(|c: char| "(),|*+? \t\r\n".contains(c))
                        .filter(|t| !t.is_empty())
                    {
                        if token == "#PCDATA" {
                            text = true;
                        } else if !children.contains(&token.to_string()) {
                            children.push(token.to_string());
                        }
                    }
                }
            }
            order.push(name.to_string());
            elements.push((name.to_string(), children, text, any));
        } else if let Some(d) = decl.strip_prefix("ATTLIST") {
            let mut toks = d.split_whitespace().peekable();
            let owner = toks
                .next()
                .ok_or_else(|| SchemaError("ATTLIST without an element name".into()))?
                .to_string();
            let mut attrs = Vec::new();
            // Each attribute is: name type default. Enumerated types are
            // parenthesized (possibly with internal whitespace).
            while let Some(aname) = toks.next() {
                let ty = toks
                    .next()
                    .ok_or_else(|| SchemaError(format!("attribute `{aname}` missing a type")))?;
                if ty.starts_with('(') {
                    // skip tokens until the closing paren
                    let mut t = ty.to_string();
                    while !t.contains(')') {
                        t = toks
                            .next()
                            .ok_or_else(|| {
                                SchemaError("unterminated enumerated attribute type".into())
                            })?
                            .to_string();
                    }
                }
                let default = toks
                    .next()
                    .ok_or_else(|| SchemaError(format!("attribute `{aname}` missing a default")))?;
                if default == "#FIXED" {
                    toks.next(); // fixed value
                }
                attrs.push(AttrDef {
                    name: aname.to_string(),
                    ty: ValueType::Text,
                });
            }
            attlists.push((owner, attrs));
        }
        // ENTITY / NOTATION / comments: skipped.
    }

    if elements.is_empty() {
        return Err(SchemaError("DTD declares no elements".into()));
    }
    let all_names: Vec<String> = elements.iter().map(|(n, ..)| n.clone()).collect();
    let root = root_from_doctype.unwrap_or_else(|| order[0].clone());

    let mut defs = Vec::new();
    for (name, mut children, text, any) in elements {
        if any {
            children = all_names.clone();
        }
        let attributes = attlists
            .iter()
            .filter(|(owner, _)| owner == &name)
            .flat_map(|(_, a)| a.iter().cloned())
            .collect();
        defs.push(ElemDef {
            name,
            attributes,
            text: if text { Some(ValueType::Text) } else { None },
            children,
        });
    }
    Schema::new(&root, defs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <!DOCTYPE site [
          <!ELEMENT site (regions, people)>
          <!ELEMENT regions (item*)>
          <!ELEMENT item (name, (description | note)+)>
          <!ATTLIST item id CDATA #REQUIRED
                         featured (yes|no) #IMPLIED>
          <!ELEMENT name (#PCDATA)>
          <!ELEMENT description (#PCDATA | keyword)*>
          <!ELEMENT note EMPTY>
          <!ELEMENT keyword (#PCDATA)>
          <!ELEMENT people (person*)>
          <!ELEMENT person (name)>
          <!ATTLIST person id CDATA #REQUIRED>
        ]>
    "#;

    #[test]
    fn parses_doctype_wrapper() {
        let s = parse_dtd(SAMPLE).expect("parse");
        assert_eq!(s.root(), "site");
        assert_eq!(s.children_of("site"), &["regions", "people"]);
        assert_eq!(s.children_of("item"), &["name", "description", "note"]);
        let item = s.def("item").expect("item");
        assert_eq!(item.attributes.len(), 2);
        assert!(item.text.is_none());
        let desc = s.def("description").expect("description");
        assert_eq!(desc.text, Some(ValueType::Text));
        assert_eq!(desc.children, &["keyword"]);
    }

    #[test]
    fn bare_declarations_default_root() {
        let s = parse_dtd("<!ELEMENT a (b*)>\n<!ELEMENT b (#PCDATA)>").expect("parse");
        assert_eq!(s.root(), "a");
    }

    #[test]
    fn any_content_model() {
        let s = parse_dtd("<!ELEMENT a ANY>\n<!ELEMENT b (#PCDATA)>").expect("parse");
        let a = s.def("a").expect("a");
        assert!(a.children.contains(&"a".to_string()));
        assert!(a.children.contains(&"b".to_string()));
        assert_eq!(a.text, Some(ValueType::Text));
    }

    #[test]
    fn recursive_dtd() {
        let s =
            parse_dtd("<!ELEMENT list (item*)>\n<!ELEMENT item (#PCDATA | list)*>").expect("parse");
        assert_eq!(s.children_of("item"), &["list"]);
        let marking = crate::Marking::analyze(&s);
        assert_eq!(marking.mark("list"), Some(&crate::PathMark::Infinite));
    }

    #[test]
    fn errors() {
        assert!(parse_dtd("").is_err());
        assert!(parse_dtd("<!ELEMENT a (undeclared)>").is_err());
        assert!(parse_dtd("<!DOCTYPE a <!ELEMENT a EMPTY>").is_err());
        assert!(parse_dtd("<!ELEMENT a").is_err());
    }

    #[test]
    fn fixed_and_entity_declarations_skipped() {
        let s = parse_dtd(
            "<!ELEMENT a EMPTY>\n\
             <!ATTLIST a v CDATA #FIXED \"x\">\n\
             <!ENTITY stuff \"ignored\">",
        )
        .expect("parse");
        assert_eq!(s.def("a").expect("a").attributes.len(), 1);
    }
}
