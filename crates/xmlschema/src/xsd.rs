//! XML Schema (XSD) subset parsing: build a [`Schema`] graph from a real
//! `xs:schema` document.
//!
//! The paper consumes XML Schemas through their graph representation
//! (§2.1). This module accepts the structural core of XSD and flattens it
//! to that graph:
//!
//! * global `xs:element` declarations (the first is the document element,
//!   matching how single-root schemas are written);
//! * inline `xs:complexType` with `xs:sequence` / `xs:choice` / `xs:all`
//!   (cardinality and order collapse — the graph only records possible
//!   nesting);
//! * named global `xs:complexType`s referenced by `type="…"` — the
//!   paper's "globally defined, already mapped complex type" case: every
//!   element of the same named type shares one definition node;
//! * `element ref="…"` references, `xs:attribute` declarations, and
//!   simple-content types mapped to text columns (`xs:integer`/
//!   `xs:decimal` → typed columns).
//!
//! Because our graph is name-keyed (DTD-style), two *different* local
//! types for the same element name are rejected with a clear error, which
//! is also the restriction §3's mapping rules imply for name-keyed
//! relations.

use std::collections::BTreeMap;

use xmldom::{Document, NodeId};

use crate::graph::{AttrDef, ElemDef, Schema, SchemaError, ValueType};

/// Parse an XSD document (as text) into a [`Schema`].
pub fn parse_xsd(input: &str) -> Result<Schema, SchemaError> {
    let doc = xmldom::parse(input).map_err(|e| SchemaError(format!("XSD is not XML: {e}")))?;
    let root = doc
        .document_element()
        .ok_or_else(|| SchemaError("empty XSD".into()))?;
    if local_name(doc.name(root).unwrap_or("")) != "schema" {
        return Err(SchemaError("document element must be xs:schema".into()));
    }

    // Collect named global complex types.
    let mut global_types: BTreeMap<String, NodeId> = BTreeMap::new();
    for c in doc.child_elements(root) {
        if local_name(doc.name(c).expect("element")) == "complexType" {
            if let Some(n) = doc.attribute(c, "name") {
                global_types.insert(n.to_string(), c);
            }
        }
    }

    let mut builder = Builder {
        doc: &doc,
        global_types,
        defs: BTreeMap::new(),
        in_progress: BTreeMap::new(),
        signatures: BTreeMap::new(),
    };

    // Global elements; the first is the designated root.
    let mut root_name: Option<String> = None;
    for c in doc.child_elements(root) {
        if local_name(doc.name(c).expect("element")) == "element" {
            let name = builder.element(c)?;
            root_name.get_or_insert(name);
        }
    }
    let root_name =
        root_name.ok_or_else(|| SchemaError("XSD declares no global element".into()))?;

    // Any global element not reachable from the root would fail
    // Schema::new's reachability check; keep only reachable definitions.
    let mut keep: BTreeMap<String, ElemDef> = BTreeMap::new();
    let mut stack = vec![root_name.clone()];
    while let Some(n) = stack.pop() {
        if keep.contains_key(&n) {
            continue;
        }
        let def = builder
            .defs
            .get(&n)
            .ok_or_else(|| SchemaError(format!("element `{n}` referenced but not declared")))?
            .clone();
        stack.extend(def.children.iter().cloned());
        keep.insert(n, def);
    }
    Schema::new(&root_name, keep.into_values().collect())
}

fn local_name(qname: &str) -> &str {
    qname.rsplit(':').next().unwrap_or(qname)
}

fn simple_type_to_value(ty: &str) -> ValueType {
    match local_name(ty) {
        "integer" | "int" | "long" | "short" | "nonNegativeInteger" | "positiveInteger" => {
            ValueType::Int
        }
        "decimal" | "double" | "float" => ValueType::Float,
        _ => ValueType::Text,
    }
}

struct Builder<'d> {
    doc: &'d Document,
    global_types: BTreeMap<String, NodeId>,
    defs: BTreeMap<String, ElemDef>,
    /// (element name → type signature) for definitions currently being
    /// expanded; breaks the recursion of self-referential named types.
    in_progress: BTreeMap<String, String>,
    /// Signatures of completed definitions (for fast identical-redecl
    /// short-circuit).
    signatures: BTreeMap<String, String>,
}

impl<'d> Builder<'d> {
    /// Process an `xs:element` node; returns the element name.
    fn element(&mut self, el: NodeId) -> Result<String, SchemaError> {
        let doc = self.doc;
        if let Some(r) = doc.attribute(el, "ref") {
            // A reference: the definition lives elsewhere.
            return Ok(local_name(r).to_string());
        }
        let name = doc
            .attribute(el, "name")
            .ok_or_else(|| SchemaError("xs:element without name or ref".into()))?
            .to_string();

        // Recursion guard: an element of a named type may (indirectly)
        // contain itself; if we are already expanding this (name, type),
        // just reference it.
        let signature = doc
            .attribute(el, "type")
            .map(|t| format!("type:{}", local_name(t)))
            .unwrap_or_else(|| format!("inline:{}", el.0));
        match self.in_progress.get(&name) {
            Some(sig) if *sig == signature => return Ok(name),
            Some(_) => {
                return Err(SchemaError(format!(
                    "element `{name}` is declared twice with different types; \
                     the name-keyed mapping needs one definition per name"
                )))
            }
            None => {}
        }
        if self.defs.contains_key(&name) {
            // Already fully built: the post-build comparison below would
            // re-expand; short-circuit identical signatures.
            if self.signatures.get(&name) == Some(&signature) {
                return Ok(name);
            }
        }
        self.in_progress.insert(name.clone(), signature.clone());

        let def = if let Some(ty) = doc.attribute(el, "type") {
            match self.global_types.get(local_name(ty)).copied() {
                Some(ct) => self.complex_type(&name, ct)?,
                None => ElemDef {
                    name: name.clone(),
                    attributes: Vec::new(),
                    text: Some(simple_type_to_value(ty)),
                    children: Vec::new(),
                },
            }
        } else if let Some(ct) = self.find_child(el, "complexType") {
            self.complex_type(&name, ct)?
        } else {
            // No type: xs:anyType in principle; treat as empty+text.
            ElemDef {
                name: name.clone(),
                attributes: Vec::new(),
                text: Some(ValueType::Text),
                children: Vec::new(),
            }
        };

        self.in_progress.remove(&name);
        match self.defs.get(&name) {
            Some(existing)
                if existing.children != def.children
                    || existing.text != def.text
                    || existing.attributes != def.attributes =>
            {
                return Err(SchemaError(format!(
                    "element `{name}` is declared twice with different types; \
                     the name-keyed mapping needs one definition per name"
                )));
            }
            _ => {
                self.defs.insert(name.clone(), def);
                self.signatures.insert(name.clone(), signature);
            }
        }
        Ok(name)
    }

    /// Flatten a complexType node into a definition for `name`.
    fn complex_type(&mut self, name: &str, ct: NodeId) -> Result<ElemDef, SchemaError> {
        let doc = self.doc;
        let mut children = Vec::new();
        let mut attributes = Vec::new();
        let mut text = doc
            .attribute(ct, "mixed")
            .map(|m| m == "true")
            .unwrap_or(false)
            .then_some(ValueType::Text);

        // simpleContent: text plus attributes.
        if let Some(sc) = self.find_child(ct, "simpleContent") {
            text = Some(ValueType::Text);
            if let Some(ext) = self.find_child(sc, "extension") {
                if let Some(base) = doc.attribute(ext, "base") {
                    text = Some(simple_type_to_value(base));
                }
                self.collect_attributes(ext, &mut attributes)?;
            }
        }

        self.collect_particles(ct, &mut children)?;
        self.collect_attributes(ct, &mut attributes)?;

        Ok(ElemDef {
            name: name.to_string(),
            attributes,
            text,
            children,
        })
    }

    /// Walk sequence/choice/all groups, registering nested elements.
    fn collect_particles(
        &mut self,
        node: NodeId,
        children: &mut Vec<String>,
    ) -> Result<(), SchemaError> {
        let kids: Vec<NodeId> = self.doc.child_elements(node).collect();
        for c in kids {
            match local_name(self.doc.name(c).expect("element")) {
                "sequence" | "choice" | "all" => self.collect_particles(c, children)?,
                "element" => {
                    let child_name = self.element(c)?;
                    if !children.contains(&child_name) {
                        children.push(child_name);
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn collect_attributes(
        &mut self,
        node: NodeId,
        attributes: &mut Vec<AttrDef>,
    ) -> Result<(), SchemaError> {
        for c in self.doc.child_elements(node).collect::<Vec<_>>() {
            if local_name(self.doc.name(c).expect("element")) == "attribute" {
                let name = self
                    .doc
                    .attribute(c, "name")
                    .ok_or_else(|| SchemaError("xs:attribute without a name".into()))?;
                let ty = self
                    .doc
                    .attribute(c, "type")
                    .map(simple_type_to_value)
                    .unwrap_or(ValueType::Text);
                attributes.push(AttrDef {
                    name: name.to_string(),
                    ty,
                });
            }
        }
        Ok(())
    }

    fn find_child(&self, node: NodeId, local: &str) -> Option<NodeId> {
        self.doc
            .child_elements(node)
            .find(|&c| local_name(self.doc.name(c).expect("element")) == local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
      <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
        <xs:element name="library">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="shelf" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="book" type="BookType" maxOccurs="unbounded"/>
                  </xs:sequence>
                  <xs:attribute name="room" type="xs:string"/>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:complexType name="BookType">
          <xs:sequence>
            <xs:element name="title" type="xs:string"/>
            <xs:element name="author" type="xs:string" maxOccurs="unbounded"/>
            <xs:element name="year" type="xs:integer" minOccurs="0"/>
          </xs:sequence>
          <xs:attribute name="isbn" type="xs:string"/>
        </xs:complexType>
      </xs:schema>"#;

    #[test]
    fn parses_structural_core() {
        let s = parse_xsd(SAMPLE).expect("parse");
        assert_eq!(s.root(), "library");
        assert_eq!(s.children_of("library"), &["shelf"]);
        assert_eq!(s.children_of("shelf"), &["book"]);
        assert_eq!(s.children_of("book"), &["title", "author", "year"]);
        let year = s.def("year").expect("year");
        assert_eq!(year.text, Some(ValueType::Int));
        let book = s.def("book").expect("book");
        assert_eq!(book.attributes[0].name, "isbn");
    }

    #[test]
    fn element_refs_resolve() {
        let s = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:element name="a">
                   <xs:complexType><xs:sequence>
                     <xs:element ref="b"/>
                   </xs:sequence></xs:complexType>
                 </xs:element>
                 <xs:element name="b" type="xs:string"/>
               </xs:schema>"#,
        )
        .expect("parse");
        assert_eq!(s.children_of("a"), &["b"]);
    }

    #[test]
    fn recursive_named_type() {
        // A type containing elements of the same type — §3's recursive
        // schema case.
        let s = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:element name="part" type="PartType"/>
                 <xs:complexType name="PartType">
                   <xs:sequence>
                     <xs:element name="part" type="PartType" minOccurs="0"/>
                   </xs:sequence>
                 </xs:complexType>
               </xs:schema>"#,
        )
        .expect("parse");
        assert_eq!(s.children_of("part"), &["part"]);
        let m = crate::Marking::analyze(&s);
        assert_eq!(m.mark("part"), Some(&crate::PathMark::Infinite));
    }

    #[test]
    fn shared_global_type_is_one_definition() {
        // Same name + same global type in two places: fine.
        let s = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:element name="r">
                   <xs:complexType><xs:sequence>
                     <xs:element name="x" type="T"/>
                     <xs:element name="wrap">
                       <xs:complexType><xs:sequence>
                         <xs:element name="x" type="T"/>
                       </xs:sequence></xs:complexType>
                     </xs:element>
                   </xs:sequence></xs:complexType>
                 </xs:element>
                 <xs:complexType name="T">
                   <xs:sequence><xs:element name="leaf" type="xs:string"/></xs:sequence>
                 </xs:complexType>
               </xs:schema>"#,
        )
        .expect("parse");
        assert_eq!(s.children_of("x"), &["leaf"]);
    }

    #[test]
    fn conflicting_local_types_rejected() {
        let err = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:element name="r">
                   <xs:complexType><xs:sequence>
                     <xs:element name="x" type="xs:string"/>
                     <xs:element name="x" type="xs:integer"/>
                   </xs:sequence></xs:complexType>
                 </xs:element>
               </xs:schema>"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("declared twice"), "{err}");
    }

    #[test]
    fn loads_into_xmldb_end_to_end() {
        let s = parse_xsd(SAMPLE).expect("parse");
        let doc = xmldom::parse(
            "<library><shelf room='A'><book isbn='1'>\
             <title>t</title><author>a</author><year>2001</year>\
             </book></shelf></library>",
        )
        .expect("xml");
        s.validate(&doc)
            .expect("document validates against the XSD");
    }

    #[test]
    fn errors() {
        assert!(parse_xsd("<notaschema/>").is_err());
        assert!(parse_xsd("not xml").is_err());
        assert!(parse_xsd(r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>"#).is_err());
    }
}
