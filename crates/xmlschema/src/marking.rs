//! Schema-graph path marking (paper §4.5, Figure 2).
//!
//! Every element definition is marked:
//! * **U-P** (Unique Path): exactly one root-to-node path exists — the
//!   relation never needs a `Paths` join;
//! * **F-P** (Finite Paths): finitely many paths, all enumerated — the
//!   `Paths` join is added only if some enumerated path fails the PPF's
//!   regular expression;
//! * **I-P** (Infinite Paths): some path passes through a cycle — the
//!   `Paths` join is always required.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::Schema;

/// The §4.5 mark for one element definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathMark {
    /// Exactly one root-to-node path (stored).
    Unique(String),
    /// All possible root-to-node paths (a small, finite set).
    Finite(Vec<String>),
    /// Infinitely many root-to-node paths (recursion above this node).
    Infinite,
}

impl PathMark {
    /// The enumerated paths, if finite. `Unique` yields a single path.
    pub fn paths(&self) -> Option<Vec<&str>> {
        match self {
            PathMark::Unique(p) => Some(vec![p.as_str()]),
            PathMark::Finite(ps) => Some(ps.iter().map(|s| s.as_str()).collect()),
            PathMark::Infinite => None,
        }
    }
}

/// If a definition has more paths than this, enumerating them stops being
/// cheaper than just joining `Paths`; it is treated like I-P. (Real-world
/// schemas sit far below this; it guards degenerate DAGs whose path count
/// is exponential.)
const MAX_ENUMERATED_PATHS: usize = 64;

/// Computed marks for every definition of a schema.
#[derive(Debug, Clone)]
pub struct Marking {
    marks: BTreeMap<String, PathMark>,
}

impl Marking {
    /// Analyze the schema graph and mark every element definition.
    pub fn analyze(schema: &Schema) -> Marking {
        // 1. Vertices on a cycle: self-loop or on a directed cycle. With
        //    DTD-style graphs the sizes are tiny, so a DFS per vertex is fine.
        let names: Vec<&str> = schema.names().collect();
        let mut on_cycle: BTreeSet<&str> = BTreeSet::new();
        for &v in &names {
            if reachable_from(schema, v).contains(v) {
                on_cycle.insert(v);
            }
        }
        // 2. I-P = reachable from any cycle vertex (cycle vertices included).
        let mut infinite: BTreeSet<&str> = BTreeSet::new();
        for &v in &on_cycle {
            infinite.insert(v);
            for r in reachable_from(schema, v) {
                infinite.insert(r);
            }
        }
        // 3. For the rest, enumerate root-to-node paths by DFS from the root
        //    through non-I-P vertices only (a path through an I-P vertex
        //    would imply this vertex is I-P too).
        let mut paths: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        let mut stack: Vec<(String, String)> = Vec::new(); // (name, path string)
        let root = schema.root().to_string();
        stack.push((root.clone(), format!("/{root}")));
        let mut overflow: BTreeSet<&str> = BTreeSet::new();
        while let Some((name, path)) = stack.pop() {
            // Resolve `name` to the schema's owned str for map keys.
            let key = names
                .iter()
                .copied()
                .find(|&n| n == name)
                .expect("names come from the schema");
            if infinite.contains(key) {
                continue;
            }
            let list = paths.entry(key).or_default();
            list.push(path.clone());
            if list.len() > MAX_ENUMERATED_PATHS {
                overflow.insert(key);
            }
            for child in schema.children_of(&name) {
                stack.push((child.clone(), format!("{path}/{child}")));
            }
        }

        let mut marks = BTreeMap::new();
        for &name in &names {
            let mark = if infinite.contains(name) || overflow.contains(name) {
                PathMark::Infinite
            } else {
                let mut ps = paths.remove(name).unwrap_or_default();
                ps.sort();
                ps.dedup();
                match ps.len() {
                    0 => {
                        // Unreachable definitions are rejected at schema
                        // construction, so this cannot happen.
                        unreachable!("definition `{name}` has no root path")
                    }
                    1 => PathMark::Unique(ps.pop().expect("one path")),
                    _ => PathMark::Finite(ps),
                }
            };
            marks.insert(name.to_string(), mark);
        }
        Marking { marks }
    }

    /// The mark of an element definition.
    pub fn mark(&self, name: &str) -> Option<&PathMark> {
        self.marks.get(name)
    }

    /// Iterate `(name, mark)` sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PathMark)> {
        self.marks.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// All vertices reachable from `start` by one or more nesting edges.
fn reachable_from<'s>(schema: &'s Schema, start: &str) -> BTreeSet<&'s str> {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&str> = schema
        .children_of(start)
        .iter()
        .map(|s| s.as_str())
        .collect();
    while let Some(n) = stack.pop() {
        if seen.insert(n) {
            stack.extend(schema.children_of(n).iter().map(|s| s.as_str()));
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure1_schema, SchemaBuilder};

    #[test]
    fn figure1_marks() {
        // In Figure 1(a): A, B, C, D, E, F all have unique paths; G is
        // recursive (G → G), so G is I-P.
        let m = Marking::analyze(&figure1_schema());
        assert_eq!(m.mark("A"), Some(&PathMark::Unique("/A".into())));
        assert_eq!(m.mark("B"), Some(&PathMark::Unique("/A/B".into())));
        assert_eq!(m.mark("D"), Some(&PathMark::Unique("/A/B/C/D".into())));
        assert_eq!(m.mark("F"), Some(&PathMark::Unique("/A/B/C/E/F".into())));
        assert_eq!(m.mark("G"), Some(&PathMark::Infinite));
    }

    #[test]
    fn finite_paths_are_enumerated() {
        // d is reachable both via b and via c → F-P with two paths.
        let s = SchemaBuilder::new()
            .root("a")
            .elem("a", &[], None, &["b", "c"])
            .elem("b", &[], None, &["d"])
            .elem("c", &[], None, &["d"])
            .leaf("d")
            .build()
            .expect("schema");
        let m = Marking::analyze(&s);
        assert_eq!(
            m.mark("d"),
            Some(&PathMark::Finite(vec![
                "/a/b/d".to_string(),
                "/a/c/d".to_string()
            ]))
        );
        assert_eq!(m.mark("b"), Some(&PathMark::Unique("/a/b".into())));
    }

    #[test]
    fn nodes_below_recursion_are_infinite() {
        // p → l → p (mutual recursion), k below l: all three are I-P.
        let s = SchemaBuilder::new()
            .root("r")
            .elem("r", &[], None, &["p"])
            .elem("p", &[], None, &["l"])
            .elem("l", &[], None, &["p", "k"])
            .leaf("k")
            .build()
            .expect("schema");
        let m = Marking::analyze(&s);
        assert_eq!(m.mark("p"), Some(&PathMark::Infinite));
        assert_eq!(m.mark("l"), Some(&PathMark::Infinite));
        assert_eq!(m.mark("k"), Some(&PathMark::Infinite));
        assert_eq!(m.mark("r"), Some(&PathMark::Unique("/r".into())));
    }

    #[test]
    fn mark_paths_accessor() {
        let m = Marking::analyze(&figure1_schema());
        assert_eq!(m.mark("B").and_then(|p| p.paths()), Some(vec!["/A/B"]));
        assert_eq!(m.mark("G").and_then(|p| p.paths()), None);
    }
}
