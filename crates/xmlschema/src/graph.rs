//! The XML Schema graph (paper §2.1, Figure 1(a)).
//!
//! Vertices are element definitions, edges are possible nesting
//! relationships. We use DTD-style schemas — one global definition per
//! element name — which is exactly how the paper's datasets (XMark, DBLP)
//! are described, and makes element name ↔ mapping relation a bijection.
//! Recursive schemata (a definition reachable from itself) are supported
//! and drive the I-P marking of §4.5.

use std::collections::BTreeMap;

/// The type of a text value or attribute, used to pick the SQL column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueType {
    #[default]
    Text,
    Int,
    Float,
}

/// An attribute declaration on an element definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    pub name: String,
    pub ty: ValueType,
}

/// One element definition (one vertex of the schema graph; one mapping
/// relation in the schema-aware shredding).
#[derive(Debug, Clone)]
pub struct ElemDef {
    pub name: String,
    pub attributes: Vec<AttrDef>,
    /// Whether the element may carry text content, and its type.
    pub text: Option<ValueType>,
    /// Names of the element definitions that may nest directly below.
    pub children: Vec<String>,
}

/// A parsed schema: the graph plus its designated document element.
#[derive(Debug, Clone)]
pub struct Schema {
    root: String,
    defs: BTreeMap<String, ElemDef>,
}

/// Error produced by schema construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Build a schema from definitions; validates that the root and every
    /// referenced child are defined and reachable.
    pub fn new(root: &str, defs: Vec<ElemDef>) -> Result<Schema, SchemaError> {
        let mut map = BTreeMap::new();
        for def in defs {
            let name = def.name.clone();
            if map.insert(name.clone(), def).is_some() {
                return Err(SchemaError(format!("duplicate definition for `{name}`")));
            }
        }
        let schema = Schema {
            root: root.to_string(),
            defs: map,
        };
        if !schema.defs.contains_key(root) {
            return Err(SchemaError(format!("root element `{root}` is not defined")));
        }
        for def in schema.defs.values() {
            for c in &def.children {
                if !schema.defs.contains_key(c) {
                    return Err(SchemaError(format!(
                        "`{}` references undefined child `{c}`",
                        def.name
                    )));
                }
            }
        }
        // Unreachable definitions are almost always authoring mistakes.
        let reachable = schema.reachable_names();
        for name in schema.defs.keys() {
            if !reachable.contains(name) {
                return Err(SchemaError(format!(
                    "definition `{name}` is unreachable from root `{root}`"
                )));
            }
        }
        Ok(schema)
    }

    /// The document element name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Look up a definition by element name.
    pub fn def(&self, name: &str) -> Option<&ElemDef> {
        self.defs.get(name)
    }

    /// All element names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(|s| s.as_str())
    }

    /// Number of element definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Names of definitions that may appear directly below `name`.
    pub fn children_of(&self, name: &str) -> &[String] {
        self.defs
            .get(name)
            .map(|d| d.children.as_slice())
            .unwrap_or(&[])
    }

    /// Names of definitions under which `name` may appear directly.
    pub fn parents_of(&self, name: &str) -> Vec<&str> {
        self.defs
            .values()
            .filter(|d| d.children.iter().any(|c| c == name))
            .map(|d| d.name.as_str())
            .collect()
    }

    fn reachable_names(&self) -> std::collections::BTreeSet<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![self.root.clone()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(def) = self.defs.get(&n) {
                stack.extend(def.children.iter().cloned());
            }
        }
        seen
    }

    /// Validate a document against the schema: the document element is the
    /// schema root, every element is defined, every nesting edge and
    /// attribute is declared, and text appears only where allowed.
    pub fn validate(&self, doc: &xmldom::Document) -> Result<(), SchemaError> {
        let root = doc
            .document_element()
            .ok_or_else(|| SchemaError("document has no element".into()))?;
        let root_name = doc.name(root).expect("document element is an element");
        if root_name != self.root {
            return Err(SchemaError(format!(
                "document element `{root_name}` does not match schema root `{}`",
                self.root
            )));
        }
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let name = doc.name(n).expect("stack holds elements");
            let def = self
                .defs
                .get(name)
                .ok_or_else(|| SchemaError(format!("undefined element `{name}`")))?;
            for (attr, _) in doc.attributes(n) {
                if !def.attributes.iter().any(|a| &a.name == attr) {
                    return Err(SchemaError(format!(
                        "undeclared attribute `{attr}` on `{name}`"
                    )));
                }
            }
            if def.text.is_none() && !doc.direct_text(n).trim().is_empty() {
                return Err(SchemaError(format!("text content not allowed in `{name}`")));
            }
            for c in doc.child_elements(n) {
                let cname = doc.name(c).expect("element");
                if !def.children.iter().any(|x| x == cname) {
                    return Err(SchemaError(format!(
                        "`{cname}` may not nest under `{name}`"
                    )));
                }
                stack.push(c);
            }
        }
        Ok(())
    }
}

/// Fluent builder for programmatic schema construction (used by tests and
/// the workload generators).
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    root: Option<String>,
    defs: Vec<ElemDef>,
}

impl SchemaBuilder {
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    pub fn root(mut self, name: &str) -> Self {
        self.root = Some(name.to_string());
        self
    }

    /// Define an element: `attrs` as `(name, type)`, `text` content type if
    /// any, and allowed child element names.
    pub fn elem(
        mut self,
        name: &str,
        attrs: &[(&str, ValueType)],
        text: Option<ValueType>,
        children: &[&str],
    ) -> Self {
        self.defs.push(ElemDef {
            name: name.to_string(),
            attributes: attrs
                .iter()
                .map(|(n, t)| AttrDef {
                    name: n.to_string(),
                    ty: *t,
                })
                .collect(),
            text,
            children: children.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Shorthand for a text-only leaf element.
    pub fn leaf(self, name: &str) -> Self {
        self.elem(name, &[], Some(ValueType::Text), &[])
    }

    pub fn build(self) -> Result<Schema, SchemaError> {
        let root = self
            .root
            .ok_or_else(|| SchemaError("no root element set".into()))?;
        Schema::new(&root, self.defs)
    }
}

/// The schema of the paper's Figure 1(a): A → B → {C, G}, C → {D, E},
/// E → F, and G → G (recursive).
pub fn figure1_schema() -> Schema {
    SchemaBuilder::new()
        .root("A")
        .elem("A", &[("x", ValueType::Int)], None, &["B"])
        .elem("B", &[], None, &["C", "G"])
        .elem("C", &[], None, &["D", "E"])
        .elem("D", &[("x", ValueType::Int)], Some(ValueType::Int), &[])
        .elem("E", &[], None, &["F"])
        .elem("F", &[], Some(ValueType::Int), &[])
        .elem("G", &[], None, &["G"])
        .build()
        .expect("figure 1 schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_graph_shape() {
        let s = figure1_schema();
        assert_eq!(s.root(), "A");
        assert_eq!(s.len(), 7);
        assert_eq!(s.children_of("B"), &["C", "G"]);
        assert_eq!(s.parents_of("G"), vec!["B", "G"]);
        assert_eq!(s.parents_of("A"), Vec::<&str>::new());
    }

    #[test]
    fn rejects_undefined_children() {
        let err = SchemaBuilder::new()
            .root("a")
            .elem("a", &[], None, &["missing"])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("undefined child"));
    }

    #[test]
    fn rejects_unreachable_definitions() {
        let err = SchemaBuilder::new()
            .root("a")
            .elem("a", &[], None, &[])
            .leaf("orphan")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn rejects_missing_root() {
        let err = SchemaBuilder::new()
            .root("nope")
            .elem("a", &[], None, &[])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("not defined"));
    }

    #[test]
    fn validates_documents() {
        let s = figure1_schema();
        let good = xmldom::parse("<A x='3'><B><C><D>1</D></C></B></A>").expect("xml");
        assert!(s.validate(&good).is_ok());

        let wrong_root = xmldom::parse("<B/>").expect("xml");
        assert!(s.validate(&wrong_root).is_err());

        let bad_nesting = xmldom::parse("<A><C/></A>").expect("xml");
        assert!(s.validate(&bad_nesting).is_err());

        let bad_attr = xmldom::parse("<A y='1'/>").expect("xml");
        assert!(s.validate(&bad_attr).is_err());

        let bad_text = xmldom::parse("<A>boom</A>").expect("xml");
        assert!(s.validate(&bad_text).is_err());

        let recursive = xmldom::parse("<A><B><G><G><G/></G></G></B></A>").expect("xml");
        assert!(s.validate(&recursive).is_ok());
    }
}
