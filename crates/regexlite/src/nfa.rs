//! NFA compilation (Thompson construction) and execution (Pike VM).
//!
//! The VM simulates all NFA threads in lockstep, giving `O(pattern ×
//! input)` worst-case matching — important because path filters run once
//! per candidate row inside the SQL executor, over adversarially nestable
//! documents.

use crate::ast::{Ast, CharClass};

/// One NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Consume one byte matching the class, then go to `next`.
    Byte { class: CharClass, next: usize },
    /// Consume any byte, then go to `next`.
    Any { next: usize },
    /// Fork execution into both targets (preference order irrelevant for
    /// boolean matching).
    Split { a: usize, b: usize },
    /// Unconditional jump.
    Jmp { next: usize },
    /// Zero-width: succeeds only at input start.
    AssertStart { next: usize },
    /// Zero-width: succeeds only at input end.
    AssertEnd { next: usize },
    /// Accept.
    Match,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
    pub start: usize,
    /// True when the pattern starts with `^` on every alternation branch,
    /// letting the VM skip the unanchored-search thread seeding.
    pub anchored_start: bool,
}

/// Upper bound on repetition expansion to keep compiled programs small.
/// `{m,n}` bounds are expanded by duplication; PPF-generated patterns never
/// use counted bounds, so this only guards hand-written patterns.
const MAX_REPEAT_EXPANSION: u32 = 1000;

/// Upper bound on the total compiled program size, in instructions.
/// The per-repetition bound above caps one `{m,n}` in isolation, but
/// nesting multiplies — `(a{1000}){1000}` passes every individual bound
/// check while expanding toward 10⁶ instructions. The compiler checks
/// this budget on every `emit` call (the same shape as the DFA's state
/// budget), so total work before a hostile pattern is rejected stays
/// proportional to the budget, not to the nesting product.
pub const MAX_PROGRAM_INSTS: usize = 32_768;

/// Compilation error (repetition-size or program-size overflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

pub fn compile(ast: &Ast) -> Result<Program, CompileError> {
    let mut c = Compiler { insts: Vec::new() };
    let frag = c.emit(ast)?;
    let match_ip = c.push(Inst::Match);
    c.patch(frag.outs, match_ip);
    Ok(Program {
        anchored_start: starts_anchored(ast),
        insts: c.insts,
        start: frag.start,
    })
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorStart => true,
        Ast::Concat(xs) => xs.first().map(starts_anchored).unwrap_or(false),
        Ast::Alternation(xs) => xs.iter().all(starts_anchored),
        Ast::Group(x) => starts_anchored(x),
        _ => false,
    }
}

/// A compiled fragment: entry point plus the dangling exits to patch.
struct Frag {
    start: usize,
    outs: Vec<Hole>,
}

/// A dangling jump target inside an instruction.
#[derive(Clone, Copy)]
enum Hole {
    Next(usize),
    SplitA(usize),
    SplitB(usize),
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn patch(&mut self, holes: Vec<Hole>, target: usize) {
        for hole in holes {
            match hole {
                Hole::Next(ip) => match &mut self.insts[ip] {
                    Inst::Byte { next, .. }
                    | Inst::Any { next }
                    | Inst::Jmp { next }
                    | Inst::AssertStart { next }
                    | Inst::AssertEnd { next } => *next = target,
                    other => unreachable!("patch Next on {other:?}"),
                },
                Hole::SplitA(ip) => match &mut self.insts[ip] {
                    Inst::Split { a, .. } => *a = target,
                    other => unreachable!("patch SplitA on {other:?}"),
                },
                Hole::SplitB(ip) => match &mut self.insts[ip] {
                    Inst::Split { b, .. } => *b = target,
                    other => unreachable!("patch SplitB on {other:?}"),
                },
            }
        }
    }

    fn emit(&mut self, ast: &Ast) -> Result<Frag, CompileError> {
        if self.insts.len() > MAX_PROGRAM_INSTS {
            return Err(CompileError(format!(
                "pattern compiles past the {MAX_PROGRAM_INSTS}-instruction program budget"
            )));
        }
        match ast {
            Ast::Empty => {
                let ip = self.push(Inst::Jmp { next: usize::MAX });
                Ok(Frag {
                    start: ip,
                    outs: vec![Hole::Next(ip)],
                })
            }
            Ast::Literal(b) => {
                let class = CharClass {
                    negated: false,
                    ranges: vec![crate::ast::ClassRange { lo: *b, hi: *b }],
                };
                let ip = self.push(Inst::Byte {
                    class,
                    next: usize::MAX,
                });
                Ok(Frag {
                    start: ip,
                    outs: vec![Hole::Next(ip)],
                })
            }
            Ast::AnyChar => {
                let ip = self.push(Inst::Any { next: usize::MAX });
                Ok(Frag {
                    start: ip,
                    outs: vec![Hole::Next(ip)],
                })
            }
            Ast::Class(c) => {
                let ip = self.push(Inst::Byte {
                    class: c.clone(),
                    next: usize::MAX,
                });
                Ok(Frag {
                    start: ip,
                    outs: vec![Hole::Next(ip)],
                })
            }
            Ast::AnchorStart => {
                let ip = self.push(Inst::AssertStart { next: usize::MAX });
                Ok(Frag {
                    start: ip,
                    outs: vec![Hole::Next(ip)],
                })
            }
            Ast::AnchorEnd => {
                let ip = self.push(Inst::AssertEnd { next: usize::MAX });
                Ok(Frag {
                    start: ip,
                    outs: vec![Hole::Next(ip)],
                })
            }
            Ast::Group(inner) => self.emit(inner),
            Ast::Concat(parts) => {
                let mut iter = parts.iter();
                let first = iter.next().expect("concat is non-empty");
                let mut frag = self.emit(first)?;
                for part in iter {
                    let next = self.emit(part)?;
                    self.patch(frag.outs, next.start);
                    frag = Frag {
                        start: frag.start,
                        outs: next.outs,
                    };
                }
                Ok(frag)
            }
            Ast::Alternation(branches) => {
                debug_assert!(branches.len() >= 2);
                let mut outs = Vec::new();
                let mut prev_split: Option<usize> = None;
                let mut start = usize::MAX;
                for (i, branch) in branches.iter().enumerate() {
                    let last = i + 1 == branches.len();
                    if last {
                        let frag = self.emit(branch)?;
                        if let Some(sp) = prev_split {
                            self.patch(vec![Hole::SplitB(sp)], frag.start);
                        } else {
                            start = frag.start;
                        }
                        outs.extend(frag.outs);
                    } else {
                        let sp = self.push(Inst::Split {
                            a: usize::MAX,
                            b: usize::MAX,
                        });
                        if let Some(prev) = prev_split {
                            self.patch(vec![Hole::SplitB(prev)], sp);
                        } else {
                            start = sp;
                        }
                        let frag = self.emit(branch)?;
                        self.patch(vec![Hole::SplitA(sp)], frag.start);
                        outs.extend(frag.outs);
                        prev_split = Some(sp);
                    }
                }
                Ok(Frag { start, outs })
            }
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_repeat(
        &mut self,
        node: &Ast,
        min: u32,
        max: Option<u32>,
    ) -> Result<Frag, CompileError> {
        match (min, max) {
            // `x*`
            (0, None) => {
                let sp = self.push(Inst::Split {
                    a: usize::MAX,
                    b: usize::MAX,
                });
                let body = self.emit(node)?;
                self.patch(vec![Hole::SplitA(sp)], body.start);
                self.patch(body.outs, sp);
                Ok(Frag {
                    start: sp,
                    outs: vec![Hole::SplitB(sp)],
                })
            }
            // `x+`
            (1, None) => {
                let body = self.emit(node)?;
                let sp = self.push(Inst::Split {
                    a: usize::MAX,
                    b: usize::MAX,
                });
                self.patch(body.outs, sp);
                self.patch(vec![Hole::SplitA(sp)], body.start);
                Ok(Frag {
                    start: body.start,
                    outs: vec![Hole::SplitB(sp)],
                })
            }
            // `x?`
            (0, Some(1)) => {
                let sp = self.push(Inst::Split {
                    a: usize::MAX,
                    b: usize::MAX,
                });
                let body = self.emit(node)?;
                self.patch(vec![Hole::SplitA(sp)], body.start);
                let mut outs = body.outs;
                outs.push(Hole::SplitB(sp));
                Ok(Frag { start: sp, outs })
            }
            // General bounded repetition: expand by duplication.
            (m, n) => {
                let total = n.unwrap_or(m);
                if total > MAX_REPEAT_EXPANSION || m > MAX_REPEAT_EXPANSION {
                    return Err(CompileError(format!(
                        "repetition bound too large (max {MAX_REPEAT_EXPANSION})"
                    )));
                }
                // m mandatory copies ...
                let mut parts: Vec<Ast> = Vec::new();
                for _ in 0..m {
                    parts.push(node.clone());
                }
                match n {
                    // ... then (n - m) optional copies
                    Some(n) => {
                        for _ in m..n {
                            parts.push(Ast::Repeat {
                                node: Box::new(node.clone()),
                                min: 0,
                                max: Some(1),
                            });
                        }
                    }
                    // ... or a trailing star
                    None => parts.push(Ast::Repeat {
                        node: Box::new(node.clone()),
                        min: 0,
                        max: None,
                    }),
                }
                let expanded = if parts.is_empty() {
                    Ast::Empty
                } else if parts.len() == 1 {
                    parts.pop().expect("one part")
                } else {
                    Ast::Concat(parts)
                };
                self.emit(&expanded)
            }
        }
    }
}

/// Pike VM scratch space: breadth-first NFA simulation.
///
/// Owns only the thread lists so one `Vm` can be pooled and reused across
/// many [`Vm::is_match`] calls against the same (or different) programs.
#[derive(Debug, Default, Clone)]
pub struct Vm {
    current: Vec<usize>,
    next: Vec<usize>,
    on_current: Vec<bool>,
    on_next: Vec<bool>,
}

impl Vm {
    pub fn new() -> Self {
        Vm::default()
    }

    /// Whether the pattern matches anywhere in `input` (unanchored search;
    /// `^`/`$` in the pattern constrain it as usual).
    pub fn is_match(&mut self, prog: &Program, input: &[u8]) -> bool {
        let mut steps = 0u64;
        let mut max_threads = 0u64;
        let matched = self.run(prog, input, &mut steps, &mut max_threads);
        crate::stats::record(steps, max_threads);
        matched
    }

    fn run(
        &mut self,
        prog: &Program,
        input: &[u8],
        steps: &mut u64,
        max_threads: &mut u64,
    ) -> bool {
        let n = prog.insts.len();
        self.current.clear();
        self.next.clear();
        self.on_current.clear();
        self.on_current.resize(n, false);
        self.on_next.clear();
        self.on_next.resize(n, false);

        let mut matched = false;
        Self::add_thread(
            prog,
            &mut self.current,
            &mut self.on_current,
            prog.start,
            0,
            input,
            &mut matched,
        );
        if matched {
            return true;
        }
        for at in 0..input.len() {
            if !prog.anchored_start {
                // Seed a fresh attempt starting at this position.
                Self::add_thread(
                    prog,
                    &mut self.current,
                    &mut self.on_current,
                    prog.start,
                    at,
                    input,
                    &mut matched,
                );
                if matched {
                    return true;
                }
            }
            if self.current.is_empty() && prog.anchored_start {
                return false;
            }
            let byte = input[at];
            *steps += self.current.len() as u64;
            *max_threads = (*max_threads).max(self.current.len() as u64);
            for i in 0..self.current.len() {
                let ip = self.current[i];
                match &prog.insts[ip] {
                    Inst::Byte { class, next } if class.matches(byte) => {
                        Self::add_thread(
                            prog,
                            &mut self.next,
                            &mut self.on_next,
                            *next,
                            at + 1,
                            input,
                            &mut matched,
                        );
                    }
                    Inst::Any { next } => {
                        Self::add_thread(
                            prog,
                            &mut self.next,
                            &mut self.on_next,
                            *next,
                            at + 1,
                            input,
                            &mut matched,
                        );
                    }
                    _ => {}
                }
            }
            if matched {
                return true;
            }
            std::mem::swap(&mut self.current, &mut self.next);
            std::mem::swap(&mut self.on_current, &mut self.on_next);
            self.next.clear();
            self.on_next.iter_mut().for_each(|b| *b = false);
        }
        // Seed one final attempt at end-of-input (matters for patterns that
        // can match the empty string, e.g. `^$` or `a*$`).
        if !prog.anchored_start {
            Self::add_thread(
                prog,
                &mut self.current,
                &mut self.on_current,
                prog.start,
                input.len(),
                input,
                &mut matched,
            );
        }
        matched
    }

    /// Add `ip` to the thread list, following zero-width instructions
    /// (splits, jumps, anchors) eagerly.
    fn add_thread(
        prog: &Program,
        list: &mut Vec<usize>,
        on: &mut [bool],
        ip: usize,
        at: usize,
        input: &[u8],
        matched: &mut bool,
    ) {
        if on[ip] {
            return;
        }
        on[ip] = true;
        match &prog.insts[ip] {
            Inst::Jmp { next } => Self::add_thread(prog, list, on, *next, at, input, matched),
            Inst::Split { a, b } => {
                Self::add_thread(prog, list, on, *a, at, input, matched);
                Self::add_thread(prog, list, on, *b, at, input, matched);
            }
            Inst::AssertStart { next } => {
                if at == 0 {
                    Self::add_thread(prog, list, on, *next, at, input, matched);
                }
            }
            Inst::AssertEnd { next } => {
                if at == input.len() {
                    Self::add_thread(prog, list, on, *next, at, input, matched);
                }
            }
            Inst::Match => *matched = true,
            Inst::Byte { .. } | Inst::Any { .. } => list.push(ip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn matches(pat: &str, input: &str) -> bool {
        let prog = compile(&parse(pat).expect("parse")).expect("compile");
        Vm::new().is_match(&prog, input.as_bytes())
    }

    #[test]
    fn basic_matching() {
        assert!(matches("abc", "xxabcxx"));
        assert!(!matches("abc", "abx"));
        assert!(matches("^abc$", "abc"));
        assert!(!matches("^abc$", "xabc"));
        assert!(!matches("^abc$", "abcx"));
    }

    #[test]
    fn star_plus_opt() {
        assert!(matches("^a*$", ""));
        assert!(matches("^a*$", "aaaa"));
        assert!(!matches("^a+$", ""));
        assert!(matches("^a+$", "a"));
        assert!(matches("^ab?c$", "ac"));
        assert!(matches("^ab?c$", "abc"));
        assert!(!matches("^ab?c$", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(matches("^(ab|cd)+$", "abcdab"));
        assert!(!matches("^(ab|cd)+$", "abc"));
        assert!(matches("^a(b|)c$", "ac"));
    }

    #[test]
    fn path_filter_patterns() {
        // The shapes emitted by the PPF translator.
        assert!(matches("^/A/B(/[^/]+)*/F$", "/A/B/F"));
        assert!(matches("^/A/B(/[^/]+)*/F$", "/A/B/C/E/F"));
        assert!(!matches("^/A/B(/[^/]+)*/F$", "/A/C/F"));
        assert!(!matches("^/A/B(/[^/]+)*/F$", "/A/B/Fx"));
        assert!(matches("^(/[^/]+)*/keyword$", "/site/regions/item/keyword"));
        assert!(matches("^/A/B/C/[^/]+/F$", "/A/B/C/D/F"));
        assert!(!matches("^/A/B/C/[^/]+/F$", "/A/B/C/D/E/F"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(matches("^a{2,3}$", "aa"));
        assert!(matches("^a{2,3}$", "aaa"));
        assert!(!matches("^a{2,3}$", "a"));
        assert!(!matches("^a{2,3}$", "aaaa"));
        assert!(matches("^(ab){2}$", "abab"));
        assert!(matches("^a{2,}$", "aaaaa"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(matches("", ""));
        assert!(matches("", "anything"));
        assert!(matches("^$", ""));
        assert!(!matches("^$", "x"));
    }

    #[test]
    fn anchors_inside_pattern() {
        assert!(matches("a$", "bca"));
        assert!(!matches("a$", "abc"));
        assert!(matches("^a", "abc"));
        assert!(!matches("^a", "bac"));
    }

    #[test]
    fn pathological_nesting_is_linear() {
        // (a*)*b against aaaa...a — catastrophic for backtrackers.
        let input = "a".repeat(4000);
        assert!(!matches("^(a*)*b$", &input));
    }

    #[test]
    fn huge_single_repetition_is_rejected() {
        let err = crate::Regex::new("a{1000000}").unwrap_err();
        assert!(err.to_string().contains("repetition bound"), "{err}");
    }

    #[test]
    fn nested_repetition_blowup_hits_program_budget() {
        // Each bound individually passes MAX_REPEAT_EXPANSION, but the
        // product would be 10⁶ instructions.
        let err = crate::Regex::new("(a{1000}){1000}").unwrap_err();
        assert!(err.to_string().contains("program budget"), "{err}");
        let err = crate::Regex::new("((a{100}){100}){100}").unwrap_err();
        assert!(err.to_string().contains("program budget"), "{err}");
        // A large-but-reasonable pattern still compiles.
        assert!(crate::Regex::new("(a{10}){10}").is_ok());
    }
}
