//! Abstract syntax tree for the POSIX Extended Regular Expression subset.
//!
//! The subset covers everything the PPF translator emits for root-to-node
//! path filtering (`REGEXP_LIKE` patterns such as `^/A/B(/[^/]+)*/F$`),
//! plus general ERE constructs so the engine is usable standalone:
//! literals, `.`, bracket classes with ranges and negation, anchors,
//! `*` `+` `?` and bounded `{m,n}` repetition, alternation and grouping.

/// A single inclusive byte range inside a bracket expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRange {
    pub lo: u8,
    pub hi: u8,
}

/// A bracket expression such as `[^/]` or `[a-z0-9_]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    pub negated: bool,
    pub ranges: Vec<ClassRange>,
}

impl CharClass {
    /// Whether this class matches the given byte.
    pub fn matches(&self, b: u8) -> bool {
        let inside = self.ranges.iter().any(|r| r.lo <= b && b <= r.hi);
        inside != self.negated
    }
}

/// ERE syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal byte.
    Literal(u8),
    /// `.` — any byte except newline (POSIX: any character).
    AnyChar,
    /// A bracket expression.
    Class(CharClass),
    /// `^`
    AnchorStart,
    /// `$`
    AnchorEnd,
    /// Concatenation of subexpressions.
    Concat(Vec<Ast>),
    /// Alternation (`|`) of subexpressions.
    Alternation(Vec<Ast>),
    /// Repetition: `*` is (0, None), `+` is (1, None), `?` is (0, Some(1)),
    /// `{m,n}` is (m, Some(n)), `{m,}` is (m, None).
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// A parenthesized group. Capture indices are tracked for completeness
    /// even though path filtering only needs boolean matching.
    Group(Box<Ast>),
}

impl Ast {
    /// True if the tree can match the empty string (ignoring anchors).
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => true,
            Ast::Literal(_) | Ast::AnyChar | Ast::Class(_) => false,
            Ast::Concat(xs) => xs.iter().all(Ast::is_nullable),
            Ast::Alternation(xs) => xs.iter().any(Ast::is_nullable),
            Ast::Repeat { node, min, .. } => *min == 0 || node.is_nullable(),
            Ast::Group(x) => x.is_nullable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_matches_and_negation() {
        let c = CharClass {
            negated: false,
            ranges: vec![ClassRange { lo: b'a', hi: b'z' }],
        };
        assert!(c.matches(b'm'));
        assert!(!c.matches(b'M'));
        let n = CharClass {
            negated: true,
            ranges: vec![ClassRange { lo: b'/', hi: b'/' }],
        };
        assert!(n.matches(b'a'));
        assert!(!n.matches(b'/'));
    }

    #[test]
    fn nullability() {
        assert!(Ast::Empty.is_nullable());
        assert!(!Ast::Literal(b'a').is_nullable());
        assert!(Ast::Repeat {
            node: Box::new(Ast::Literal(b'a')),
            min: 0,
            max: None
        }
        .is_nullable());
        assert!(!Ast::Concat(vec![Ast::Literal(b'a'), Ast::Empty]).is_nullable());
    }
}
