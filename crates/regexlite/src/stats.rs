//! Always-on regex execution counters.
//!
//! Path filters run once per candidate row inside the SQL executor, so
//! "how much regex work did this query do" is a first-class observability
//! question. The matchers accumulate counters in locals during a match and
//! flush them here once per [`crate::Regex::is_match`] call — a handful of
//! relaxed atomic operations per match, cheap enough to keep compiled in
//! unconditionally.
//!
//! Two execution engines report here: the lazy DFA (`dfa_*` counters) and
//! the Pike VM (`vm_steps` / `max_threads`). `match_calls` counts every
//! completed `is_match` regardless of which engine answered, so
//! `vm_steps / match_calls` dropping toward zero is the direct signature
//! of the DFA taking over the hot path.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static MATCH_CALLS: AtomicU64 = AtomicU64::new(0);
static VM_STEPS: AtomicU64 = AtomicU64::new(0);
static MAX_THREADS: AtomicU64 = AtomicU64::new(0);
static COMPILES: AtomicU64 = AtomicU64::new(0);
static DFA_MATCHES: AtomicU64 = AtomicU64::new(0);
static DFA_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static DFA_TRANS_HITS: AtomicU64 = AtomicU64::new(0);
static DFA_TRANS_MISSES: AtomicU64 = AtomicU64::new(0);
static DFA_STATES: AtomicU64 = AtomicU64::new(0);
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide regex counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Completed `is_match` executions (DFA- or Pike-answered).
    pub match_calls: u64,
    /// Pike-VM thread dispatches: one per live NFA thread per consumed
    /// input byte — `O(pattern × input)` total. Zero when the DFA handled
    /// the match.
    pub vm_steps: u64,
    /// High-water mark of simultaneously live Pike-VM threads in any
    /// single match (bounded by the compiled program's instruction count).
    pub max_threads: u64,
    /// Successful [`crate::Regex::new`] compilations (parse + NFA build).
    pub compiles: u64,
    /// Matches answered by the lazy DFA (one table lookup per byte).
    pub dfa_matches: u64,
    /// Matches that exhausted the DFA state budget and re-ran on the
    /// Pike VM.
    pub dfa_fallbacks: u64,
    /// DFA transitions served from the memo table.
    pub dfa_trans_hits: u64,
    /// DFA transitions computed for the first time (NFA closure work).
    pub dfa_trans_misses: u64,
    /// Total DFA states constructed across all live regexes.
    pub dfa_states: u64,
    /// Shared matcher locks (VM pool, lazy DFA) recovered after a panic
    /// poisoned them; the DFA is rebuilt on recovery.
    pub poison_recoveries: u64,
}

/// Flush one Pike-VM match's locally-accumulated counters.
pub(crate) fn record(steps: u64, threads: u64) {
    MATCH_CALLS.fetch_add(1, Relaxed);
    VM_STEPS.fetch_add(steps, Relaxed);
    MAX_THREADS.fetch_max(threads, Relaxed);
}

/// Record one successful pattern compilation.
pub(crate) fn record_compile() {
    COMPILES.fetch_add(1, Relaxed);
}

/// Record a match fully answered by the lazy DFA. Counts toward
/// `match_calls` so the caller sees one call per `is_match` regardless of
/// engine.
pub(crate) fn record_dfa_match() {
    MATCH_CALLS.fetch_add(1, Relaxed);
    DFA_MATCHES.fetch_add(1, Relaxed);
}

/// Record a DFA state-budget exhaustion (the match re-runs on the Pike
/// VM, which adds its own `match_calls` increment).
pub(crate) fn record_dfa_fallback() {
    DFA_FALLBACKS.fetch_add(1, Relaxed);
}

/// Flush one DFA run's transition-cache counters.
pub(crate) fn record_dfa_transitions(hits: u64, misses: u64) {
    DFA_TRANS_HITS.fetch_add(hits, Relaxed);
    DFA_TRANS_MISSES.fetch_add(misses, Relaxed);
}

/// Record construction of one new DFA state.
pub(crate) fn record_dfa_state() {
    DFA_STATES.fetch_add(1, Relaxed);
}

/// Record recovery of a poisoned matcher lock.
pub(crate) fn record_poison_recovery() {
    POISON_RECOVERIES.fetch_add(1, Relaxed);
}

/// Matcher locks recovered from poisoning since process start.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Relaxed)
}

/// Read the current counter values.
pub fn snapshot() -> VmStats {
    VmStats {
        match_calls: MATCH_CALLS.load(Relaxed),
        vm_steps: VM_STEPS.load(Relaxed),
        max_threads: MAX_THREADS.load(Relaxed),
        compiles: COMPILES.load(Relaxed),
        dfa_matches: DFA_MATCHES.load(Relaxed),
        dfa_fallbacks: DFA_FALLBACKS.load(Relaxed),
        dfa_trans_hits: DFA_TRANS_HITS.load(Relaxed),
        dfa_trans_misses: DFA_TRANS_MISSES.load(Relaxed),
        dfa_states: DFA_STATES.load(Relaxed),
        poison_recoveries: POISON_RECOVERIES.load(Relaxed),
    }
}

/// Zero all counters (tests and per-run measurement windows).
pub fn reset() {
    MATCH_CALLS.store(0, Relaxed);
    VM_STEPS.store(0, Relaxed);
    MAX_THREADS.store(0, Relaxed);
    COMPILES.store(0, Relaxed);
    DFA_MATCHES.store(0, Relaxed);
    DFA_FALLBACKS.store(0, Relaxed);
    DFA_TRANS_HITS.store(0, Relaxed);
    DFA_TRANS_MISSES.store(0, Relaxed);
    DFA_STATES.store(0, Relaxed);
    POISON_RECOVERIES.store(0, Relaxed);
}

impl VmStats {
    /// Counter-wise difference against an earlier snapshot, for
    /// attributing regex work to one measurement window. `max_threads` is
    /// a high-water mark, not a sum, so the later value is kept as-is.
    pub fn since(&self, earlier: &VmStats) -> VmStats {
        VmStats {
            match_calls: self.match_calls.saturating_sub(earlier.match_calls),
            vm_steps: self.vm_steps.saturating_sub(earlier.vm_steps),
            max_threads: self.max_threads,
            compiles: self.compiles.saturating_sub(earlier.compiles),
            dfa_matches: self.dfa_matches.saturating_sub(earlier.dfa_matches),
            dfa_fallbacks: self.dfa_fallbacks.saturating_sub(earlier.dfa_fallbacks),
            dfa_trans_hits: self.dfa_trans_hits.saturating_sub(earlier.dfa_trans_hits),
            dfa_trans_misses: self
                .dfa_trans_misses
                .saturating_sub(earlier.dfa_trans_misses),
            dfa_states: self.dfa_states.saturating_sub(earlier.dfa_states),
            poison_recoveries: self
                .poison_recoveries
                .saturating_sub(earlier.poison_recoveries),
        }
    }
}
