//! Always-on Pike-VM execution counters.
//!
//! Path filters run once per candidate row inside the SQL executor, so
//! "how much regex work did this query do" is a first-class observability
//! question. The VM accumulates counters in locals during a match and
//! flushes them here exactly once per [`crate::Regex::is_match`] call —
//! three relaxed atomic operations per match, cheap enough to keep
//! compiled in unconditionally.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static MATCH_CALLS: AtomicU64 = AtomicU64::new(0);
static VM_STEPS: AtomicU64 = AtomicU64::new(0);
static MAX_THREADS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide VM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Completed `is_match` executions.
    pub match_calls: u64,
    /// Thread dispatches: one per live NFA thread per consumed input byte.
    /// This is the Pike VM's unit of work — `O(pattern × input)` total.
    pub vm_steps: u64,
    /// High-water mark of simultaneously live threads in any single match
    /// (bounded by the compiled program's instruction count).
    pub max_threads: u64,
}

/// Flush one match's locally-accumulated counters.
pub(crate) fn record(steps: u64, threads: u64) {
    MATCH_CALLS.fetch_add(1, Relaxed);
    VM_STEPS.fetch_add(steps, Relaxed);
    MAX_THREADS.fetch_max(threads, Relaxed);
}

/// Read the current counter values.
pub fn snapshot() -> VmStats {
    VmStats {
        match_calls: MATCH_CALLS.load(Relaxed),
        vm_steps: VM_STEPS.load(Relaxed),
        max_threads: MAX_THREADS.load(Relaxed),
    }
}

/// Zero all counters (tests and per-run measurement windows).
pub fn reset() {
    MATCH_CALLS.store(0, Relaxed);
    VM_STEPS.store(0, Relaxed);
    MAX_THREADS.store(0, Relaxed);
}

impl VmStats {
    /// Counter-wise difference against an earlier snapshot, for
    /// attributing VM work to one measurement window. `max_threads` is a
    /// high-water mark, not a sum, so the later value is kept as-is.
    pub fn since(&self, earlier: &VmStats) -> VmStats {
        VmStats {
            match_calls: self.match_calls.saturating_sub(earlier.match_calls),
            vm_steps: self.vm_steps.saturating_sub(earlier.vm_steps),
            max_threads: self.max_threads,
        }
    }
}
