//! `regexlite` — a small POSIX Extended Regular Expression engine.
//!
//! This crate stands in for the `REGEXP_LIKE` function of a commercial
//! RDBMS (the paper uses Oracle 10g's, which follows POSIX ERE syntax and
//! semantics). The PPF translator compiles XPath path fragments into ERE
//! patterns such as `^/A/B(/[^/]+)*/F$` and the SQL executor evaluates them
//! against root-to-node path strings.
//!
//! Matching runs on a lazy DFA determinized on demand from a Thompson
//! NFA — `O(bytes)` per match once the touched states are built — with a
//! transparent fallback to a Pike VM (worst case `O(pattern × input)`,
//! no catastrophic backtracking) when a pathological pattern exhausts the
//! DFA state budget. [`set_dfa_enabled`] disables the DFA globally for
//! baseline measurement.
//!
//! # Example
//! ```
//! use regexlite::Regex;
//! let re = Regex::new("^/site(/[^/]+)*/keyword$").unwrap();
//! assert!(re.is_match("/site/regions/africa/item/description/keyword"));
//! assert!(!re.is_match("/site/keywordx"));
//! ```

pub mod ast;
pub mod dfa;
pub mod nfa;
pub mod parser;
pub mod stats;

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Process-wide DFA kill switch, for measuring the Pike-VM baseline.
static DFA_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable lazy-DFA execution process-wide. Disabled, every
/// match runs on the Pike VM (the pre-DFA behaviour). Intended for
/// benchmarks and tests; defaults to enabled.
pub fn set_dfa_enabled(enabled: bool) {
    DFA_ENABLED.store(enabled, Relaxed);
}

/// Whether lazy-DFA execution is currently enabled.
pub fn dfa_enabled() -> bool {
    DFA_ENABLED.load(Relaxed)
}

pub use ast::Ast;
pub use parser::ParseError;
pub use stats::VmStats;

/// Errors from [`Regex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Syntax error in the pattern.
    Parse(parser::ParseError),
    /// Pattern compiled to an unreasonably large program.
    Compile(nfa::CompileError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => e.fmt(f),
            Error::Compile(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

/// A compiled regular expression.
///
/// Reusable across many inputs; the per-match scratch space is pooled
/// internally so repeated [`Regex::is_match`] calls do not allocate.
///
/// `Regex` is `Send + Sync`: the SQL executor shares one compiled filter
/// (behind an `Arc`) across every worker of a partitioned scan. The hot
/// path takes the DFA's read lock and walks already-built states; only a
/// walk that reaches an unbuilt transition upgrades to the write lock to
/// extend the machine, so a warm DFA serves all threads concurrently.
#[derive(Debug)]
pub struct Regex {
    pattern: String,
    program: nfa::Program,
    /// Pike-VM scratch pool: each concurrent fallback match pops one
    /// (or allocates), then returns it.
    vm: Mutex<Vec<nfa::Vm>>,
    dfa: RwLock<dfa::LazyDfa>,
}

impl Regex {
    /// Compile a POSIX ERE pattern.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        Regex::with_dfa_budget(pattern, dfa::DEFAULT_STATE_BUDGET)
    }

    /// Compile with an explicit lazy-DFA state budget. Matches that would
    /// determinize past `budget` states fall back to the Pike VM; tests
    /// use tiny budgets to exercise that path.
    pub fn with_dfa_budget(pattern: &str, budget: usize) -> Result<Regex, Error> {
        let ast = parser::parse(pattern).map_err(Error::Parse)?;
        let program = nfa::compile(&ast).map_err(Error::Compile)?;
        stats::record_compile();
        let dfa = dfa::LazyDfa::with_budget(&program, budget);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
            vm: Mutex::new(Vec::new()),
            dfa: RwLock::new(dfa),
        })
    }

    /// The original pattern string.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Whether the pattern matches anywhere in `input` (unanchored search).
    pub fn is_match(&self, input: &str) -> bool {
        self.is_match_bytes(input.as_bytes())
    }

    /// Byte-level matching (root-to-node paths are ASCII, but any UTF-8
    /// passes through since class matching is per byte).
    pub fn is_match_bytes(&self, input: &[u8]) -> bool {
        if dfa_enabled() {
            // Fast path: walk already-built states under the shared lock.
            let frozen = self.dfa_read().try_match_frozen(&self.program, input);
            match frozen {
                Some(matched) => {
                    stats::record_dfa_match();
                    return matched;
                }
                // The walk needs a state or transition that doesn't exist
                // yet — take the exclusive lock and build as we go.
                None => match self.dfa_write().try_match(&self.program, input) {
                    Some(matched) => {
                        stats::record_dfa_match();
                        return matched;
                    }
                    None => stats::record_dfa_fallback(),
                },
            }
        }
        let mut vm = self.vm_pool().pop().unwrap_or_default();
        let matched = vm.is_match(&self.program, input);
        self.vm_pool().push(vm);
        matched
    }

    /// Lock the Pike-VM scratch pool, recovering from poisoning. The pool
    /// is a plain `Vec` of self-contained scratch buffers — valid at every
    /// instruction boundary — so a panic elsewhere while the lock was held
    /// cannot have left it inconsistent.
    fn vm_pool(&self) -> MutexGuard<'_, Vec<nfa::Vm>> {
        self.vm.lock().unwrap_or_else(|poisoned| {
            self.vm.clear_poison();
            stats::record_poison_recovery();
            poisoned.into_inner()
        })
    }

    /// Acquire the DFA read lock, rebuilding the machine first if a panic
    /// poisoned it (a panic mid-determinization can leave half-built
    /// states, so unlike the VM pool the state is *not* trustworthy).
    fn dfa_read(&self) -> RwLockReadGuard<'_, dfa::LazyDfa> {
        if self.dfa.is_poisoned() {
            self.recover_dfa();
        }
        self.dfa.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire the DFA write lock, rebuilding after poisoning (see
    /// [`Regex::dfa_read`]).
    fn dfa_write(&self) -> RwLockWriteGuard<'_, dfa::LazyDfa> {
        if self.dfa.is_poisoned() {
            self.recover_dfa();
        }
        self.dfa.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Replace a poisoned lazy DFA with a fresh one (same budget) and
    /// clear the poison flag. Racing recoverers are harmless: the second
    /// sees the flag already cleared and swaps in another empty machine at
    /// worst (the DFA is a cache; it re-determinizes on demand).
    fn recover_dfa(&self) {
        let mut guard = self.dfa.write().unwrap_or_else(|p| p.into_inner());
        if self.dfa.is_poisoned() {
            *guard = dfa::LazyDfa::with_budget(&self.program, guard.budget());
            self.dfa.clear_poison();
            stats::record_poison_recovery();
        }
    }
}

impl Clone for Regex {
    fn clone(&self) -> Self {
        Regex {
            pattern: self.pattern.clone(),
            program: self.program.clone(),
            vm: Mutex::new(Vec::new()),
            dfa: RwLock::new(dfa::LazyDfa::with_budget(
                &self.program,
                self.dfa_read().budget(),
            )),
        }
    }
}

/// Escape a literal string so it matches itself inside an ERE.
///
/// Used when turning XPath name tests into path-filter patterns, in case an
/// element name contains regex metacharacters (legal in XML names: `.` `-`).
pub fn escape(literal: &str) -> String {
    let mut out = String::with_capacity(literal.len());
    for ch in literal.chars() {
        if matches!(
            ch,
            '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$' | '\\'
        ) {
            out.push('\\');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_metachars() {
        assert_eq!(escape("a.b"), "a\\.b");
        assert_eq!(escape("x"), "x");
        let re = Regex::new(&format!("^{}$", escape("a.b+c"))).unwrap();
        assert!(re.is_match("a.b+c"));
        assert!(!re.is_match("axbbc"));
    }

    #[test]
    fn regex_is_reusable() {
        let re = Regex::new("^/a(/b)*$").unwrap();
        for _ in 0..3 {
            assert!(re.is_match("/a/b/b"));
            assert!(!re.is_match("/a/c"));
        }
    }

    #[test]
    fn clone_preserves_behaviour() {
        let re = Regex::new("ab|cd").unwrap();
        let re2 = re.clone();
        assert_eq!(re.is_match("abx"), re2.is_match("abx"));
        assert_eq!(re.is_match("xcd"), re2.is_match("xcd"));
        assert_eq!(re.is_match("zz"), re2.is_match("zz"));
    }

    #[test]
    fn vm_counters_accumulate() {
        // Counters are process-wide and other tests run concurrently, so
        // only assert on the delta's lower bounds.
        let before = stats::snapshot();
        let re = Regex::new("^/a(/[^/]+)*/b$").unwrap();
        assert!(re.is_match("/a/x/y/b"));
        assert!(!re.is_match("/a/x"));
        let d = stats::snapshot().since(&before);
        assert!(d.match_calls >= 2, "{d:?}");
        assert!(d.compiles >= 1, "{d:?}");
        // Work lands on whichever engine answered: DFA transitions when
        // the lazy DFA is on, Pike-VM steps otherwise.
        assert!(
            d.vm_steps + d.dfa_trans_hits + d.dfa_trans_misses > 0,
            "{d:?}"
        );
    }

    #[test]
    fn dfa_fallback_still_answers_correctly() {
        let re = Regex::with_dfa_budget("^/a(/[^/]+)*/b$", 1).unwrap();
        let before = stats::snapshot();
        assert!(re.is_match("/a/x/b"));
        assert!(!re.is_match("/a/x"));
        let d = stats::snapshot().since(&before);
        assert!(d.dfa_fallbacks >= 2, "{d:?}");
        assert!(d.vm_steps > 0, "{d:?}");
    }

    #[test]
    fn error_display() {
        let err = Regex::new("(a").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn regex_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Regex>();
    }

    #[test]
    fn concurrent_matching_agrees_with_serial() {
        let re = std::sync::Arc::new(Regex::new("^/site(/[^/]+)*/keyword$").unwrap());
        let inputs: Vec<String> = (0..400)
            .map(|i| {
                if i % 3 == 0 {
                    format!("/site/regions/r{i}/item/keyword")
                } else {
                    format!("/site/regions/r{i}/item/name")
                }
            })
            .collect();
        let serial: Vec<bool> = inputs.iter().map(|s| re.is_match(s)).collect();
        let inputs = std::sync::Arc::new(inputs);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let re = re.clone();
                let inputs = inputs.clone();
                std::thread::spawn(move || {
                    inputs.iter().map(|s| re.is_match(s)).collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), serial);
        }
    }

    #[test]
    fn poisoned_dfa_lock_recovers_and_matching_still_works() {
        let re = std::sync::Arc::new(Regex::new("^/a(/[^/]+)*/b$").unwrap());
        assert!(re.is_match("/a/x/b"));
        // Poison the DFA write lock by panicking while holding it.
        {
            let re = re.clone();
            let _ = std::thread::spawn(move || {
                let _guard = re.dfa.write().unwrap();
                panic!("poison the dfa lock");
            })
            .join();
        }
        assert!(re.dfa.is_poisoned());
        let before = stats::poison_recoveries();
        // Matching recovers: the DFA is rebuilt and answers stay correct.
        assert!(re.is_match("/a/x/y/b"));
        assert!(!re.is_match("/a/x"));
        assert!(!re.dfa.is_poisoned());
        assert!(stats::poison_recoveries() > before);
    }

    #[test]
    fn poisoned_vm_pool_recovers() {
        let re = std::sync::Arc::new(Regex::with_dfa_budget("^/a(/[^/]+)*/b$", 1).unwrap());
        {
            let re = re.clone();
            let _ = std::thread::spawn(move || {
                let _guard = re.vm.lock().unwrap();
                panic!("poison the vm pool");
            })
            .join();
        }
        // Budget 1 forces the Pike-VM path, which needs the pool lock.
        assert!(re.is_match("/a/x/b"));
        assert!(!re.is_match("/a/x"));
    }

    #[test]
    fn concurrent_matching_on_cold_dfa_with_tiny_budget() {
        // Every thread races to build states and some matches exhaust the
        // budget and fall back to the pooled Pike VMs; answers must still
        // all be correct.
        let re = std::sync::Arc::new(Regex::with_dfa_budget("^/a(/[^/]+)*/b$", 4).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let re = re.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        assert!(re.is_match(&format!("/a/x{i}/b")));
                        assert!(!re.is_match(&format!("/a/x{i}")));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
