//! Recursive-descent parser for the POSIX ERE subset.
//!
//! Grammar (standard ERE precedence):
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//! atom        := '(' alternation ')' | '[' class ']' | '.' | '^' | '$'
//!              | '\' escaped | literal
//! ```

use crate::ast::{Ast, CharClass, ClassRange};

/// Parse error with byte offset into the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum group-nesting depth. The parser (and the Thompson compiler
/// after it) recurse once per `(`, so unbounded nesting in a hostile
/// pattern would overflow the stack — a crash no `catch_unwind` can turn
/// into an error. Bounding it keeps parsing panic-free by construction.
const MAX_NEST_DEPTH: usize = 200;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Parse an ERE pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.input.len() {
        return Err(p.err("unexpected trailing input (unbalanced ')'?)"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return Err(self.err("pattern nested too deeply"));
        }
        let result = self.alternation_inner();
        self.depth -= 1;
        result
    }

    fn alternation_inner(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternation(branches))
        }
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                _ => parts.push(self.repeat()?),
            }
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.atom()?;
        loop {
            let (min, max) = match self.peek() {
                Some(b'*') => (0, None),
                Some(b'+') => (1, None),
                Some(b'?') => (0, Some(1)),
                Some(b'{') => {
                    // Only treat '{' as a bound if it parses as one; POSIX
                    // says a lone '{' is undefined — we take it literally,
                    // which is what practical engines (and Oracle) do.
                    if let Some((m, n, consumed)) = self.try_parse_bound() {
                        self.pos += consumed;
                        self.validate_repeat_target(&node)?;
                        if let Some(nn) = n {
                            if nn < m {
                                return Err(self.err("repetition bound {m,n} with n < m"));
                            }
                        }
                        node = Ast::Repeat {
                            node: Box::new(node),
                            min: m,
                            max: n,
                        };
                        continue;
                    }
                    break;
                }
                _ => break,
            };
            self.bump();
            self.validate_repeat_target(&node)?;
            node = Ast::Repeat {
                node: Box::new(node),
                min,
                max,
            };
        }
        Ok(node)
    }

    /// Repetition of an anchor (`^*`) is rejected, as in POSIX EREs it is
    /// undefined and typically an authoring bug.
    fn validate_repeat_target(&self, node: &Ast) -> Result<(), ParseError> {
        match node {
            Ast::AnchorStart | Ast::AnchorEnd => Err(ParseError {
                pos: self.pos,
                message: "cannot repeat an anchor".to_string(),
            }),
            _ => Ok(()),
        }
    }

    /// Attempt to parse `{m}`, `{m,}` or `{m,n}` starting at the current
    /// position (which must point at '{'). Returns (min, max, bytes consumed)
    /// without advancing on failure.
    fn try_parse_bound(&self) -> Option<(u32, Option<u32>, usize)> {
        let rest = &self.input[self.pos..];
        debug_assert_eq!(rest.first(), Some(&b'{'));
        let mut i = 1;
        let mut m: u32 = 0;
        let mut saw_digit = false;
        while i < rest.len() && rest[i].is_ascii_digit() {
            m = m.checked_mul(10)?.checked_add((rest[i] - b'0') as u32)?;
            saw_digit = true;
            i += 1;
        }
        if !saw_digit {
            return None;
        }
        match rest.get(i) {
            Some(b'}') => Some((m, Some(m), i + 1)),
            Some(b',') => {
                i += 1;
                let mut n: u32 = 0;
                let mut saw = false;
                while i < rest.len() && rest[i].is_ascii_digit() {
                    n = n.checked_mul(10)?.checked_add((rest[i] - b'0') as u32)?;
                    saw = true;
                    i += 1;
                }
                if rest.get(i) == Some(&b'}') {
                    Some((m, if saw { Some(n) } else { None }, i + 1))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some(b'[') => self.class(),
            Some(b'.') => Ok(Ast::AnyChar),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'\\') => {
                let b = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
                Ok(Ast::Literal(escape_value(b)))
            }
            Some(b'*') | Some(b'+') | Some(b'?') => {
                Err(self.err("repetition operator with nothing to repeat"))
            }
            Some(b) => Ok(Ast::Literal(b)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        let mut negated = false;
        if self.peek() == Some(b'^') {
            negated = true;
            self.bump();
        }
        let mut ranges: Vec<ClassRange> = Vec::new();
        // POSIX: a ']' immediately after '[' or '[^' is a literal.
        if self.peek() == Some(b']') {
            self.bump();
            ranges.push(ClassRange { lo: b']', hi: b']' });
        }
        loop {
            let b = match self.bump() {
                Some(b']') => break,
                Some(b'\\') => {
                    // Not strict POSIX (which has no class escapes) but
                    // universally supported and convenient.
                    let e = self
                        .bump()
                        .ok_or_else(|| self.err("dangling backslash in class"))?;
                    escape_value(e)
                }
                Some(b) => b,
                None => return Err(self.err("unterminated bracket expression")),
            };
            // Range like `a-z`, but `-` before `]` is a literal.
            if self.peek() == Some(b'-')
                && self.input.get(self.pos + 1).copied() != Some(b']')
                && self.input.get(self.pos + 1).is_some()
            {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some(b'\\') => {
                        let e = self
                            .bump()
                            .ok_or_else(|| self.err("dangling backslash in class"))?;
                        escape_value(e)
                    }
                    Some(hi) => hi,
                    None => return Err(self.err("unterminated range in class")),
                };
                if hi < b {
                    return Err(self.err("invalid range in bracket expression"));
                }
                ranges.push(ClassRange { lo: b, hi });
            } else {
                ranges.push(ClassRange { lo: b, hi: b });
            }
        }
        if ranges.is_empty() {
            return Err(self.err("empty bracket expression"));
        }
        Ok(Ast::Class(CharClass { negated, ranges }))
    }
}

/// The byte a `\x` escape denotes. Standard C-style escapes map to control
/// characters; everything else (e.g. `\.`, `\$`, `\\`) maps to itself.
fn escape_value(b: u8) -> u8 {
    match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_path_pattern() {
        let ast = parse("^/A/B$").expect("parse");
        match ast {
            Ast::Concat(parts) => {
                assert_eq!(parts.first(), Some(&Ast::AnchorStart));
                assert_eq!(parts.last(), Some(&Ast::AnchorEnd));
                assert_eq!(parts.len(), 6);
            }
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn parses_alternation_precedence() {
        // `ab|cd` is (ab)|(cd), not a(b|c)d.
        let ast = parse("ab|cd").expect("parse");
        match ast {
            Ast::Alternation(branches) => assert_eq!(branches.len(), 2),
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn parses_negated_class() {
        let ast = parse("[^/]+").expect("parse");
        match ast {
            Ast::Repeat {
                node,
                min: 1,
                max: None,
            } => match *node {
                Ast::Class(c) => assert!(c.negated),
                other => panic!("unexpected inner: {other:?}"),
            },
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn parses_bounds() {
        assert!(matches!(
            parse("a{2,4}").expect("parse"),
            Ast::Repeat {
                min: 2,
                max: Some(4),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3}").expect("parse"),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3,}").expect("parse"),
            Ast::Repeat {
                min: 3,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn literal_brace_when_not_a_bound() {
        // `{x}` is not a valid bound, so it is three literals.
        let ast = parse("a{x}").expect("parse");
        match ast {
            Ast::Concat(parts) => assert_eq!(parts.len(), 4),
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn class_leading_bracket_literal() {
        let ast = parse("[]a]").expect("parse");
        match ast {
            Ast::Class(c) => {
                assert!(c.matches(b']'));
                assert!(c.matches(b'a'));
                assert!(!c.matches(b'b'));
            }
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_patterns() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("a{4,2}").is_err());
        assert!(parse("^*").is_err());
        assert!(parse("\\").is_err());
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let deep = "(".repeat(100_000) + "a" + &")".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nested too deeply"), "{err}");
        // Depth just under the limit still parses.
        let ok = "(".repeat(150) + "a" + &")".repeat(150);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escaped_metacharacters_are_literals() {
        let ast = parse(r"\.\*").expect("parse");
        assert_eq!(
            ast,
            Ast::Concat(vec![Ast::Literal(b'.'), Ast::Literal(b'*')])
        );
    }

    #[test]
    fn dash_at_class_end_is_literal() {
        let ast = parse("[a-]").expect("parse");
        match ast {
            Ast::Class(c) => {
                assert!(c.matches(b'a'));
                assert!(c.matches(b'-'));
                assert!(!c.matches(b'b'));
            }
            other => panic!("unexpected ast: {other:?}"),
        }
    }
}
