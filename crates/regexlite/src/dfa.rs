//! Lazy DFA execution over the compiled NFA.
//!
//! The Pike VM costs `O(bytes × live threads)` per match: every byte of
//! every candidate path string is dispatched against up to `|program|`
//! NFA threads. Path filtering runs the *same few patterns* over *many
//! short strings*, which is the textbook case for a lazy
//! (on-the-fly-determinized) DFA: each distinct NFA thread set the Pike VM
//! would ever hold becomes one DFA state, built at most once, and matching
//! then costs one table lookup per byte — `O(bytes)` regardless of pattern
//! complexity.
//!
//! Design notes:
//!
//! * **Byte equivalence classes.** Transition tables are indexed by a
//!   class id, not the raw byte: two bytes that no character class in the
//!   program distinguishes share a column. Path-filter alphabets collapse
//!   from 256 bytes to a handful of classes (`/`, "everything else", and
//!   the few literal letters), keeping states tiny.
//! * **Anchors.** `^`/`$` make the ε-closure position-dependent, so each
//!   DFA state carries two accept flags: `accept` (a match ends at the
//!   current position, no end-of-input required) and `accept_at_end` (a
//!   match completes only if the current position is end-of-input).
//!   Byte instructions reachable only *through* `$` are unreachable —
//!   nothing can be consumed at end-of-input — and are excluded from the
//!   state's thread set.
//! * **Unanchored search.** The Pike VM re-seeds the start state at every
//!   input position; the DFA bakes that in by unioning the start closure
//!   into every transition target (the implicit `.*?` prefix), so one
//!   left-to-right scan still finds matches starting anywhere.
//! * **Bounded state budget.** Determinization is worst-case exponential,
//!   so state construction stops at [`LazyDfa::budget`] states; a match
//!   that would need more falls back — transparently, mid-match work is
//!   discarded — to the Pike VM. Counters for cache hits, misses, and
//!   fallbacks flow through [`crate::stats`].

use std::collections::HashMap;

use crate::nfa::{Inst, Program};

/// Default cap on constructed DFA states per regex. PPF path filters
/// determinize to well under fifty states; the cap only guards
/// adversarial hand-written patterns.
pub const DEFAULT_STATE_BUDGET: usize = 512;

/// "Transition not yet computed" sentinel in the per-state tables.
const UNSET: u32 = u32::MAX;

/// Canonical identity of a DFA state: the sorted set of byte-consuming
/// NFA instructions plus the two accept flags (the flags are *not*
/// derivable from the set alone — two different ε-closures can reach the
/// same byte instructions but differ on whether `Match` was crossed).
type StateKey = (Vec<usize>, bool, bool);

#[derive(Debug)]
struct State {
    /// Sorted byte-consuming NFA instruction pointers.
    set: Vec<usize>,
    /// A match ends at the current position (no end-of-input needed).
    accept: bool,
    /// A match completes if the current position is end-of-input.
    accept_at_end: bool,
    /// Per byte-class next state (`UNSET` until computed).
    trans: Vec<u32>,
}

/// A lazily-constructed DFA over one compiled [`Program`].
///
/// Owns only the memoized state machinery; the program is passed into
/// [`LazyDfa::try_match`] so one `LazyDfa` pairs with exactly one program
/// (the [`crate::Regex`] that owns both enforces this).
#[derive(Debug)]
pub struct LazyDfa {
    /// Byte → equivalence-class id.
    classes: Box<[u8; 256]>,
    /// One representative byte per class, for computing transitions.
    representatives: Vec<u8>,
    states: Vec<State>,
    cache: HashMap<StateKey, u32>,
    /// State id for position 0 (`^` passes), built on first use.
    start: Option<u32>,
    budget: usize,
}

impl LazyDfa {
    /// Create an empty DFA for `prog` with the default state budget.
    pub fn new(prog: &Program) -> LazyDfa {
        LazyDfa::with_budget(prog, DEFAULT_STATE_BUDGET)
    }

    /// Create an empty DFA with an explicit state budget (tests use tiny
    /// budgets to exercise the Pike-VM fallback path).
    pub fn with_budget(prog: &Program, budget: usize) -> LazyDfa {
        let (classes, representatives) = byte_classes(prog);
        LazyDfa {
            classes,
            representatives,
            states: Vec::new(),
            cache: HashMap::new(),
            start: None,
            budget: budget.max(1),
        }
    }

    /// Number of DFA states constructed so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The configured state budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Whether the pattern matches anywhere in `input` (same semantics as
    /// [`crate::nfa::Vm::is_match`]). Returns `None` when the state
    /// budget was exhausted — the caller should fall back to the Pike VM.
    pub fn try_match(&mut self, prog: &Program, input: &[u8]) -> Option<bool> {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let result = self.run(prog, input, &mut hits, &mut misses);
        crate::stats::record_dfa_transitions(hits, misses);
        result
    }

    /// Read-only matching over the already-built states: never constructs
    /// a state or fills a transition, so many threads can run it under a
    /// shared (read) lock. Returns `None` when the walk reaches a
    /// transition that has not been computed yet — the caller escalates to
    /// an exclusive lock and re-runs with [`LazyDfa::try_match`].
    pub fn try_match_frozen(&self, prog: &Program, input: &[u8]) -> Option<bool> {
        let mut hits = 0u64;
        let result = self.run_frozen(prog, input, &mut hits);
        crate::stats::record_dfa_transitions(hits, 0);
        result
    }

    fn run_frozen(&self, prog: &Program, input: &[u8], hits: &mut u64) -> Option<bool> {
        let mut cur = self.start?;
        if self.states[cur as usize].accept {
            return Some(true);
        }
        for (at, &b) in input.iter().enumerate() {
            let class = self.classes[b as usize] as usize;
            let next = self.states[cur as usize].trans[class];
            if next == UNSET {
                return None;
            }
            *hits += 1;
            cur = next;
            let s = &self.states[cur as usize];
            if s.accept {
                return Some(true);
            }
            if s.set.is_empty() && prog.anchored_start && at + 1 < input.len() {
                return Some(false);
            }
        }
        Some(self.states[cur as usize].accept_at_end)
    }

    fn run(
        &mut self,
        prog: &Program,
        input: &[u8],
        hits: &mut u64,
        misses: &mut u64,
    ) -> Option<bool> {
        let mut cur = match self.start {
            Some(s) => s,
            None => {
                let s = self.intern_closure(prog, &[prog.start], true)?;
                self.start = Some(s);
                s
            }
        };
        if self.states[cur as usize].accept {
            return Some(true);
        }
        for (at, &b) in input.iter().enumerate() {
            let class = self.classes[b as usize] as usize;
            let next = match self.states[cur as usize].trans[class] {
                UNSET => {
                    *misses += 1;
                    let n = self.compute_transition(prog, cur, class)?;
                    self.states[cur as usize].trans[class] = n;
                    n
                }
                t => {
                    *hits += 1;
                    t
                }
            };
            cur = next;
            let s = &self.states[cur as usize];
            if s.accept {
                return Some(true);
            }
            // Anchored dead state: no live threads and no way to re-seed,
            // so unless this was the final byte (where `accept_at_end`
            // may still fire below) the match has failed.
            if s.set.is_empty() && prog.anchored_start && at + 1 < input.len() {
                return Some(false);
            }
        }
        Some(self.states[cur as usize].accept_at_end)
    }

    /// Successor of `state` on `class`: advance every live byte
    /// instruction that matches the class's representative byte, re-seed
    /// the start state for unanchored search, and close over ε-edges.
    fn compute_transition(&mut self, prog: &Program, state: u32, class: usize) -> Option<u32> {
        let rep = self.representatives[class];
        let mut targets: Vec<usize> = Vec::new();
        for &ip in &self.states[state as usize].set {
            match &prog.insts[ip] {
                Inst::Byte { class: c, next } if c.matches(rep) => targets.push(*next),
                Inst::Any { next } => targets.push(*next),
                _ => {}
            }
        }
        if !prog.anchored_start {
            targets.push(prog.start);
        }
        self.intern_closure(prog, &targets, false)
    }

    /// ε-close `seeds` (at a non-start position unless `at_start`) and
    /// return the id of the canonical state, constructing it if new.
    /// `None` when constructing it would exceed the budget.
    fn intern_closure(&mut self, prog: &Program, seeds: &[usize], at_start: bool) -> Option<u32> {
        let (set, accept, accept_at_end) = closure(prog, seeds, at_start);
        let key = (set, accept, accept_at_end);
        if let Some(&id) = self.cache.get(&key) {
            return Some(id);
        }
        if self.states.len() >= self.budget {
            return None;
        }
        let id = self.states.len() as u32;
        let (set, accept, accept_at_end) = key.clone();
        self.states.push(State {
            set,
            accept,
            accept_at_end,
            trans: vec![UNSET; self.representatives.len()],
        });
        self.cache.insert(key, id);
        crate::stats::record_dfa_state();
        Some(id)
    }
}

/// ε-closure with position-dependent anchors. Returns the sorted set of
/// reachable byte instructions plus the accept flags. Crossing `$` flips
/// the traversal into "end-of-input only" mode: `Match` reached there
/// sets only `accept_at_end`, and byte instructions there are dropped
/// (nothing can be consumed at end-of-input).
fn closure(prog: &Program, seeds: &[usize], at_start: bool) -> (Vec<usize>, bool, bool) {
    let n = prog.insts.len();
    let mut seen_interior = vec![false; n];
    let mut seen_at_end = vec![false; n];
    let mut set = Vec::new();
    let mut accept = false;
    let mut accept_at_end = false;
    let mut stack: Vec<(usize, bool)> = seeds.iter().map(|&ip| (ip, false)).collect();
    while let Some((ip, end_only)) = stack.pop() {
        let seen = if end_only {
            &mut seen_at_end
        } else {
            &mut seen_interior
        };
        if seen[ip] {
            continue;
        }
        seen[ip] = true;
        match &prog.insts[ip] {
            Inst::Jmp { next } => stack.push((*next, end_only)),
            Inst::Split { a, b } => {
                stack.push((*a, end_only));
                stack.push((*b, end_only));
            }
            Inst::AssertStart { next } => {
                if at_start {
                    stack.push((*next, end_only));
                }
            }
            Inst::AssertEnd { next } => stack.push((*next, true)),
            Inst::Match => {
                if end_only {
                    accept_at_end = true;
                } else {
                    accept = true;
                    accept_at_end = true;
                }
            }
            Inst::Byte { .. } | Inst::Any { .. } => {
                if !end_only {
                    set.push(ip);
                }
            }
        }
    }
    set.sort_unstable();
    set.dedup();
    (set, accept, accept_at_end)
}

/// Partition the byte alphabet into equivalence classes: two bytes share
/// a class iff every character class in the program treats them
/// identically. Class membership changes only at range boundaries, so
/// marking `lo` and `hi + 1` of every range and sweeping once suffices.
fn byte_classes(prog: &Program) -> (Box<[u8; 256]>, Vec<u8>) {
    let mut boundary = [false; 257];
    boundary[0] = true;
    for inst in &prog.insts {
        if let Inst::Byte { class, .. } = inst {
            for r in &class.ranges {
                boundary[r.lo as usize] = true;
                boundary[r.hi as usize + 1] = true;
            }
        }
    }
    let mut classes = Box::new([0u8; 256]);
    let mut representatives = Vec::new();
    let mut current: i32 = -1;
    for b in 0..256usize {
        if boundary[b] {
            current += 1;
            representatives.push(b as u8);
        }
        classes[b] = current as u8;
    }
    (classes, representatives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{compile, Vm};
    use crate::parser::parse;

    fn both(pat: &str, input: &str) -> (bool, Option<bool>) {
        let prog = compile(&parse(pat).expect("parse")).expect("compile");
        let pike = Vm::new().is_match(&prog, input.as_bytes());
        let dfa = LazyDfa::new(&prog).try_match(&prog, input.as_bytes());
        (pike, dfa)
    }

    fn assert_agree(pat: &str, input: &str) {
        let (pike, dfa) = both(pat, input);
        assert_eq!(Some(pike), dfa, "pattern {pat:?} input {input:?}");
    }

    #[test]
    fn agrees_on_path_filters() {
        for (pat, inputs) in [
            (
                "^/A/B(/[^/]+)*/F$",
                &["/A/B/F", "/A/B/C/E/F", "/A/C/F", "/A/B/Fx", ""][..],
            ),
            (
                "^(/[^/]+)*/keyword$",
                &["/site/regions/item/keyword", "/keyword", "keyword"][..],
            ),
            ("^/A/B/C/[^/]+/F$", &["/A/B/C/D/F", "/A/B/C/D/E/F"][..]),
        ] {
            for input in inputs {
                assert_agree(pat, input);
            }
        }
    }

    #[test]
    fn agrees_on_anchor_corner_cases() {
        for pat in ["", "^$", "a$", "^a", "a*$", "^a*", "(|a)b", "x^y", "a$b"] {
            for input in ["", "a", "b", "ab", "ba", "aab", "xy", "axyb"] {
                assert_agree(pat, input);
            }
        }
    }

    #[test]
    fn unanchored_search_finds_interior_matches() {
        assert_agree("bc", "abcd");
        assert_agree("bc", "abd");
        assert_agree("b+c", "xxabbbcyy");
    }

    #[test]
    fn tiny_budget_falls_back() {
        let prog = compile(&parse("^/a(/[^/]+)*/b$").expect("parse")).expect("compile");
        let mut dfa = LazyDfa::with_budget(&prog, 1);
        assert_eq!(dfa.try_match(&prog, b"/a/x/b"), None);
        // The Pike VM still answers correctly.
        assert!(Vm::new().is_match(&prog, b"/a/x/b"));
    }

    #[test]
    fn states_are_reused_across_matches() {
        let prog = compile(&parse("^/site(/[^/]+)*/item$").expect("parse")).expect("compile");
        let mut dfa = LazyDfa::new(&prog);
        assert_eq!(dfa.try_match(&prog, b"/site/regions/item"), Some(true));
        let after_first = dfa.state_count();
        assert_eq!(dfa.try_match(&prog, b"/site/regions/item"), Some(true));
        assert_eq!(dfa.try_match(&prog, b"/site/x/y/item"), Some(true));
        assert!(
            dfa.state_count() <= after_first + 2,
            "warm matches should build almost no new states"
        );
    }

    #[test]
    fn byte_classes_collapse_path_alphabet() {
        let prog = compile(&parse("^/a(/[^/]+)*/b$").expect("parse")).expect("compile");
        let (_, reps) = byte_classes(&prog);
        // `/`, `a`, `b`, and a few filler classes — far fewer than 256.
        assert!(reps.len() < 10, "{} classes", reps.len());
    }
}
