//! Randomized equivalence suite: the lazy DFA must agree with the Pike
//! VM on every pattern/input pair, including under artificially tiny
//! state budgets (where it may decline to answer, but must never answer
//! wrongly).
//!
//! Patterns and inputs come from a seeded LCG so failures reproduce
//! exactly; no external property-testing crates are involved.

use regexlite::dfa::LazyDfa;
use regexlite::nfa::{compile, Vm};
use regexlite::parser::parse;

/// Deterministic LCG (Numerical Recipes constants); good enough for
/// structural fuzzing, and fully reproducible from the printed seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform-ish value in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

const ATOMS: &[&str] = &[
    "a", "b", "c", "/", ".", "[ab]", "[^a]", "[^/]", "[a-c]", "[/b]",
];
const SUFFIXES: &[&str] = &["", "", "*", "+", "?"];

/// One random pattern over the POSIX-ERE subset the engine supports:
/// literals, `.`, bracket classes (incl. negated and ranged), `* + ?`,
/// grouping, alternation, and `^`/`$` anchors.
fn random_pattern(rng: &mut Lcg) -> String {
    let mut branches = Vec::new();
    for _ in 0..1 + rng.below(3) {
        let mut seq = String::new();
        for _ in 0..1 + rng.below(4) {
            let atom = *rng.pick(ATOMS);
            let suffix = *rng.pick(SUFFIXES);
            if rng.below(5) == 0 {
                seq.push_str(&format!("({atom}{suffix})"));
                let outer = *rng.pick(SUFFIXES);
                seq.push_str(outer);
            } else {
                seq.push_str(atom);
                seq.push_str(suffix);
            }
        }
        branches.push(seq);
    }
    let body = branches.join("|");
    match rng.below(4) {
        0 => format!("^{body}"),
        1 => format!("{body}$"),
        2 => format!("^{body}$"),
        _ => body,
    }
}

fn random_input(rng: &mut Lcg) -> String {
    let alphabet = ['a', 'b', 'c', 'd', '/'];
    let len = rng.below(14);
    (0..len).map(|_| *rng.pick(&alphabet)).collect()
}

/// Check DFA-vs-VM agreement for one compiled pattern over several
/// inputs. `budget` limits the DFA's state count; a `None` answer
/// (budget exhausted) is acceptable, a wrong answer is not.
fn check(pattern: &str, inputs: &[String], budget: usize) {
    let ast = parse(pattern).expect("generated patterns are valid");
    let prog = compile(&ast).expect("generated patterns compile");
    let mut dfa = LazyDfa::with_budget(&prog, budget);
    let mut vm = Vm::new();
    for input in inputs {
        let expected = vm.is_match(&prog, input.as_bytes());
        if let Some(got) = dfa.try_match(&prog, input.as_bytes()) {
            assert_eq!(
                got, expected,
                "pattern={pattern:?} input={input:?} budget={budget}"
            );
        }
    }
}

#[test]
fn dfa_agrees_with_pike_vm_on_random_patterns() {
    let mut rng = Lcg(0x5eed_2026);
    for _ in 0..1000 {
        let pattern = random_pattern(&mut rng);
        let inputs: Vec<String> = (0..8).map(|_| random_input(&mut rng)).collect();
        check(&pattern, &inputs, 512);
    }
}

#[test]
fn dfa_agrees_under_tiny_budgets() {
    // With budgets this small most patterns exhaust the DFA mid-input;
    // every answer the DFA *does* give must still match the Pike VM.
    let mut rng = Lcg(0xbad_b0d9e7);
    for _ in 0..300 {
        let pattern = random_pattern(&mut rng);
        let inputs: Vec<String> = (0..4).map(|_| random_input(&mut rng)).collect();
        for budget in [1, 2, 3, 5] {
            check(&pattern, &inputs, budget);
        }
    }
}

#[test]
fn dfa_agrees_on_path_filter_shapes() {
    // The shapes the PPF translator actually emits: anchored absolute
    // paths with `(/[^/]+)*` descendant gaps over element-name labels.
    let patterns = [
        "^/site/regions/.*$",
        "^/site(/[^/]+)*/item$",
        "^/a(/[^/]+)*/b(/[^/]+)*/c$",
        "^(/[^/]+)+$",
        "^/dblp/(article|inproceedings)/author$",
        "^/site/people/person(/[^/]+)?$",
    ];
    let inputs = [
        "/site/regions/africa/item",
        "/site/people/person",
        "/site/people/person/name",
        "/a/x/b/y/c",
        "/a/b/c",
        "/dblp/article/author",
        "/dblp/phdthesis/author",
        "",
        "/",
        "/a//b",
    ];
    for pat in patterns {
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        for budget in [1, 4, 512] {
            check(pat, &inputs, budget);
        }
    }
}

#[test]
fn budget_exhaustion_reports_fallback_not_wrong_answer() {
    // A pattern whose determinization needs many states: nested
    // alternations of classes with unbounded repeats. With budget 1 the
    // DFA cannot even intern its start state's successor set.
    let ast = parse("^(a|b)(a|b)(a|b)(a|b)$").unwrap();
    let prog = compile(&ast).unwrap();
    let mut dfa = LazyDfa::with_budget(&prog, 1);
    let mut vm = Vm::new();
    let mut fallbacks = 0;
    for input in ["aaaa", "abab", "abc", "aaaaa"] {
        match dfa.try_match(&prog, input.as_bytes()) {
            None => fallbacks += 1,
            Some(got) => assert_eq!(got, vm.is_match(&prog, input.as_bytes()), "{input}"),
        }
    }
    assert!(fallbacks > 0, "budget 1 must force at least one fallback");
}
