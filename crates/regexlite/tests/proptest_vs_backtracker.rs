//! Property tests: the Pike VM must agree with an independently written
//! backtracking matcher on randomly generated patterns and inputs.

use proptest::prelude::*;
use regexlite::ast::Ast;
use regexlite::Regex;

/// Naive exponential backtracking matcher, used only as a test oracle.
/// `bt_match(ast, input, pos)` returns the set of positions reachable after
/// matching `ast` starting at `pos` — memoization-free on purpose (kept
/// simple, inputs are small).
fn bt_positions(ast: &Ast, input: &[u8], pos: usize) -> Vec<usize> {
    match ast {
        Ast::Empty => vec![pos],
        Ast::Literal(b) => {
            if input.get(pos) == Some(b) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::AnyChar => {
            if pos < input.len() {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Class(c) => match input.get(pos) {
            Some(&b) if c.matches(b) => vec![pos + 1],
            _ => vec![],
        },
        Ast::AnchorStart => {
            if pos == 0 {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::AnchorEnd => {
            if pos == input.len() {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::Group(inner) => bt_positions(inner, input, pos),
        Ast::Concat(parts) => {
            let mut current = vec![pos];
            for part in parts {
                let mut next = Vec::new();
                for &p in &current {
                    for q in bt_positions(part, input, p) {
                        if !next.contains(&q) {
                            next.push(q);
                        }
                    }
                }
                current = next;
                if current.is_empty() {
                    break;
                }
            }
            current
        }
        Ast::Alternation(branches) => {
            let mut out = Vec::new();
            for b in branches {
                for q in bt_positions(b, input, pos) {
                    if !out.contains(&q) {
                        out.push(q);
                    }
                }
            }
            out
        }
        Ast::Repeat { node, min, max } => {
            // Breadth-first expansion of the repetition, bounded by input
            // length to terminate on nullable bodies.
            let mut reachable = vec![pos];
            let mut out = Vec::new();
            if *min == 0 {
                out.push(pos);
            }
            let hard_cap = max.map(|m| m as usize).unwrap_or(input.len() + 1);
            for count in 1..=hard_cap {
                let mut next = Vec::new();
                for &p in &reachable {
                    for q in bt_positions(node, input, p) {
                        if !next.contains(&q) {
                            next.push(q);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                if count >= *min as usize {
                    for &q in &next {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
                // If no new position was produced, further iterations only
                // cycle through nullable matches.
                if next.iter().all(|q| reachable.contains(q)) && count >= *min as usize {
                    break;
                }
                reachable = next;
            }
            out
        }
    }
}

/// Oracle: unanchored search with the backtracker.
fn bt_search(ast: &Ast, input: &[u8]) -> bool {
    (0..=input.len()).any(|start| !bt_positions(ast, input, start).is_empty())
}

/// Random pattern generator over a tiny alphabet so collisions are common.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("/".to_string()),
        Just(".".to_string()),
        Just("[ab]".to_string()),
        Just("[^a]".to_string()),
        Just("[^/]".to_string()),
    ];
    let unary = atom.prop_flat_map(|a| {
        prop_oneof![
            Just(a.clone()),
            Just(format!("{a}*")),
            Just(format!("{a}+")),
            Just(format!("{a}?")),
        ]
    });
    let seq = proptest::collection::vec(unary, 1..5).prop_map(|v| v.concat());
    let grouped = seq.prop_flat_map(|s| {
        prop_oneof![
            Just(s.clone()),
            Just(format!("({s})")),
            Just(format!("({s})*")),
            Just(format!("({s})+")),
        ]
    });
    proptest::collection::vec(grouped, 1..4).prop_flat_map(|parts| {
        let body = parts.join("|");
        prop_oneof![
            Just(body.clone()),
            Just(format!("^{body}")),
            Just(format!("{body}$")),
            Just(format!("^{body}$")),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('/')],
        0..12,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn vm_agrees_with_backtracker(pat in arb_pattern(), input in arb_input()) {
        let ast = regexlite::parser::parse(&pat).expect("generated patterns are valid");
        let re = Regex::new(&pat).expect("generated patterns compile");
        let expected = bt_search(&ast, input.as_bytes());
        let got = re.is_match(&input);
        prop_assert_eq!(got, expected, "pattern={} input={}", pat, input);
    }

    #[test]
    fn anchored_full_match_is_substring_invariant(input in arb_input()) {
        // `^.*X.*$` must match iff X occurs in the input.
        let re = Regex::new("^.*ab.*$").unwrap();
        prop_assert_eq!(re.is_match(&input), input.contains("ab"));
    }

    #[test]
    fn escape_roundtrip(s in "[a-z.*+?()\\[\\]{}|^$\\\\]{0,10}") {
        let pat = format!("^{}$", regexlite::escape(&s));
        let re = Regex::new(&pat).expect("escaped pattern compiles");
        prop_assert!(re.is_match(&s));
    }
}
