//! XML serialization (the inverse of [`crate::parse()`]).

use crate::model::{Document, NodeId, NodeKind};

/// Serialize a document (or subtree) back to XML text.
pub fn to_xml(doc: &Document) -> String {
    let mut out = String::new();
    for &child in doc.children(Document::ROOT) {
        write_node(doc, child, &mut out);
    }
    out
}

/// Serialize a single subtree.
pub fn node_to_xml(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &c in doc.children(id) {
                write_node(doc, c, out);
            }
        }
        NodeKind::Text(t) => escape_text(t, out),
        NodeKind::Element { name, attributes } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attributes {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn escape_text(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn roundtrip_simple() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let doc = parse(src).expect("parse");
        assert_eq!(to_xml(&doc), src);
    }

    #[test]
    fn escaping_roundtrips() {
        let doc = parse("<a t=\"&quot;&amp;\">x &lt; y &amp; z</a>").expect("parse");
        let xml = to_xml(&doc);
        let doc2 = parse(&xml).expect("reparse");
        let a = doc.document_element().expect("a");
        let a2 = doc2.document_element().expect("a");
        assert_eq!(doc.direct_text(a), doc2.direct_text(a2));
        assert_eq!(doc.attribute(a, "t"), doc2.attribute(a2, "t"));
    }

    #[test]
    fn subtree_serialization() {
        let doc = parse("<a><b><c>1</c></b></a>").expect("parse");
        let a = doc.document_element().expect("a");
        let b = doc.child_elements(a).next().expect("b");
        assert_eq!(node_to_xml(&doc, b), "<b><c>1</c></b>");
    }
}
