//! A small, strict XML parser.
//!
//! Covers the XML subset that XML-shredding systems care about: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions (skipped), an optional XML declaration and DOCTYPE (skipped),
//! and the five predefined entities plus numeric character references.
//! No namespaces (the paper's datasets — XMark and DBLP — don't use them).

use crate::model::{Document, TreeBuilder};

/// Parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub line: usize,
    pub column: usize,
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parse an XML string into a [`Document`].
pub fn parse(input: &str) -> Result<Document, XmlError> {
    Parser::new(input).run()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            line,
            column: col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn run(mut self) -> Result<Document, XmlError> {
        let mut builder = TreeBuilder::new();
        let mut depth = 0usize;
        let mut open_names: Vec<String> = Vec::new();
        let mut seen_document_element = false;

        loop {
            if self.pos >= self.input.len() {
                break;
            }
            if self.peek() == Some(b'<') {
                if self.starts_with("<?") {
                    self.skip_until("?>")?;
                } else if self.starts_with("<!--") {
                    self.skip_until("-->")?;
                } else if self.starts_with("<![CDATA[") {
                    if depth == 0 {
                        return Err(self.err("character data outside document element"));
                    }
                    self.pos += "<![CDATA[".len();
                    let start = self.pos;
                    let end = self.find("]]>")?;
                    let text = std::str::from_utf8(&self.input[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                    builder.text(text);
                    self.pos = end + 3;
                } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    self.skip_doctype()?;
                } else if self.starts_with("</") {
                    self.pos += 2;
                    let name = self.read_name()?;
                    self.skip_ws();
                    self.expect(">")?;
                    if depth == 0 {
                        return Err(self.err(format!("unmatched closing tag </{name}>")));
                    }
                    let opened = open_names.pop().expect("depth > 0 implies open name");
                    if opened != name {
                        return Err(
                            self.err(format!("closing tag </{name}> does not match <{opened}>"))
                        );
                    }
                    builder.end_element();
                    depth -= 1;
                } else {
                    // Opening tag.
                    self.pos += 1;
                    if depth == 0 && seen_document_element {
                        return Err(self.err("multiple document elements"));
                    }
                    let name = self.read_name()?;
                    builder.start_element(&name);
                    if depth == 0 {
                        seen_document_element = true;
                    }
                    depth += 1;
                    open_names.push(name.clone());
                    loop {
                        self.skip_ws();
                        match self.peek() {
                            Some(b'>') => {
                                self.pos += 1;
                                break;
                            }
                            Some(b'/') => {
                                self.expect("/>")?;
                                builder.end_element();
                                open_names.pop();
                                depth -= 1;
                                break;
                            }
                            Some(_) => {
                                let attr = self.read_name()?;
                                self.skip_ws();
                                self.expect("=")?;
                                self.skip_ws();
                                let value = self.read_quoted()?;
                                builder.attribute(&attr, &value);
                            }
                            None => return Err(self.err("unexpected end of input in tag")),
                        }
                    }
                }
            } else {
                // Character data.
                let start = self.pos;
                while self.pos < self.input.len() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in text"))?;
                if depth == 0 {
                    if !raw.trim().is_empty() {
                        return Err(self.err("character data outside document element"));
                    }
                } else {
                    let text = self.unescape(raw)?;
                    // Whitespace-only runs between tags are formatting, not
                    // content: drop them, as shredding systems do.
                    if !text.trim().is_empty() {
                        builder.text(text);
                    }
                }
            }
        }

        if depth != 0 {
            return Err(self.err("unexpected end of input: unclosed element"));
        }
        if !seen_document_element {
            return Err(self.err("no document element"));
        }
        Ok(builder.finish())
    }

    fn skip_until(&mut self, marker: &str) -> Result<(), XmlError> {
        let end = self.find(marker)?;
        self.pos = end + marker.len();
        Ok(())
    }

    fn find(&self, marker: &str) -> Result<usize, XmlError> {
        let hay = &self.input[self.pos..];
        hay.windows(marker.len())
            .position(|w| w == marker.as_bytes())
            .map(|i| self.pos + i)
            .ok_or_else(|| self.err(format!("unterminated construct, expected `{marker}`")))
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Skip to matching '>', honoring an internal subset in brackets.
        let mut bracket = 0i32;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b'>' if bracket <= 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err("unterminated DOCTYPE"))
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(|s| s.to_string())
            .map_err(|_| self.err("invalid UTF-8 in name"))
    }

    fn read_quoted(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in attribute"))?;
                self.pos += 1;
                return self.unescape(raw);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn unescape(&self, raw: &str) -> Result<String, XmlError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp..];
            let semi = rest
                .find(';')
                .ok_or_else(|| self.err("unterminated entity reference"))?;
            let entity = &rest[1..semi];
            match entity {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let cp = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.err("bad hex character reference"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| self.err("invalid character reference"))?,
                    );
                }
                _ if entity.starts_with('#') => {
                    let cp: u32 = entity[1..]
                        .parse()
                        .map_err(|_| self.err("bad character reference"))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| self.err("invalid character reference"))?,
                    );
                }
                other => {
                    return Err(self.err(format!("unknown entity `&{other};`")));
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NodeKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b x='1'>hi</b><c/></a>").expect("parse");
        let a = doc.document_element().expect("a");
        assert_eq!(doc.name(a), Some("a"));
        let kids: Vec<_> = doc.child_elements(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.attribute(kids[0], "x"), Some("1"));
        assert_eq!(doc.direct_text(kids[0]), "hi");
    }

    #[test]
    fn skips_prolog_comments_and_pis() {
        let doc = parse(
            "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE a [<!ELEMENT a ANY>]>\n<a><!-- in --><?pi data?>t</a>",
        )
        .expect("parse");
        let a = doc.document_element().expect("a");
        assert_eq!(doc.direct_text(a), "t");
    }

    #[test]
    fn entities_and_charrefs() {
        let doc = parse("<a t='&quot;q&quot;'>&lt;x&gt; &amp; &#65;&#x42;</a>").expect("parse");
        let a = doc.document_element().expect("a");
        assert_eq!(doc.attribute(a, "t"), Some("\"q\""));
        assert_eq!(doc.direct_text(a), "<x> & AB");
    }

    #[test]
    fn cdata_is_literal_text() {
        let doc = parse("<a><![CDATA[<not-a-tag> & raw]]></a>").expect("parse");
        let a = doc.document_element().expect("a");
        assert_eq!(doc.direct_text(a), "<not-a-tag> & raw");
    }

    #[test]
    fn whitespace_between_tags_is_dropped() {
        let doc = parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>").expect("parse");
        let a = doc.document_element().expect("a");
        let texts: usize = doc
            .children(a)
            .iter()
            .filter(|&&c| matches!(doc.node(c).kind, NodeKind::Text(_)))
            .count();
        assert_eq!(texts, 0);
        assert_eq!(doc.child_elements(a).count(), 2);
    }

    #[test]
    fn mixed_content_preserved() {
        let doc = parse("<title>On <i>XPath</i> speed</title>").expect("parse");
        let t = doc.document_element().expect("title");
        assert_eq!(doc.string_value(t), "On XPath speed");
        assert_eq!(doc.direct_text(t), "On  speed");
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
        assert!(parse("text only").is_err());
        assert!(parse("<a x=1></a>").is_err());
        assert!(parse("<a>&nope;</a>").is_err());
        let e = parse("<a>\n<b></c></a>").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn closing_names_must_match() {
        assert!(parse("<a><b></x></a>").is_err());
        assert!(parse("<a><b/></a>").is_ok());
    }
}
