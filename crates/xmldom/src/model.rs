//! Arena-based XML document model.
//!
//! An XML document is a rooted, ordered, labeled tree (paper §2.1). Nodes
//! live in a flat arena and are identified by [`NodeId`]; ids are assigned
//! in **document order** (preorder), so comparing ids compares document
//! positions — the native XPath evaluator relies on this.
//!
//! Element nodes additionally carry a 1-based ordinal among their *element*
//! siblings, from which the Dewey vector of the paper's Figure 1(c) is
//! derived ([`Document::dewey`]).

/// Index of a node in a [`Document`] arena. Ids follow document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The content of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document root (XPath `/`). Exactly one per document,
    /// always [`Document::ROOT`].
    Document,
    /// An element with a tag name and attributes in document order.
    Element {
        name: String,
        attributes: Vec<(String, String)>,
    },
    /// A text node.
    Text(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// 1-based ordinal among element siblings (0 for non-elements and the
    /// document root). This is the Dewey component contributed by the node.
    pub elem_ordinal: u32,
    /// Depth below the document root (document root = 0, document element = 1).
    pub depth: u32,
}

/// An XML document as an ordered node arena.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// The virtual root above the document element.
    pub const ROOT: NodeId = NodeId(0);

    pub(crate) fn from_nodes(nodes: Vec<Node>) -> Document {
        Document { nodes }
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The document element (first element child of the virtual root), if any.
    pub fn document_element(&self) -> Option<NodeId> {
        self.node(Self::ROOT)
            .children
            .iter()
            .copied()
            .find(|&c| self.is_element(c))
    }

    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Element { .. })
    }

    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// Tag name for elements, `None` otherwise.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute value lookup on an element.
    pub fn attribute(&self, id: NodeId, attr: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes
                .iter()
                .find(|(k, _)| k == attr)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// All attributes of an element (empty for other kinds).
    pub fn attributes(&self, id: NodeId) -> &[(String, String)] {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Element children only, in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id)
            .children
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// Concatenation of *direct* text children. This is what the shredders
    /// store in an element's `text` column.
    pub fn direct_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for &c in self.children(id) {
            if let NodeKind::Text(t) = &self.node(c).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// XPath string-value: concatenation of all descendant text, in
    /// document order.
    pub fn string_value(&self, id: NodeId) -> String {
        match &self.node(id).kind {
            NodeKind::Text(t) => t.clone(),
            _ => {
                let mut out = String::new();
                let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
                while let Some(n) = stack.pop() {
                    match &self.node(n).kind {
                        NodeKind::Text(t) => out.push_str(t),
                        _ => stack.extend(self.children(n).iter().rev().copied()),
                    }
                }
                out
            }
        }
    }

    /// The Dewey vector of a node: ordinals of the ancestors-or-self chain
    /// among their element siblings, root-to-node (paper Figure 1(c)).
    /// Only meaningful for element nodes.
    pub fn dewey(&self, id: NodeId) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.node(id).depth as usize);
        let mut cur = Some(id);
        while let Some(n) = cur {
            let node = self.node(n);
            if matches!(node.kind, NodeKind::Element { .. }) {
                out.push(node.elem_ordinal);
            }
            cur = node.parent;
        }
        out.reverse();
        out
    }

    /// Root-to-node path string, e.g. `/site/regions/africa/item`.
    /// This is the value stored in the `Paths` relation.
    pub fn path_string(&self, id: NodeId) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            if let NodeKind::Element { name, .. } = &self.node(n).kind {
                names.push(name);
            }
            cur = self.node(n).parent;
        }
        let mut out = String::new();
        for name in names.iter().rev() {
            out.push('/');
            out.push_str(name);
        }
        out
    }

    /// True iff `anc` is a proper ancestor of `node`.
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = self.parent(node);
        while let Some(n) = cur {
            if n == anc {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Descendant element ids of `id` (not including `id`), document order.
    pub fn descendant_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            if self.is_element(n) {
                out.push(n);
            }
            stack.extend(self.children(n).iter().rev().copied());
        }
        out
    }

    /// Count of element nodes in the document.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element { .. }))
            .count()
    }
}

/// Incremental document builder used by the parser and the workload
/// generators. Ensures ids are assigned in document order and ordinals /
/// depths are maintained.
#[derive(Debug)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
    stack: Vec<NodeId>,
    /// Element-sibling counters parallel to `stack`.
    elem_counts: Vec<u32>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    pub fn new() -> TreeBuilder {
        TreeBuilder {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
                elem_ordinal: 0,
                depth: 0,
            }],
            stack: vec![Document::ROOT],
            elem_counts: vec![0],
        }
    }

    fn current(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empties")
    }

    /// Open an element; subsequent nodes become its children until
    /// [`TreeBuilder::end_element`].
    pub fn start_element(&mut self, name: impl Into<String>) -> NodeId {
        let parent = self.current();
        let count = self.elem_counts.last_mut().expect("stack non-empty");
        *count += 1;
        let ordinal = *count;
        let depth = self.nodes[parent.index()].depth + 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Element {
                name: name.into(),
                attributes: Vec::new(),
            },
            parent: Some(parent),
            children: Vec::new(),
            elem_ordinal: ordinal,
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        self.stack.push(id);
        self.elem_counts.push(0);
        id
    }

    /// Add an attribute to the currently open element.
    pub fn attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let id = self.current();
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => attributes.push((name.into(), value.into())),
            _ => panic!("attribute() outside an open element"),
        }
    }

    /// Add a text node under the currently open element.
    pub fn text(&mut self, value: impl Into<String>) -> NodeId {
        let parent = self.current();
        let depth = self.nodes[parent.index()].depth + 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Text(value.into()),
            parent: Some(parent),
            children: Vec::new(),
            elem_ordinal: 0,
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Close the innermost open element.
    pub fn end_element(&mut self) {
        assert!(self.stack.len() > 1, "end_element() with no open element");
        self.stack.pop();
        self.elem_counts.pop();
    }

    /// Convenience: element with only text content.
    pub fn leaf(&mut self, name: impl Into<String>, text: impl Into<String>) -> NodeId {
        let id = self.start_element(name);
        let t: String = text.into();
        if !t.is_empty() {
            self.text(t);
        }
        self.end_element();
        id
    }

    /// Finish building. Panics if elements are still open.
    pub fn finish(self) -> Document {
        assert_eq!(
            self.stack.len(),
            1,
            "finish() with {} unclosed element(s)",
            self.stack.len() - 1
        );
        Document::from_nodes(self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_document() -> Document {
        // The sample document of the paper's Figure 1(b)/(c).
        let mut b = TreeBuilder::new();
        b.start_element("A"); // id 1, dewey 1
        {
            b.start_element("B"); // 1.1
            {
                b.start_element("C"); // 1.1.1
                b.leaf("D", "");
                b.end_element();
                b.start_element("C"); // 1.1.2
                b.start_element("E"); // 1.1.2.1
                b.leaf("F", "1");
                b.leaf("F", "2");
                b.end_element();
                b.end_element();
                b.leaf("G", ""); // 1.1.3
            }
            b.end_element();
            b.start_element("B"); // 1.2
            b.start_element("G"); // 1.2.1
            b.leaf("G", ""); // 1.2.1.1
            b.end_element();
            b.end_element();
        }
        b.end_element();
        b.finish()
    }

    #[test]
    fn figure1_dewey_vectors() {
        let doc = figure1_document();
        let elements: Vec<NodeId> = doc.all_nodes().filter(|&n| doc.is_element(n)).collect();
        assert_eq!(elements.len(), 12);
        let deweys: Vec<Vec<u32>> = elements.iter().map(|&n| doc.dewey(n)).collect();
        // Matches the paper's Figure 1(c) exactly.
        assert_eq!(
            deweys,
            vec![
                vec![1],
                vec![1, 1],
                vec![1, 1, 1],
                vec![1, 1, 1, 1],
                vec![1, 1, 2],
                vec![1, 1, 2, 1],
                vec![1, 1, 2, 1, 1],
                vec![1, 1, 2, 1, 2],
                vec![1, 1, 3],
                vec![1, 2],
                vec![1, 2, 1],
                vec![1, 2, 1, 1],
            ]
        );
    }

    #[test]
    fn figure1_path_strings() {
        let doc = figure1_document();
        let f_nodes: Vec<NodeId> = doc
            .all_nodes()
            .filter(|&n| doc.name(n) == Some("F"))
            .collect();
        assert_eq!(f_nodes.len(), 2);
        for f in f_nodes {
            assert_eq!(doc.path_string(f), "/A/B/C/E/F");
        }
    }

    #[test]
    fn document_order_is_id_order() {
        let doc = figure1_document();
        // Preorder: each parent's id precedes all of its children's.
        for n in doc.all_nodes() {
            for &c in doc.children(n) {
                assert!(n < c);
            }
        }
    }

    #[test]
    fn text_access() {
        let doc = figure1_document();
        let f = doc
            .all_nodes()
            .filter(|&n| doc.name(n) == Some("F"))
            .nth(1)
            .expect("second F");
        assert_eq!(doc.direct_text(f), "2");
        let e = doc.parent(f).expect("parent E");
        assert_eq!(doc.name(e), Some("E"));
        assert_eq!(doc.direct_text(e), "");
        assert_eq!(doc.string_value(e), "12");
    }

    #[test]
    fn ancestor_relationship() {
        let doc = figure1_document();
        let a = doc.document_element().expect("document element");
        let f = doc
            .all_nodes()
            .find(|&n| doc.name(n) == Some("F"))
            .expect("an F");
        assert!(doc.is_ancestor(a, f));
        assert!(!doc.is_ancestor(f, a));
        assert!(!doc.is_ancestor(f, f));
        assert!(doc.is_ancestor(Document::ROOT, f));
    }

    #[test]
    fn attributes_roundtrip() {
        let mut b = TreeBuilder::new();
        b.start_element("item");
        b.attribute("id", "item0");
        b.attribute("featured", "yes");
        b.end_element();
        let doc = b.finish();
        let item = doc.document_element().expect("element");
        assert_eq!(doc.attribute(item, "id"), Some("item0"));
        assert_eq!(doc.attribute(item, "featured"), Some("yes"));
        assert_eq!(doc.attribute(item, "missing"), None);
        assert_eq!(doc.attributes(item).len(), 2);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_with_open_element_panics() {
        let mut b = TreeBuilder::new();
        b.start_element("a");
        let _ = b.finish();
    }

    #[test]
    fn descendant_elements_in_document_order() {
        let doc = figure1_document();
        let a = doc.document_element().expect("A");
        let descendants = doc.descendant_elements(a);
        assert_eq!(descendants.len(), 11);
        for w in descendants.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
