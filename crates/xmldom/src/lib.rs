//! `xmldom` — ordered, labeled XML trees with document-order node ids.
//!
//! This crate is the in-memory XML data model shared by every other layer
//! of the system (paper §2.1): the [`parse`](parse()) function and workload generators produce
//! [`Document`]s, the shredders walk them into relations, and the native
//! XPath evaluator runs directly on them.
//!
//! Key properties:
//! * node ids are assigned in **document order** (preorder), so id
//!   comparison is document-position comparison;
//! * element nodes carry the 1-based sibling ordinals from which the
//!   Dewey vectors of the paper's Figure 1(c) derive ([`Document::dewey`]);
//! * [`Document::path_string`] yields the root-to-node path stored in the
//!   `Paths` relation (§3.1).
//!
//! # Example
//! ```
//! let doc = xmldom::parse("<a><b>1</b><b>2</b></a>").unwrap();
//! let a = doc.document_element().unwrap();
//! let bs: Vec<_> = doc.child_elements(a).collect();
//! assert_eq!(doc.dewey(bs[1]), vec![1, 2]);
//! assert_eq!(doc.path_string(bs[1]), "/a/b");
//! ```

pub mod model;
pub mod parse;
pub mod serialize;

pub use model::{Document, Node, NodeId, NodeKind, TreeBuilder};
pub use parse::{parse, XmlError};
pub use serialize::{node_to_xml, to_xml};
