//! Property tests for the XML parser/serializer and the document model
//! invariants every other crate relies on.

use proptest::prelude::*;
use xmldom::{Document, NodeId, TreeBuilder};

/// Random tree builder: names from a small alphabet, attributes and text
/// with XML-hostile characters to exercise escaping.
fn arb_doc() -> impl Strategy<Value = Document> {
    let name = prop_oneof![Just("a"), Just("b"), Just("c-d"), Just("e_f"), Just("g.h")];
    let attr_val = "[ -~]{0,8}"; // printable ASCII incl. <>&"'
    let text_val = "[ -~]{1,10}";
    proptest::collection::vec(
        (
            0u8..4,
            name,
            attr_val.prop_map(String::from),
            text_val.prop_map(String::from),
        ),
        0..40,
    )
    .prop_map(|ops| {
        let mut b = TreeBuilder::new();
        b.start_element("root");
        let mut depth = 1;
        for (op, name, attr, text) in ops {
            match op {
                0 => {
                    b.start_element(name);
                    depth += 1;
                }
                1 => {
                    b.start_element(name);
                    b.attribute("k", attr);
                    b.end_element();
                }
                2 => {
                    b.text(text);
                }
                _ => {
                    if depth > 1 {
                        b.end_element();
                        depth -= 1;
                    }
                }
            }
        }
        while depth > 0 {
            b.end_element();
            depth -= 1;
        }
        b.finish()
    })
}

fn doc_eq(a: &Document, b: &Document) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (x, y) in a.all_nodes().zip(b.all_nodes()) {
        if a.name(x) != b.name(y)
            || a.attributes(x) != b.attributes(y)
            || a.parent(x) != b.parent(y)
            || a.direct_text(x) != b.direct_text(y)
        {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_roundtrip(doc in arb_doc()) {
        let xml = xmldom::to_xml(&doc);
        let reparsed = xmldom::parse(&xml).expect("serializer output parses");
        // Adjacent text nodes may merge on reparse; compare through a
        // second roundtrip which is a fixpoint.
        let xml2 = xmldom::to_xml(&reparsed);
        let reparsed2 = xmldom::parse(&xml2).expect("fixpoint parses");
        prop_assert!(doc_eq(&reparsed, &reparsed2));
        prop_assert_eq!(xml2, xmldom::to_xml(&reparsed2));
    }

    #[test]
    fn ids_are_preorder(doc in arb_doc()) {
        for n in doc.all_nodes() {
            for &c in doc.children(n) {
                prop_assert!(n < c, "parent id must precede child id");
            }
        }
        // children are ascending (document order)
        for n in doc.all_nodes() {
            for w in doc.children(n).windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn dewey_matches_structure(doc in arb_doc()) {
        for n in doc.all_nodes().filter(|&n| doc.is_element(n)) {
            let d = doc.dewey(n);
            prop_assert_eq!(d.len() as u32, doc.node(n).depth);
            match doc.parent(n) {
                Some(p) if doc.is_element(p) => {
                    prop_assert_eq!(&d[..d.len() - 1], &doc.dewey(p)[..]);
                }
                _ => prop_assert_eq!(d.len(), 1),
            }
        }
    }

    #[test]
    fn path_string_matches_ancestry(doc in arb_doc()) {
        for n in doc.all_nodes().filter(|&n| doc.is_element(n)) {
            let path = doc.path_string(n);
            let mut names: Vec<&str> = Vec::new();
            let mut cur = Some(n);
            while let Some(x) = cur {
                if let Some(name) = doc.name(x) {
                    names.push(name);
                }
                cur = doc.parent(x);
            }
            names.reverse();
            let expected: String =
                names.iter().map(|s| format!("/{s}")).collect();
            prop_assert_eq!(path, expected);
        }
    }

    #[test]
    fn string_value_concatenates_in_document_order(doc in arb_doc()) {
        let root = Document::ROOT;
        let mut expected = String::new();
        fn collect(doc: &Document, n: NodeId, out: &mut String) {
            if doc.is_text(n) {
                out.push_str(&doc.string_value(n));
            }
            for &c in doc.children(n) {
                collect(doc, c, out);
            }
        }
        collect(&doc, root, &mut expected);
        prop_assert_eq!(doc.string_value(root), expected);
    }
}
