//! End-to-end profiler coverage: attach over a 4-thread XMark run and
//! the profile must contain worker task spans, per-chunk execution
//! spans, query markers, and a chrome trace that `obs::json` can parse
//! back. Also pins the satellite contract that `engine.query_ns` is
//! recorded for *every* query, traced or not, successful or not.
//!
//! This file owns the process-global profiler for its whole binary (one
//! `#[test]` attaches), so everything lives in a single test.

use ppf_core::{QueryLimits, XmlDb};
use sqlexec::ParallelMode;

fn xmark_db(scale: f64) -> XmlDb {
    let doc = xmark::generate_xmark(xmark::XMarkConfig { scale, seed: 42 });
    let mut db = XmlDb::new(&xmark::xmark_schema()).unwrap();
    // Keep the path filters live so partitioned scans have regex work.
    db.set_path_marking(false);
    db.load(&doc).unwrap();
    db.finalize().unwrap();
    db
}

#[test]
fn profiled_pipeline_produces_worker_chunk_and_query_events() {
    ppf_pool::set_threads(4);
    let db = xmark_db(0.012);
    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    sqlexec::clear_filter_caches();

    let queries = [
        "//site//item//keyword",
        "/site/people/person/name",
        "//item",
    ];
    assert!(obs::profile::attach(), "profiler already attached");
    for q in queries {
        db.query(q).unwrap();
    }
    // Errors are profiled and measured like successes.
    assert!(db
        .query_with_limits("//item", QueryLimits::default().with_max_rows(1))
        .is_err());
    let profile = obs::profile::detach().expect("attached above");
    sqlexec::set_parallel_mode(prev);

    assert!(profile.total_events() > 0, "empty profile");
    let timelines = profile.timelines();
    let workers: Vec<_> = timelines
        .iter()
        .filter(|t| t.name.starts_with("ppf-pool-"))
        .collect();
    assert!(!workers.is_empty(), "no pool worker lanes: {timelines:?}");

    let chunks: u64 = timelines.iter().map(|t| t.chunks).sum();
    assert!(chunks >= 2, "no partitioned chunk spans: {timelines:?}");
    let chunk_rows: u64 = timelines.iter().map(|t| t.chunk_rows).sum();
    assert!(chunk_rows > 0, "chunk spans carry no row counts");

    let queries_seen: u64 = timelines.iter().map(|t| t.queries).sum();
    assert!(queries_seen >= 4, "query markers missing: {timelines:?}");

    // The chrome trace is valid JSON with per-lane thread names.
    let json = profile.to_chrome_trace();
    let doc = obs::json::parse(&json).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    assert!(
        events.len() >= profile.lanes.len(),
        "missing metadata events"
    );

    // Satellite: every query fed the end-to-end latency histogram.
    let snap = obs::Registry::global().snapshot();
    let (_, query_ns) = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "engine.query_ns")
        .expect("engine.query_ns histogram exists");
    assert!(
        query_ns.count >= 4,
        "expected all queries (errors included) in engine.query_ns, got {}",
        query_ns.count
    );
}
