//! Copy-on-write snapshot semantics: atomic swap, crash-safe reload
//! isolation, version stamping, and deferred snapshot drop.
//!
//! The process-wide registry and snapshot gauges are shared by every
//! test in this binary, so counter-delta assertions serialize on one
//! mutex and compare before/after deltas rather than absolute values.

use std::sync::{Mutex, OnceLock};

use ppf_core::{QueryLimits, ReloadError, SharedEngine, XmlDb};
use xmlschema::figure1_schema;

/// Serializes the tests that assert global counter/gauge deltas.
fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A figure-1 document with `n` `<D>` leaves, so row counts identify
/// which version answered a query.
fn doc(n: usize) -> String {
    let ds: String = (0..n).map(|i| format!("<D x='{i}'>{i}</D>")).collect();
    format!("<A x='1'><B><C>{ds}<E><F>10</F></E></C></B></A>")
}

fn build(n: usize) -> XmlDb {
    let mut db = XmlDb::new(&figure1_schema()).expect("schema");
    db.load_xml(&doc(n)).expect("load");
    db.finalize().expect("finalize");
    db
}

#[test]
fn swap_is_atomic_and_stamps_versions() {
    let engine = SharedEngine::new(build(2));
    assert_eq!(engine.version(), 1);
    let before = engine.query("/A/B/C/D").expect("v1 query");
    assert_eq!(before.snapshot_version, 1);
    assert_eq!(before.rows.rows.len(), 2);

    let snap = engine.reload_with(|| Ok(build(5))).expect("reload");
    assert_eq!(snap.version(), 2);
    assert_eq!(engine.version(), 2);

    let after = engine.query("/A/B/C/D").expect("v2 query");
    assert_eq!(after.snapshot_version, 2);
    assert_eq!(after.rows.rows.len(), 5);
}

#[test]
fn failed_reload_leaves_old_results_byte_identical() {
    let _g = counter_lock();
    let reg = obs::Registry::global();
    let engine = SharedEngine::new(build(3));
    let baseline = engine.query("/A/B/C/D").expect("baseline");

    let attempts0 = reg.counter("engine.reload_attempts");
    let failures0 = reg.counter("engine.reload_failures");
    let swaps0 = reg.counter("engine.reload_swaps");

    // Typed builder error (the malformed-XML / truncated-file path).
    let err = engine
        .reload_with(|| Err(ReloadError::parse("unexpected EOF at byte 17")))
        .expect_err("parse failure must not swap");
    assert_eq!(err.kind(), "parse");

    // Panic mid-build (the panic-mid-shred path) is contained and typed.
    let err = engine
        .reload_with(|| panic!("shredder exploded"))
        .expect_err("panic must not swap");
    assert_eq!(err.kind(), "panic");
    assert!(err.to_string().contains("shredder exploded"));

    // Builder that loads a malformed document through the real engine
    // path: the staging XmlDb fails, the serving one never sees it.
    let err = engine
        .reload_with(|| {
            let mut db = XmlDb::new(&figure1_schema()).map_err(ReloadError::from)?;
            db.load_xml("<A><B></A>").map_err(ReloadError::from)?;
            db.finalize().map_err(ReloadError::from)?;
            Ok(db)
        })
        .expect_err("malformed XML must not swap");
    assert!(matches!(err, ReloadError::Parse(_) | ReloadError::Shred(_)));

    assert_eq!(engine.version(), 1, "no failure may bump the version");
    let replay = engine.query("/A/B/C/D").expect("replay");
    assert_eq!(
        replay.rows, baseline.rows,
        "old snapshot must serve unchanged"
    );
    assert_eq!(replay.snapshot_version, 1);

    assert_eq!(reg.counter("engine.reload_attempts") - attempts0, 3);
    assert_eq!(reg.counter("engine.reload_failures") - failures0, 3);
    assert_eq!(reg.counter("engine.reload_swaps") - swaps0, 0);
}

#[test]
fn concurrent_reload_gets_typed_busy() {
    let _g = counter_lock();
    let reg = obs::Registry::global();
    let busy0 = reg.counter("engine.reload_busy");
    let engine = SharedEngine::new(build(1));
    let engine2 = engine.clone();

    // The first reload blocks inside its builder until the second reload
    // has been refused, proving Busy comes back while staging is live.
    let (enter_tx, enter_rx) = std::sync::mpsc::channel::<()>();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let staging = std::thread::spawn(move || {
        engine2.reload_with(move || {
            enter_tx.send(()).unwrap();
            done_rx.recv().unwrap();
            Ok(build(2))
        })
    });

    enter_rx.recv().unwrap();
    let err = engine
        .reload_with(|| Ok(build(9)))
        .expect_err("second concurrent reload must be refused");
    assert_eq!(err, ReloadError::Busy);
    assert!(err.is_retryable());

    done_tx.send(()).unwrap();
    let snap = staging.join().unwrap().expect("first reload succeeds");
    assert_eq!(snap.version(), 2);
    assert_eq!(reg.counter("engine.reload_busy") - busy0, 1);

    // After the staging lock is released, reload works again.
    assert_eq!(engine.reload_with(|| Ok(build(3))).unwrap().version(), 3);
}

#[test]
fn queries_racing_a_swap_see_exactly_one_version() {
    let engine = SharedEngine::new(build(2));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    let mut workers = Vec::new();
    for _ in 0..4 {
        let engine = engine.clone();
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let r = engine
                    .query_with_limits("/A/B/C/D", QueryLimits::none())
                    .expect("query during reload storm");
                // Version v serves 2 rows when odd-generation (1,3,5…
                // loaded doc(2)) and 5 rows when even-generation: each
                // result must be internally consistent with exactly the
                // version it claims.
                let expect = if r.snapshot_version % 2 == 1 { 2 } else { 5 };
                assert_eq!(
                    r.rows.rows.len(),
                    expect,
                    "rows inconsistent with snapshot version {}",
                    r.snapshot_version
                );
                checked += 1;
            }
            checked
        }));
    }

    for gen in 0..10 {
        let n = if gen % 2 == 0 { 5 } else { 2 };
        engine.reload_with(|| Ok(build(n))).expect("reload");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let checked: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(checked > 0, "workers must have observed at least one query");
    assert_eq!(engine.version(), 11);
}

#[test]
fn snapshot_drop_deferred_until_last_pin_releases() {
    let _g = counter_lock();
    let engine = SharedEngine::new(build(2));
    let pinned = engine.snapshot();
    assert_eq!(pinned.version(), 1);

    let retired0 = ppf_core::snapshots_retired();
    let live0 = ppf_core::snapshots_live();

    engine.reload_with(|| Ok(build(4))).expect("reload");

    // The superseded snapshot is still pinned: nothing retired, one more
    // snapshot alive, and the pin still answers from version 1.
    assert_eq!(ppf_core::snapshots_retired(), retired0);
    assert_eq!(ppf_core::snapshots_live(), live0 + 1);
    let old = pinned
        .query_with_limits("/A/B/C/D", QueryLimits::none())
        .expect("pinned snapshot still queryable");
    assert_eq!(old.snapshot_version, 1);
    assert_eq!(old.rows.rows.len(), 2);

    drop(pinned);
    assert_eq!(
        ppf_core::snapshots_retired(),
        retired0 + 1,
        "dropping the last pin must retire the superseded snapshot"
    );
    assert_eq!(ppf_core::snapshots_live(), live0);
    assert_eq!(engine.query("/A/B/C/D").unwrap().rows.rows.len(), 4);
}

#[test]
fn reload_slow_builder_does_not_block_queries() {
    let engine = SharedEngine::new(build(2));
    let engine2 = engine.clone();
    let (enter_tx, enter_rx) = std::sync::mpsc::channel::<()>();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let reloader = std::thread::spawn(move || {
        engine2.reload_with(move || {
            enter_tx.send(()).unwrap();
            done_rx.recv().unwrap();
            Ok(build(7))
        })
    });
    enter_rx.recv().unwrap();
    // Builder is parked mid-stage; the serving path must stay open.
    let r = engine.query("/A/B/C/D").expect("query during staging");
    assert_eq!(r.snapshot_version, 1);
    assert_eq!(r.rows.rows.len(), 2);
    done_tx.send(()).unwrap();
    reloader.join().unwrap().expect("staged reload lands");
    assert_eq!(engine.query("/A/B/C/D").unwrap().snapshot_version, 2);
}
