//! Golden tests for the SQL shapes of the paper's Tables 3–6 (modulo
//! documented renamings: attributes are `attr_x` instead of `x`, and our
//! regexes are the precise forms rather than the paper's loose `.*/F`
//! spellings — see DESIGN.md).

use ppf_core::XmlDb;
use xmlschema::figure1_schema;

fn db() -> XmlDb {
    let mut db = XmlDb::new(&figure1_schema()).expect("db");
    db.load_xml(
        "<A x='4'><B><C><D x='1'>9</D></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
         <B><G><G/></G></B></A>",
    )
    .expect("load");
    db.finalize().expect("indexes");
    db
}

fn sql(db: &XmlDb, q: &str) -> String {
    db.sql_for(q)
        .unwrap_or_else(|e| panic!("{q}: {e}"))
        .unwrap_or_else(|| panic!("{q}: statically empty"))
}

#[test]
fn table3_row1_forward_with_predicate() {
    // /A[@x=3]/B/C//F — prominent relations A and F only; B and C are
    // absorbed into the path filter (that is the paper's headline point).
    // Table 3's SQL shows the filter, i.e. the pre-§4.5 form:
    let mut d = db();
    d.set_path_marking(false);
    let s = sql(&d, "/A[@x=3]/B/C//F");
    assert!(
        s.contains("from A, Paths A_Paths, F, Paths F_Paths"),
        "sql: {s}"
    );
    assert!(
        s.contains("REGEXP_LIKE(F_Paths.path, '^/A/B/C(/[^/]+)*/F$')"),
        "sql: {s}"
    );
    assert!(
        s.contains("F.dewey_pos > A.dewey_pos and F.dewey_pos < A.dewey_pos || x'FF'"),
        "sql: {s}"
    );
    assert!(s.contains("A.attr_x = 3"), "sql: {s}");
    assert!(s.ends_with("order by dewey_pos"), "sql: {s}");
    // No B or C relation joined.
    assert!(!s.contains(" B,"), "sql: {s}");

    // With the §4.5 marking ON, even this filter is proven redundant
    // (F's unique root path /A/B/C/E/F matches the regex): no Paths at
    // all, strictly better than the paper's Table 3 form.
    let s2 = sql(&db(), "/A[@x=3]/B/C//F");
    assert!(!s2.contains("Paths"), "sql: {s2}");
}

#[test]
fn table3_row2_fk_join_for_single_child_step() {
    // /A[@x=3]/B: the child step becomes a foreign-key join, and B's path
    // filter is omitted entirely (B is U-P: its only path is /A/B).
    let s = sql(&db(), "/A[@x=3]/B");
    assert!(s.contains("B.par_id = A.id"), "sql: {s}");
    assert!(s.contains("A.attr_x = 3"), "sql: {s}");
    assert!(!s.contains("Paths"), "U-P must omit the Paths join: {s}");
}

#[test]
fn table3_row2_without_marking_uses_exact_path() {
    // With the §4.5 optimization off, the filter appears as an exact
    // string equality (the pattern has no wildcards) — Table 3(2)'s
    // `B_paths.path = '/A/B'`.
    let mut db = db();
    db.set_path_marking(false);
    let s = sql(&db, "/A/B");
    assert!(s.contains("B_Paths.path = '/A/B'"), "sql: {s}");
}

#[test]
fn table3_row3_backward_path() {
    // //F/parent::D/ancestor::B — F filtered by the refined backward
    // regex; B joined by a Dewey ancestor join; statically D never has an
    // F child in Figure 1, so the translation is empty.
    let db = db();
    let t = db
        .translate("//F/parent::D/ancestor::B")
        .expect("translate");
    assert!(
        t.stmt.is_none(),
        "schema navigation should prove /…/D/F impossible"
    );
    // The E-variant is feasible and shows the expected shape (Dewey
    // ancestor join; with marking off the refined regex appears).
    let s = sql(&db, "//F/parent::E/ancestor::B");
    assert!(
        s.contains("F.dewey_pos > B.dewey_pos and F.dewey_pos < B.dewey_pos || x'FF'"),
        "sql: {s}"
    );
    let mut d = XmlDb::new(&figure1_schema()).expect("db");
    d.set_path_marking(false);
    let s2 = d
        .sql_for("//F/parent::E/ancestor::B")
        .expect("sql")
        .expect("feasible");
    assert!(
        s2.contains("/E/F$"),
        "refined regex mentions the parent: {s2}"
    );
    assert!(
        s2.contains("/B"),
        "refined regex mentions the ancestor: {s2}"
    );
}

#[test]
fn table4_following_sibling() {
    // //D[@x=4]/following-sibling::E
    let s = sql(&db(), "//D[@x=4]/following-sibling::E");
    assert!(s.contains("E.dewey_pos > D.dewey_pos"), "sql: {s}");
    assert!(s.contains("E.par_id = D.par_id"), "sql: {s}");
    assert!(s.contains("D.attr_x = 4"), "sql: {s}");
}

#[test]
fn table4_preceding() {
    // //D[@x=4]/preceding::H — H does not exist in Figure 1's schema; use
    // G to check the Dewey condition of Table 2 row 5.
    let s = sql(&db(), "//E[..]/preceding::D");
    assert!(s.contains("E.dewey_pos > D.dewey_pos || x'FF'"), "sql: {s}");
}

#[test]
fn table5_row1_predicate_subselect() {
    // /A/B[C/E/F=2]: the predicate becomes exists(...) correlated via a
    // Dewey join, with the inner path folded into one regex.
    let s = sql(&db(), "/A/B[C/E/F=2]");
    assert!(s.contains("exists (select NULL from F"), "sql: {s}");
    assert!(
        s.contains("F.dewey_pos > B.dewey_pos and F.dewey_pos < B.dewey_pos || x'FF'"),
        "sql: {s}"
    );
    assert!(s.contains("F.text = 2"), "sql: {s}");
}

#[test]
fn table5_row2_backward_predicates_fold_into_path_filter() {
    // //F[parent::D or ancestor::G] — backward-only predicate clauses use
    // path-id filtering instead of structural joins. In Figure 1, F is
    // U-P (unique path /A/B/C/E/F), so both clauses resolve statically:
    // parent::D → false, ancestor::G → false ⇒ statically empty.
    let db = db();
    let t = db
        .translate("//F[parent::D or ancestor::G]")
        .expect("translate");
    assert!(t.stmt.is_none(), "statically disprovable predicate");
    // A satisfiable variant: //F[parent::E or ancestor::G].
    let s = sql(&db, "//F[parent::E or ancestor::G]");
    // Statically true (parent::E always holds for F) — predicate folds to
    // nothing and no G relation is joined.
    assert!(
        !s.contains(" G"),
        "no structural join for the predicate: {s}"
    );
}

#[test]
fn table5_row2_edge_mapping_uses_regexp_conditions() {
    // Under the Edge mapping nothing is static: the same query must show
    // the two REGEXP_LIKE clauses OR-ed, as in the paper's Table 5(2).
    let mut db = ppf_core::EdgeDb::new();
    db.load_xml("<A><B><C><E><F>1</F></E></C></B></A>")
        .expect("load");
    db.finalize().expect("indexes");
    let s = db
        .sql_for("//F[parent::D or ancestor::G]")
        .expect("sql")
        .expect("non-empty");
    assert!(s.matches("REGEXP_LIKE").count() >= 3, "sql: {s}");
    assert!(s.contains(" or "), "sql: {s}");
    assert!(s.contains("/D/F$"), "sql: {s}");
    assert!(s.contains("/G(/[^/]+)*/F$"), "sql: {s}");
}

#[test]
fn table6_wildcard_in_predicate_splits_into_or_not_union() {
    // /A/B[C/*]: the ambiguous prominent step inside the predicate
    // produces OR-ed exists() clauses, not a UNION (§4.4).
    let s = sql(&db(), "/A/B[C/*]");
    assert!(!s.contains("union"), "sql: {s}");
    assert!(s.matches("exists (").count() == 2, "sql: {s}");
    assert!(s.contains(" or "), "sql: {s}");
}

#[test]
fn backbone_wildcard_splits_into_union() {
    // /A/B/* resolves to relations C and G → two UNION branches (§4.4).
    let s = sql(&db(), "/A/B/*");
    assert_eq!(s.matches("select distinct").count(), 2, "sql: {s}");
    assert!(s.contains("union"), "sql: {s}");
}

#[test]
fn recursion_is_one_regex_no_recursive_sql() {
    // §6: "a recursive path will be translated into an appropriate
    // regular expression" — G is I-P, so //G/G needs exactly one Paths
    // join and zero recursive SQL.
    let s = sql(&db(), "//G/G");
    assert_eq!(s.matches("REGEXP_LIKE").count(), 1, "sql: {s}");
    assert!(s.contains("(/[^/]+)*/G/G"), "sql: {s}");
    assert!(!s.contains("union"), "sql: {s}");
}

#[test]
fn up_relations_never_join_paths() {
    // §4.5: every step relation in /A/B/C/D has a unique path.
    let s = sql(&db(), "/A/B/C/D");
    assert!(!s.contains("Paths"), "sql: {s}");
    // A single FK-join chain is not even needed: only D is in FROM.
    assert!(s.contains("from D"), "sql: {s}");
}

#[test]
fn generated_sql_reparses() {
    // Everything we emit must be valid SQL for our own front end.
    let db = db();
    for q in [
        "/A[@x=3]/B/C//F",
        "/A/B[C/E/F=2]",
        "/A/B/*",
        "//G/G",
        "//D/following-sibling::E",
        "//F/parent::E/ancestor::B",
        "/A/B/G | /A/B/C",
    ] {
        let s = sql(&db, q);
        sqlexec::parse_sql(&s).unwrap_or_else(|e| panic!("reparse {q}: {e}\nsql: {s}"));
    }
}
