//! Tests for the instrumented query pipeline: the five-phase span tree
//! returned by `query_traced`, the `EngineStats` work counters, and the
//! `EXPLAIN ANALYZE` golden rendering over the Figure-1 corpus.

use ppf_core::{EdgeDb, XmlDb};
use sqlexec::explain_analyze;

fn figure1_xml() -> &'static str {
    "<A x='4'>\
       <B><C><D x='1'>9</D></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
       <B><G><G/></G></B>\
     </A>"
}

fn figure1_db() -> XmlDb {
    let schema = xmlschema::figure1_schema();
    let mut db = XmlDb::new(&schema).unwrap();
    db.load_xml(figure1_xml()).unwrap();
    db.finalize().unwrap();
    db
}

const PHASES: [&str; 5] = ["parse", "translate", "plan", "execute", "publish"];

#[test]
fn traced_query_covers_all_five_phases() {
    let db = figure1_db();
    let (result, trace) = db.query_traced("/A/B/C/D").unwrap();
    assert_eq!(result.ids().len(), 1);

    let root = trace.span_named("query").expect("root span");
    assert_eq!(root.parent, None);
    for phase in PHASES {
        let span = trace
            .span_named(phase)
            .unwrap_or_else(|| panic!("trace must contain a `{phase}` span"));
        assert_eq!(
            span.parent.map(|p| p.index()),
            Some(0),
            "{phase} under root"
        );
    }
    // Phases appear in pipeline order.
    let order: Vec<&str> = trace
        .spans()
        .iter()
        .skip(1)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(order, PHASES);
}

#[test]
fn traced_query_records_engine_work_counters() {
    let mut db = figure1_db();
    // Disable the §4.5 marking so the path filter is kept and the regex
    // VM provably runs.
    db.set_path_marking(false);
    let (result, trace) = db.query_traced("//C//F").unwrap();
    assert_eq!(result.ids().len(), 2);

    let e = &result.engine;
    // `//C//F` is one holistic PPF (a single path-index filter covers it).
    assert!(e.ppf_count >= 1, "{e:?}");
    assert_eq!(e.union_branches, 1, "{e:?}");
    assert!(e.path_filters >= 1, "{e:?}");
    assert!(e.path_candidates > 0, "{e:?}");
    assert!(
        e.path_survivors <= e.path_candidates,
        "survivors cannot exceed candidates: {e:?}"
    );
    assert!(
        e.vm_match_calls > 0,
        "path filter must run the regex VM: {e:?}"
    );
    // Matches are answered either by the lazy DFA (O(bytes), no Pike-VM
    // thread dispatches) or by the Pike VM fallback; either way the
    // regex engine must have done real work.
    assert!(e.vm_steps + e.dfa_matches > 0, "{e:?}");
    assert!(e.join_rows_in >= e.join_rows_out, "{e:?}");

    // The execute span carries the same counters.
    let exec_span = trace.span_named("execute").expect("execute span");
    let counter = |name: &str| {
        exec_span
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("execute span has no `{name}` counter"))
    };
    assert_eq!(counter("path_candidates"), e.path_candidates);
    assert_eq!(counter("path_survivors"), e.path_survivors);
    assert_eq!(counter("vm_match_calls"), e.vm_match_calls);
    assert_eq!(counter("rows_scanned"), result.stats.rows_scanned);
}

#[test]
fn statically_empty_query_still_traces_all_phases() {
    let db = figure1_db();
    // `Z` is not in the Figure-1 schema: translation proves it empty.
    let (result, trace) = db.query_traced("/A/Z").unwrap();
    assert!(result.rows.rows.is_empty());
    assert!(result.sql.is_none());
    for phase in PHASES {
        assert!(trace.span_named(phase).is_some(), "missing `{phase}`");
    }
}

#[test]
fn traced_query_trace_is_valid_json() {
    let db = figure1_db();
    let (_, trace) = db.query_traced("//E[F=1]").unwrap();
    let v = obs::json::parse(&trace.to_json()).expect("valid JSON");
    assert_eq!(v.get("label").and_then(|l| l.as_str()), Some("//E[F=1]"));
    let spans = v.get("spans").and_then(|s| s.as_array()).expect("spans");
    assert_eq!(spans.len(), 1 + PHASES.len());
}

#[test]
fn edge_mapping_queries_are_traced_too() {
    let mut db = EdgeDb::new();
    db.load_xml(figure1_xml()).unwrap();
    db.finalize().unwrap();
    let (result, trace) = db.query_traced("//C//F").unwrap();
    assert_eq!(result.ids().len(), 2);
    for phase in PHASES {
        assert!(trace.span_named(phase).is_some(), "missing `{phase}`");
    }
    // The Edge mapping never marks, so path filters always survive.
    assert!(result.engine.path_filters >= 1);
    assert!(result.engine.vm_match_calls > 0);
}

#[test]
fn queries_update_the_global_metrics_registry() {
    let db = figure1_db();
    let reg = obs::Registry::global();
    let before = reg.counter("engine.queries");
    db.query("//F").unwrap();
    db.query("//G").unwrap();
    assert!(reg.counter("engine.queries") >= before + 2);
    assert!(reg.histogram("engine.execute_ns").is_some());
}

// ------------------------------------------------------- explain analyze

/// Figure-1 queries whose plans exercise the interesting shapes: plain
/// child paths, descendant paths (path filters), predicates (EXISTS
/// subqueries), and value comparisons.
const ANALYZE_CORPUS: &[&str] = &[
    "/A/B/C/D",
    "//F",
    "//C//F",
    "/A/B[C/E/F=2]",
    "//E[F=1]",
    "//F/ancestor::B",
];

#[test]
fn explain_analyze_is_structurally_stable_on_figure1_queries() {
    let db = figure1_db();
    for q in ANALYZE_CORPUS {
        let stmt = db
            .translate(q)
            .unwrap()
            .stmt
            .unwrap_or_else(|| panic!("`{q}` should not be statically empty"));
        let out = explain_analyze(db.db(), &stmt).unwrap();

        // Every plan step line shows the estimate and the actuals.
        let step_lines: Vec<&str> = out.lines().filter(|l| l.contains(" via ")).collect();
        assert!(!step_lines.is_empty(), "`{q}`:\n{out}");
        for line in &step_lines {
            assert!(
                line.contains("(est "),
                "`{q}` step missing estimate: {line}"
            );
            assert!(
                line.contains("[actual: ") || line.contains("[actual: never executed]"),
                "`{q}` step missing actuals: {line}"
            );
        }
        // At least one step actually executed with full counters and
        // the estimation-quality columns.
        assert!(
            out.contains(" in, ") && out.contains(" probes, ") && out.contains(" ms, est="),
            "`{q}`:\n{out}"
        );
        assert!(
            out.contains(" act=") && out.contains(" q="),
            "`{q}`:\n{out}"
        );
        // The summary line totals the whole statement.
        let summary = out.lines().last().unwrap();
        assert!(summary.starts_with("actual: "), "`{q}`:\n{out}");
        assert!(summary.contains("rows_scanned="), "`{q}`:\n{out}");
        assert!(summary.contains("index_probes="), "`{q}`:\n{out}");
        assert!(summary.contains("subqueries="), "`{q}`:\n{out}");
    }
}

#[test]
fn explain_analyze_row_counts_match_execution() {
    let db = figure1_db();
    // //F returns two elements; the summary row count must agree with a
    // real execution of the same statement.
    let stmt = db.translate("//F").unwrap().stmt.unwrap();
    let out = explain_analyze(db.db(), &stmt).unwrap();
    assert!(out.contains("actual: 2 row(s) in "), "{out}");
}
