//! Property test: on randomly generated documents (conforming to a schema
//! with recursion, wildcard-inducing fan-out, attributes and text), the
//! PPF translation over both mappings must agree with the native XPath
//! evaluator for a pool of query templates.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xmldom::{Document, TreeBuilder};
use xpath::{evaluate, parse_xpath, Item};

use ppf_core::{EdgeDb, XmlDb};

/// Test schema: lib → shelf* ; shelf → book* | box* ; box → box? book*
/// (recursive); book has @id, @lang, title, author*, year.
fn schema() -> xmlschema::Schema {
    xmlschema::parse_schema(
        "root lib\n\
         lib = shelf*\n\
         shelf @loc = book* box*\n\
         box @depth:int = box? book*\n\
         book @id @lang = title author* year?\n\
         title : text\n\
         author : text\n\
         year : int\n",
    )
    .expect("schema")
}

/// Deterministic random document for a seed.
fn gen_doc(seed: u64, size: usize) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new();
    b.start_element("lib");
    let shelves = 1 + size % 3;
    for s in 0..shelves {
        b.start_element("shelf");
        if rng.gen_bool(0.7) {
            b.attribute("loc", format!("L{}", rng.gen_range(0..3)));
        }
        let books = rng.gen_range(0..4);
        for _ in 0..books {
            gen_book(&mut rng, &mut b);
        }
        let boxes = rng.gen_range(0..3);
        for _ in 0..boxes {
            gen_box(&mut rng, &mut b, 0);
        }
        b.end_element();
        let _ = s;
    }
    b.end_element();
    b.finish()
}

fn gen_book(rng: &mut StdRng, b: &mut TreeBuilder) {
    b.start_element("book");
    b.attribute("id", format!("b{}", rng.gen_range(0..6)));
    if rng.gen_bool(0.5) {
        b.attribute("lang", if rng.gen_bool(0.5) { "en" } else { "el" });
    }
    b.leaf("title", format!("t{}", rng.gen_range(0..4)));
    for _ in 0..rng.gen_range(0..3) {
        b.leaf("author", format!("a{}", rng.gen_range(0..4)));
    }
    if rng.gen_bool(0.7) {
        b.leaf("year", format!("{}", 1990 + rng.gen_range(0..20)));
    }
    b.end_element();
}

fn gen_box(rng: &mut StdRng, b: &mut TreeBuilder, depth: usize) {
    b.start_element("box");
    b.attribute("depth", format!("{depth}"));
    if depth < 3 && rng.gen_bool(0.4) {
        gen_box(rng, b, depth + 1);
    }
    for _ in 0..rng.gen_range(0..3) {
        gen_book(rng, b);
    }
    b.end_element();
}

const QUERIES: &[&str] = &[
    "/lib/shelf/book",
    "/lib/shelf/book/title",
    "//book",
    "//book/author",
    "//box//book",
    "//box/box/book",
    "/lib/shelf/*",
    "/lib/*/book",
    "//*[@id]",
    "//book[@id='b1']",
    "//book[@lang]",
    "//book[@lang='en']/title",
    "//book[year]",
    "//book[year>=2000]",
    "//book[year=1995]",
    "//book[not(year)]",
    "//book[author and year]",
    "//book[author or year]",
    "//book[title='t1']",
    "//book[author='a2']",
    "//shelf[book/author='a1']",
    "//shelf[@loc='L1']/book",
    "//book[ancestor::box]",
    "//book[parent::shelf]",
    "//book[parent::box]",
    "//box[parent::box]",
    "//book/parent::*",
    "//author/parent::book/title",
    "//box/ancestor::shelf",
    "//book/ancestor-or-self::*",
    "//title/following-sibling::author",
    "//author/preceding-sibling::title",
    "//book[1]",
    "//book[2]",
    "//shelf/book[1]/title",
    "//book[count(author) = 2]",
    "//book[count(author) = 0]",
    "//shelf[count(book) = 1]",
    "//box[@depth=1]",
    "//book[title = /lib/shelf/book/title]",
    "//shelf[book/title = box/book/title]",
    "/lib/shelf/book | //box/book",
    "//author[.='a1']",
    "//book[author][year]",
    "//title[following-sibling::author]",
    "//book[title and not(author)]",
];

fn native_ids(doc: &Document, loaded: &shred::LoadedDoc, q: &str) -> Vec<i64> {
    let expr = parse_xpath(q).expect("parse");
    let items = evaluate(doc, &expr).expect("native");
    let mut out: Vec<i64> = items
        .into_iter()
        .map(|i| match i {
            Item::Node(n) => loaded.element_ids[&n],
            Item::Attr(..) => panic!("element queries only"),
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn publish_roundtrips_generated_documents(seed in 0u64..10_000, size in 1usize..6) {
        // Shred → publish must reproduce the original serialization
        // byte-for-byte (the generator has no mixed content, which is the
        // only lossy case of the paper's mapping).
        let doc = gen_doc(seed, size);
        let mut db = XmlDb::new(&schema()).expect("schema db");
        let loaded = db.load(&doc).expect("load");
        db.finalize().expect("indexes");
        let root = *loaded.element_ids.values().min().expect("root id");
        let published = ppf_core::publish_element(db.store(), root).expect("publish");
        prop_assert_eq!(published, xmldom::to_xml(&doc));
    }

    #[test]
    fn ppf_sql_matches_native_on_random_documents(seed in 0u64..10_000, size in 1usize..6) {
        let doc = gen_doc(seed, size);

        let mut sa = XmlDb::new(&schema()).expect("schema db");
        let sa_loaded = sa.load(&doc).expect("load");
        sa.finalize().expect("indexes");

        let mut ed = EdgeDb::new();
        let ed_loaded = ed.load(&doc).expect("load");
        ed.finalize().expect("indexes");

        for q in QUERIES {
            let expected_sa = native_ids(&doc, &sa_loaded, q);
            let got_sa = {
                let r = sa.query(q).map_err(|e| {
                    TestCaseError::fail(format!("schema-aware {q}: {e}"))
                })?;
                let mut ids = r.ids();
                ids.sort();
                ids
            };
            prop_assert_eq!(&got_sa, &expected_sa,
                "schema-aware mismatch for {} (seed {})\nsql: {:?}",
                q, seed, sa.sql_for(q).ok().flatten());

            let expected_ed = native_ids(&doc, &ed_loaded, q);
            let got_ed = {
                let r = ed.query(q).map_err(|e| {
                    TestCaseError::fail(format!("edge {q}: {e}"))
                })?;
                let mut ids = r.ids();
                ids.sort();
                ids
            };
            prop_assert_eq!(&got_ed, &expected_ed,
                "edge mismatch for {} (seed {})\nsql: {:?}",
                q, seed, ed.sql_for(q).ok().flatten());
        }
    }
}
