//! Mid-flight cancellation under forced parallel execution.
//!
//! The contract: firing a query's [`CancelToken`] while partitioned
//! chunks are outstanding on the pool stops the query promptly (bounded
//! wall-clock, not "after the whole scan finishes"), surfaces as the
//! typed `cancelled` error, and leaves the engine's sharded caches
//! unpoisoned — the same engine keeps answering correctly afterwards.
//!
//! Lives in its own integration-test binary because it sizes the
//! process-wide pool and flips the parallel-mode thread-local.

use std::time::{Duration, Instant};

use ppf_core::{CancelToken, QueryError, QueryLimits, SharedEngine, XmlDb};
use sqlexec::ParallelMode;
use xmlschema::parse_schema;

/// Large enough that a full scan takes measurable time and partitioned
/// execution actually splits it into multiple pool chunks.
const BOOKS: usize = 6_000;

fn engine() -> SharedEngine {
    let schema = parse_schema(
        "root lib\n\
         lib = book*\n\
         book @id = title\n\
         title : text\n",
    )
    .expect("schema");
    let mut db = XmlDb::new(&schema).expect("db");
    let mut xml = String::from("<lib>");
    for i in 0..BOOKS {
        xml.push_str(&format!("<book id='b{i}'><title>T{i}</title></book>"));
    }
    xml.push_str("</lib>");
    db.load_xml(&xml).expect("load");
    db.finalize().expect("indexes");
    SharedEngine::new(db)
}

#[test]
fn cancel_mid_flight_under_forced_parallelism() {
    ppf_pool::set_threads(4);
    let engine = engine();
    let q = "/lib/book[title]";

    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    let baseline = engine.query(q).expect("baseline").ids().len();
    assert_eq!(baseline, BOOKS);
    let poison_before = sqlexec::cache_poison_recoveries();

    // Race the cancel against the query repeatedly, at staggered delays,
    // so the token fires at many different points in the pipeline —
    // before translation, during partitioned execution, after completion.
    let mut cancelled_seen = 0;
    for round in 0..40 {
        let token = CancelToken::new();
        let fire = token.clone();
        let delay = Duration::from_micros(50 * round as u64);
        let firer = std::thread::spawn(move || {
            std::thread::sleep(delay);
            fire.cancel();
        });

        let started = Instant::now();
        let outcome = engine.query_with_limits(q, QueryLimits::none().with_cancel_token(token));
        let elapsed = started.elapsed();
        firer.join().expect("firer thread");

        match outcome {
            Ok(result) => assert_eq!(result.ids().len(), BOOKS, "round {round}"),
            Err(QueryError::Cancelled(_)) => {
                cancelled_seen += 1;
                // Prompt: outstanding chunks must notice the token at
                // their next row-batch check, not run the scan out. The
                // bound is generous to stay robust on loaded CI, but far
                // below "ignored the token entirely".
                assert!(
                    elapsed < Duration::from_secs(5),
                    "round {round}: cancellation took {elapsed:?}"
                );
            }
            Err(other) => panic!("round {round}: unexpected error {other}"),
        }
    }
    sqlexec::set_parallel_mode(prev);

    // The races must have actually produced mid-flight cancellations,
    // not 40 untouched completions.
    assert!(
        cancelled_seen > 0,
        "no round observed a cancellation; the race never fired in time"
    );

    // No cancel path may have poisoned the sharded caches: recovery
    // counter untouched, and the engine still answers correctly both
    // parallel and serial.
    assert_eq!(
        sqlexec::cache_poison_recoveries(),
        poison_before,
        "cancellation poisoned a shared cache"
    );
    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    assert_eq!(engine.query(q).expect("parallel after").ids().len(), BOOKS);
    sqlexec::set_parallel_mode(ParallelMode::ForceOff);
    assert_eq!(engine.query(q).expect("serial after").ids().len(), BOOKS);
    sqlexec::set_parallel_mode(prev);
}

#[test]
fn pre_cancelled_token_aborts_immediately() {
    ppf_pool::set_threads(4);
    let engine = engine();
    let token = CancelToken::new();
    token.cancel();
    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    let started = Instant::now();
    let err = engine
        .query_with_limits(
            "/lib/book[title]",
            QueryLimits::none().with_cancel_token(token),
        )
        .expect_err("pre-cancelled token must abort the query");
    sqlexec::set_parallel_mode(prev);
    assert!(matches!(err, QueryError::Cancelled(_)), "got {err}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "pre-cancelled query still ran for {:?}",
        started.elapsed()
    );
}
