//! No-panic fuzz: arbitrary XPath, SQL and regex inputs pushed through
//! the public APIs must produce `Ok` or a typed error — never a panic,
//! abort or stack overflow. Runs with a 4-thread pool so the parallel
//! pipeline (partitioned scans, branch fan-out) is exercised too.
//!
//! Inputs mix raw character soup (parser surface) with structured
//! almost-valid fragments (translator/planner/executor surface): pure
//! noise rarely makes it past the lexer, so both kinds are needed for
//! real coverage.

use proptest::prelude::*;

use ppf_core::{QueryLimits, SharedEngine, XmlDb};
use sqlexec::Executor;
use xmlschema::figure1_schema;

fn engine() -> &'static SharedEngine {
    use std::sync::OnceLock;
    static ENGINE: OnceLock<SharedEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        ppf_pool::set_threads(4);
        let mut db = XmlDb::new(&figure1_schema()).expect("db");
        db.load_xml(
            "<A x='1'><B><C><D x='7'>1</D><D x='8'>2</D><E><F>10</F></E></C>\
             <G><G></G></G></B><B><C><D x='9'>3</D><E><F>20</F></E></C></B></A>",
        )
        .expect("load");
        db.finalize().expect("indexes");
        SharedEngine::new(db)
    })
}

/// Structured almost-valid XPath: axes, schema and non-schema names,
/// predicates with comparisons — deep enough to reach translation and
/// execution, not just the parser.
fn xpath_strategy() -> impl Strategy<Value = String> {
    let name = prop_oneof![
        Just("A".to_string()),
        Just("B".to_string()),
        Just("C".to_string()),
        Just("D".to_string()),
        Just("nope".to_string()),
        Just("*".to_string()),
    ];
    let step =
        (prop_oneof![Just("/"), Just("//")], name).prop_map(|(axis, n)| format!("{axis}{n}"));
    let pred = prop_oneof![
        Just(String::new()),
        Just("[@x='1']".to_string()),
        Just("[D=2]".to_string()),
        Just("[position()=1]".to_string()),
        Just("[".to_string()), // malformed on purpose
    ];
    (proptest::collection::vec(step, 1..5), pred)
        .prop_map(|(steps, pred)| format!("{}{pred}", steps.concat()))
}

/// 64 cases per property by default (fast enough for the local suite);
/// CI raises the sweep with `PROPTEST_CASES`.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn raw_xpath_soup_never_panics(input in "[/a-zA-Z@\\[\\]=0-9'\\*\\(\\):. ]{0,60}") {
        let _ = engine().query(&input);
    }

    #[test]
    fn structured_xpath_never_panics(q in xpath_strategy()) {
        let _ = engine().query(&q);
        // Limited runs must degrade to typed errors too, never panic.
        let _ = engine().query_with_limits(&q, QueryLimits::none().with_max_rows(5));
    }

    #[test]
    fn raw_sql_soup_never_panics(input in "[a-zA-Z0-9_'\\(\\),\\.\\*=<> ]{0,80}") {
        let snap = engine().snapshot();
        let exec = Executor::new(snap.db());
        let _ = exec.query(&input);
    }

    #[test]
    fn structured_sql_never_panics(
        table in "[a-zA-Z_]{1,12}",
        column in "[a-zA-Z_]{1,12}",
        value in any::<i64>(),
    ) {
        let snap = engine().snapshot();
        let exec = Executor::new(snap.db());
        let _ = exec.query(&format!("select {table}.{column} from {table} where {table}.{column} = {value}"));
        let _ = exec.query(&format!("select t.{column} from {table} t where regexp_like(t.{column}, '{table}')"));
    }

    #[test]
    fn arbitrary_regex_patterns_never_panic(pattern in "[a-z0-9.*+?()\\[\\]{}|^$\\\\,\\-]{0,30}", input in "[a-zA-Z0-9/]{0,40}") {
        if let Ok(re) = regexlite::Regex::new(&pattern) {
            let _ = re.is_match(&input);
        }
    }
}
