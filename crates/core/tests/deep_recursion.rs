//! Stress tests over deeply recursive documents: the I-P machinery, the
//! Dewey codec at depth, and the regex path filters must all hold up when
//! root-to-node paths are dozens of segments long.

use ppf_core::{EdgeDb, XmlDb};
use xmldom::TreeBuilder;
use xpath::{evaluate, parse_xpath, Item};

const DEPTH: usize = 40;

/// parlist/listitem towers of depth 40, with keywords sprinkled at every
/// fifth level.
fn deep_doc() -> xmldom::Document {
    let mut b = TreeBuilder::new();
    b.start_element("doc");
    b.start_element("parlist");
    for level in 0..DEPTH {
        b.start_element("listitem");
        if level % 5 == 0 {
            b.leaf("keyword", format!("k{level}"));
        }
        b.start_element("parlist");
    }
    // unwind: each level opened listitem + parlist
    for _ in 0..DEPTH {
        b.end_element(); // parlist
        b.end_element(); // listitem
    }
    b.end_element(); // outer parlist
    b.end_element(); // doc
    b.finish()
}

fn schema() -> xmlschema::Schema {
    xmlschema::parse_schema(
        "root doc\ndoc = parlist\nparlist = listitem*\nlistitem = keyword? parlist?\nkeyword : text",
    )
    .expect("schema")
}

const QUERIES: &[&str] = &[
    "//keyword",
    "//listitem//keyword",
    "//parlist/listitem/parlist/listitem/keyword",
    "//listitem[keyword]",
    "//keyword/ancestor::listitem",
    "//listitem[not(keyword)]",
    "//keyword[.='k20']/ancestor::listitem/keyword",
    "/doc//parlist//parlist//keyword",
];

#[test]
fn deep_recursion_equivalence() {
    let doc = deep_doc();
    let mut sa = XmlDb::new(&schema()).expect("db");
    let sa_loaded = sa.load(&doc).expect("load");
    sa.finalize().expect("indexes");
    let mut ed = EdgeDb::new();
    let ed_loaded = ed.load(&doc).expect("load");
    ed.finalize().expect("indexes");

    for q in QUERIES {
        let e = parse_xpath(q).expect("parse");
        let items = evaluate(&doc, &e).unwrap_or_else(|err| panic!("{q}: {err}"));
        let mut expected_sa: Vec<i64> = items
            .iter()
            .map(|i| match i {
                Item::Node(n) => sa_loaded.element_ids[n],
                _ => panic!("elements only"),
            })
            .collect();
        expected_sa.sort();
        let mut got = sa.query(q).unwrap_or_else(|err| panic!("{q}: {err}")).ids();
        got.sort();
        assert_eq!(got, expected_sa, "schema-aware {q}");

        let mut expected_ed: Vec<i64> = items
            .iter()
            .map(|i| match i {
                Item::Node(n) => ed_loaded.element_ids[n],
                _ => panic!("elements only"),
            })
            .collect();
        expected_ed.sort();
        let mut got = ed.query(q).unwrap_or_else(|err| panic!("{q}: {err}")).ids();
        got.sort();
        assert_eq!(got, expected_ed, "edge {q}");
    }
}

#[test]
fn all_recursive_relations_are_infinite_marked() {
    let m = xmlschema::Marking::analyze(&schema());
    for name in ["parlist", "listitem", "keyword"] {
        assert_eq!(
            m.mark(name),
            Some(&xmlschema::PathMark::Infinite),
            "{name} should be I-P"
        );
    }
    assert_eq!(
        m.mark("doc"),
        Some(&xmlschema::PathMark::Unique("/doc".into()))
    );
}

#[test]
fn dewey_depth_is_bounded_by_tree_depth() {
    let doc = deep_doc();
    let mut db = XmlDb::new(&schema()).expect("db");
    db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    // The deepest keyword sits ~80 levels down; its dewey_pos is a binary
    // string of 3 bytes per level and everything still works.
    let r = db.query("//keyword[.='k35']").expect("query");
    assert_eq!(r.rows.rows.len(), 1);
    let dewey = r.rows.rows[0][1].as_bytes().expect("dewey").len();
    assert!(dewey > 3 * 60, "deep dewey expected, got {dewey} bytes");
}

#[test]
fn regex_on_long_paths_stays_fast() {
    // A pathological pattern over an 80-segment path must complete
    // quickly (the Pike VM is linear; a backtracker would blow up).
    let doc = deep_doc();
    let mut db = XmlDb::new(&schema()).expect("db");
    db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    let t0 = std::time::Instant::now();
    let r = db
        .query("//parlist//listitem//parlist//listitem//keyword")
        .expect("query");
    assert!(!r.rows.rows.is_empty());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "took {:?}",
        t0.elapsed()
    );
}
