//! The engine's XPath-keyed query cache: warm repeats must skip parse,
//! translate and plan entirely (zero phase nanos, `plan_cache_hits`
//! set), give identical results, and invalidate whenever the database
//! mutates — most importantly after a new document load, which can
//! change the translation itself (§4.5 path marking depends on which
//! paths exist).

use ppf_core::{EdgeDb, XmlDb};

fn figure1_xml() -> &'static str {
    "<A x='4'>\
       <B><C><D x='1'>9</D></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
       <B><G><G/></G></B>\
     </A>"
}

fn figure1_db() -> XmlDb {
    let schema = xmlschema::figure1_schema();
    let mut db = XmlDb::new(&schema).unwrap();
    db.load_xml(figure1_xml()).unwrap();
    db.finalize().unwrap();
    db
}

const PHASES: [&str; 5] = ["parse", "translate", "plan", "execute", "publish"];

#[test]
fn warm_query_skips_parse_translate_and_plan() {
    let db = figure1_db();
    let q = "//C//F";

    let cold = db.query(q).unwrap();
    assert_eq!(cold.engine.plan_cache_hits, 0);
    assert!(cold.engine.parse_ns > 0, "{:?}", cold.engine);
    assert!(cold.engine.translate_ns > 0, "{:?}", cold.engine);
    assert!(cold.engine.plan_ns > 0, "{:?}", cold.engine);

    let (warm, trace) = db.query_traced(q).unwrap();
    assert_eq!(warm.engine.plan_cache_hits, 1);
    assert_eq!(warm.engine.parse_ns, 0, "{:?}", warm.engine);
    assert_eq!(warm.engine.translate_ns, 0, "{:?}", warm.engine);
    assert_eq!(warm.engine.plan_ns, 0, "{:?}", warm.engine);
    assert!(warm.engine.execute_ns > 0, "execution still runs");

    // Same answer, same SQL, same translate-time counters.
    assert_eq!(warm.ids(), cold.ids());
    assert_eq!(warm.sql, cold.sql);
    assert_eq!(warm.engine.ppf_count, cold.engine.ppf_count);
    assert_eq!(warm.engine.union_branches, cold.engine.union_branches);
    assert_eq!(warm.engine.path_filters, cold.engine.path_filters);

    // The trace keeps its five-phase shape even on the warm path.
    for phase in PHASES {
        assert!(trace.span_named(phase).is_some(), "missing `{phase}`");
    }
}

#[test]
fn statically_empty_queries_are_cached_too() {
    let db = figure1_db();
    let cold = db.query("/A/Z").unwrap();
    assert!(cold.sql.is_none());
    let warm = db.query("/A/Z").unwrap();
    assert!(warm.sql.is_none());
    assert_eq!(warm.engine.plan_cache_hits, 1);
    assert!(warm.rows.rows.is_empty());
}

#[test]
fn cache_invalidates_after_a_new_document_load() {
    let mut db = figure1_db();
    let q = "//C//F";

    let first = db.query(q).unwrap();
    assert_eq!(first.ids().len(), 2);
    assert_eq!(db.query(q).unwrap().engine.plan_cache_hits, 1);

    // Loading another document must drop the cached statement and plans:
    // the result now includes the new F elements, and the query re-runs
    // the cold path (plan_cache_hits back to 0, phases re-timed).
    db.load_xml("<A><B><C><E><F>9</F></E></C></B></A>").unwrap();
    db.finalize().unwrap();
    let second = db.query(q).unwrap();
    assert_eq!(second.engine.plan_cache_hits, 0);
    assert!(second.engine.translate_ns > 0, "{:?}", second.engine);
    assert_eq!(second.ids().len(), 3, "new document's F must appear");

    // And the re-cached entry serves warm repeats again.
    assert_eq!(db.query(q).unwrap().engine.plan_cache_hits, 1);
}

#[test]
fn cache_invalidates_when_translate_options_change() {
    let mut db = figure1_db();
    let q = "//C//F";
    let marked = db.query(q).unwrap();
    assert!(db.query(q).unwrap().engine.plan_cache_hits == 1);

    // Toggling §4.5 marking changes the generated SQL (path filters
    // reappear); a stale cached statement would silently keep the old
    // shape.
    db.set_path_marking(false);
    let unmarked = db.query(q).unwrap();
    assert_eq!(unmarked.engine.plan_cache_hits, 0);
    assert_eq!(unmarked.ids(), marked.ids());
    assert!(
        unmarked.engine.path_filters >= marked.engine.path_filters,
        "marking off keeps at least as many path filters"
    );
}

#[test]
fn edge_db_cache_behaves_the_same() {
    let mut db = EdgeDb::new();
    db.load_xml(figure1_xml()).unwrap();
    db.finalize().unwrap();
    let q = "//C//F";

    let cold = db.query(q).unwrap();
    let warm = db.query(q).unwrap();
    assert_eq!(warm.engine.plan_cache_hits, 1);
    assert_eq!(
        warm.engine.parse_ns + warm.engine.translate_ns + warm.engine.plan_ns,
        0
    );
    assert_eq!(warm.ids(), cold.ids());

    db.load_xml("<A><C><F>9</F></C></A>").unwrap();
    db.finalize().unwrap();
    let after = db.query(q).unwrap();
    assert_eq!(after.engine.plan_cache_hits, 0);
    assert_eq!(after.ids().len(), cold.ids().len() + 1);
}
