//! Panic containment and resource limits through the public engine API.
//!
//! The acceptance bar for the panic-free query lifecycle: an injected
//! mid-query pool-task panic fails only that query (as a typed error),
//! and the same [`SharedEngine`] serves correct results afterwards; a
//! query exceeding its deadline / row budget / cancel token aborts with
//! `QueryError::Limit` / `QueryError::Cancelled` while other queries on
//! the same engine are unaffected.
//!
//! Lives in its own integration-test binary: it sizes the process-wide
//! pool, flips the process-wide parallel-mode thread-local, and arms a
//! process-wide panic hook.

use std::time::Duration;

use ppf_core::{CancelToken, QueryError, QueryLimits, SharedEngine, XmlDb};
use sqlexec::ParallelMode;
use xmlschema::parse_schema;

fn engine() -> SharedEngine {
    let schema = parse_schema(
        "root lib\n\
         lib = book*\n\
         book @id = title\n\
         title : text\n",
    )
    .expect("schema");
    let mut db = XmlDb::new(&schema).expect("db");
    let mut xml = String::from("<lib>");
    for i in 0..600 {
        xml.push_str(&format!("<book id='b{i}'><title>T{i}</title></book>"));
    }
    xml.push_str("</lib>");
    db.load_xml(&xml).expect("load");
    db.finalize().expect("indexes");
    SharedEngine::new(db)
}

#[test]
fn injected_worker_panic_fails_one_query_and_engine_survives() {
    ppf_pool::set_threads(4);
    let engine = engine();
    let q = "/lib/book";
    let baseline = engine.query(q).expect("baseline").ids();
    assert_eq!(baseline.len(), 600);

    // Force the partitioned branch pipeline so a pool task actually runs,
    // then arm the one-shot injected panic inside the next worker task.
    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    sqlexec::exec::test_hooks::arm_worker_panic();
    let err = engine
        .query(q)
        .expect_err("the armed query must fail, not bring the process down");
    sqlexec::set_parallel_mode(prev);

    match &err {
        QueryError::Exec(msg) => assert!(
            msg.contains("panicked") && msg.contains("injected worker panic"),
            "unexpected exec message: {msg}"
        ),
        other => panic!("expected QueryError::Exec, got {other:?}"),
    }

    // The very same engine keeps answering correctly afterwards.
    for _ in 0..3 {
        assert_eq!(engine.query(q).expect("post-panic query").ids(), baseline);
    }

    // The failure is classified in the process-wide registry.
    let reg = obs::Registry::global();
    assert!(reg.counter("engine.query_errors") >= 1);
    assert!(reg.counter("engine.query_errors.exec") >= 1);
    // The poison-recovery mirrors exist as registry counters (zero is
    // fine: pool tasks are caught per-task, before any lock poisons).
    let snapshot = reg.snapshot();
    for name in [
        "pool.poison_recoveries",
        "regex.poison_recoveries",
        "sqlexec.cache_poison_recoveries",
        "engine.cache_poison_recoveries",
    ] {
        assert!(
            snapshot.counters.iter().any(|(k, _)| k == name),
            "registry is missing the {name} mirror"
        );
    }
}

#[test]
fn row_budget_aborts_with_limit_error_and_others_run_on() {
    ppf_pool::set_threads(4);
    let engine = engine();
    let q = "/lib/book/title";
    let baseline = engine.query(q).expect("baseline").ids();

    let err = engine
        .query_with_limits(q, QueryLimits::none().with_max_rows(10))
        .expect_err("10-row budget cannot cover a 600-book scan");
    match &err {
        QueryError::Limit(msg) => {
            assert!(msg.contains("row budget exceeded"), "{msg}")
        }
        other => panic!("expected QueryError::Limit, got {other:?}"),
    }
    assert!(err.is_aborted());

    // An unlimited query on the same engine is unaffected, as is a
    // limited one with enough budget.
    assert_eq!(engine.query(q).expect("unlimited").ids(), baseline);
    assert_eq!(
        engine
            .query_with_limits(q, QueryLimits::none().with_max_rows(1_000_000))
            .expect("roomy budget")
            .ids(),
        baseline
    );
    assert!(obs::Registry::global().counter("engine.limit_aborts") >= 1);
}

#[test]
fn expired_deadline_aborts_with_limit_error() {
    let engine = engine();
    let err = engine
        .query_with_limits(
            "/lib/book",
            QueryLimits::none().with_timeout(Duration::ZERO),
        )
        .expect_err("zero timeout must abort");
    match &err {
        QueryError::Limit(msg) => assert!(msg.contains("deadline exceeded"), "{msg}"),
        other => panic!("expected QueryError::Limit, got {other:?}"),
    }
    // Same engine still answers.
    assert_eq!(
        engine.query("/lib/book").expect("after abort").ids().len(),
        600
    );
}

#[test]
fn fired_cancel_token_aborts_with_cancelled_error() {
    let engine = engine();
    let token = CancelToken::new();
    token.cancel();
    let err = engine
        .query_with_limits(
            "/lib/book",
            QueryLimits::none().with_cancel_token(token.clone()),
        )
        .expect_err("fired token must abort");
    match &err {
        QueryError::Cancelled(msg) => assert!(msg.contains("cancel token"), "{msg}"),
        other => panic!("expected QueryError::Cancelled, got {other:?}"),
    }
    assert_eq!(err.kind(), "cancelled");

    // A fresh token does not abort anything.
    let calm = CancelToken::new();
    assert_eq!(
        engine
            .query_with_limits("/lib/book", QueryLimits::none().with_cancel_token(calm),)
            .expect("unfired token")
            .ids()
            .len(),
        600
    );
    assert!(obs::Registry::global().counter("engine.query_cancelled") >= 1);
}
