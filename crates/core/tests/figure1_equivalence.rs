//! End-to-end equivalence on the paper's Figure 1 document: for a broad
//! query corpus, the PPF-translated SQL (schema-aware AND Edge-like) must
//! return exactly the elements the native XPath evaluator returns.

use ppf_core::{EdgeDb, XmlDb};
use xmldom::Document;
use xpath::{evaluate, parse_xpath, Item};

fn figure1_doc() -> Document {
    xmldom::parse(
        "<A x='4'>\
           <B><C><D x='1'>9</D></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
           <B><G><G/></G></B>\
         </A>",
    )
    .expect("xml")
}

/// Queries covering every axis, wildcards, predicates, unions.
const CORPUS: &[&str] = &[
    "/A",
    "/A/B",
    "/A/*",
    "/A/B/C",
    "/A/B/C/D",
    "/A/B/C/E/F",
    "//F",
    "//G",
    "//C//F",
    "/A//C",
    "/A/B//F",
    "//C/*/F",
    "/A/*/C",
    "/descendant-or-self::G",
    "//G//G",
    "//G/G",
    "/A[@x=4]//C",
    "/A[@x=5]//C",
    "/A[@x]/B",
    "/A/B[C]",
    "/A/B[G]",
    "/A/B[not(C)]",
    "/A/B[C and G]",
    "/A/B[C or G]",
    "/A/B[C/E/F=2]",
    "/A/*[C//F=2]",
    "/A/B[C/*/F=2]",
    "//E[F=1]",
    "//E[F=3]",
    "//F[.=2]",
    "//D[@x=1]",
    "//D[@x=2]",
    "//F/parent::E",
    "//F/parent::C",
    "//F/ancestor::B",
    "//F/ancestor::*",
    "//F/ancestor-or-self::F",
    "//G/ancestor-or-self::G",
    "//F/parent::E/parent::C",
    "//F/ancestor::C/D",
    "//D/following-sibling::*",
    "//D/following-sibling::E",
    "//C/following-sibling::G",
    "//G/preceding-sibling::C",
    "//E/preceding-sibling::D",
    "//D/following::F",
    "//D/following::G",
    "//G/preceding::F",
    "//F/following::G",
    "//F[parent::E]",
    "//F[parent::D]",
    "//*[parent::C]",
    "//G[parent::G or parent::B]",
    "//F[ancestor::B]",
    "//F[ancestor::G]",
    "//*[@x]",
    "/A/B/G | /A/B/C",
    "//D | //F",
    "//C[D]/following-sibling::C",
    "//B[C/D]",
    "//B[./C]",
    "//F[not(parent::D) and ancestor::B]",
    "/A/B/C/E/F[2]",
    "/A/B[1]/C",
    "/A/B[2]/G",
    "//D/following-sibling::E/F",
    "//F/following::G/G",
    "//C/following-sibling::G/preceding-sibling::C",
    "//G/preceding::D/following-sibling::E",
    "//F/ancestor::C/following-sibling::G",
    "//B/C/following-sibling::C[E]",
    "//E[count(F) = 2]",
    "//B[count(C) = 0]",
    "//C[count(D) = 1]",
    "//C[count(E) = 1]",
];

fn native_ids(doc: &Document, loaded: &shred::LoadedDoc, q: &str) -> Vec<i64> {
    let expr = parse_xpath(q).expect("parse");
    let items = evaluate(doc, &expr).expect("native eval");
    let mut out: Vec<i64> = items
        .into_iter()
        .map(|i| match i {
            Item::Node(n) => *loaded
                .element_ids
                .get(&n)
                .unwrap_or_else(|| panic!("result node {n:?} should be an element")),
            Item::Attr(..) => panic!("corpus queries return elements"),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn schema_aware_matches_native() {
    let doc = figure1_doc();
    let mut db = XmlDb::new(&xmlschema::figure1_schema()).expect("db");
    let loaded = db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    for q in CORPUS {
        let expected = native_ids(&doc, &loaded, q);
        let result = db.query(q).unwrap_or_else(|e| panic!("query {q}: {e}"));
        let mut got = result.ids();
        got.sort();
        assert_eq!(got, expected, "query {q}\nsql: {:?}", result.sql);
    }
}

#[test]
fn edge_like_matches_native() {
    let doc = figure1_doc();
    let mut db = EdgeDb::new();
    let loaded = db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    for q in CORPUS {
        let expected = native_ids(&doc, &loaded, q);
        let result = db.query(q).unwrap_or_else(|e| panic!("query {q}: {e}"));
        let mut got = result.ids();
        got.sort();
        assert_eq!(got, expected, "query {q}\nsql: {:?}", result.sql);
    }
}

#[test]
fn marking_toggle_is_transparent() {
    // §4.5 optimization must never change results, only the SQL.
    let doc = figure1_doc();
    let mut db = XmlDb::new(&xmlschema::figure1_schema()).expect("db");
    db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    let mut db_off = XmlDb::new(&xmlschema::figure1_schema()).expect("db");
    db_off.set_path_marking(false);
    db_off.load(&doc).expect("load");
    db_off.finalize().expect("indexes");
    for q in CORPUS {
        let a = db.query(q).unwrap_or_else(|e| panic!("query {q}: {e}"));
        let b = db_off.query(q).unwrap_or_else(|e| panic!("query {q}: {e}"));
        let mut ia = a.ids();
        let mut ib = b.ids();
        ia.sort();
        ib.sort();
        assert_eq!(ia, ib, "marking changed results for {q}");
    }
}

#[test]
fn results_arrive_in_document_order() {
    let doc = figure1_doc();
    let mut db = XmlDb::new(&xmlschema::figure1_schema()).expect("db");
    db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    for q in ["//G", "//D | //F", "/A/B/*"] {
        let ids = db.query(q).expect("query").ids();
        // Loader ids follow document order, so sorted == document order.
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "out of order for {q}");
    }
}

#[test]
fn positional_predicate_unsupported_cases_error_cleanly() {
    let mut db = XmlDb::new(&xmlschema::figure1_schema()).expect("db");
    db.load(&figure1_doc()).expect("load");
    db.finalize().expect("indexes");
    // position() on a descendant-axis step is outside the SQL subset —
    // must be a clean error, not a wrong answer.
    assert!(db.query("//F[position() = last()]").is_err());
}
