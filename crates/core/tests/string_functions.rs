//! String-function predicates: contains()/starts-with() must translate to
//! regex conditions and agree with the native evaluator.

use ppf_core::{EdgeDb, XmlDb};
use xpath::{evaluate, parse_xpath, Item};

fn doc() -> xmldom::Document {
    xmldom::parse(
        "<lib>\
           <book><title>Relational Databases</title></book>\
           <book><title>Relational Algebra</title></book>\
           <book><title>XML and relations</title></book>\
           <book><title>regex+special[chars]</title></book>\
         </lib>",
    )
    .expect("xml")
}

fn schema() -> xmlschema::Schema {
    xmlschema::parse_schema("root lib\nlib = book*\nbook = title\ntitle : text").expect("schema")
}

const QUERIES: &[&str] = &[
    "//book[contains(title, 'Relational')]",
    "//book[starts-with(title, 'Relational')]",
    "//book[starts-with(title, 'XML')]",
    "//book[contains(title, 'relations')]",
    "//book[contains(title, 'regex+special[chars]')]",
    "//book[starts-with(title, 'regex+')]",
    "//book[not(contains(title, 'Relational'))]",
    "//title[string-length(.) > 15]",
    "//title[normalize-space(.) = 'XML and relations']",
];

#[test]
fn native_evaluation() {
    let d = doc();
    let expected = [2usize, 2, 1, 1, 1, 1, 2, 4, 1];
    for (q, want) in QUERIES.iter().zip(expected) {
        let e = parse_xpath(q).expect("parse");
        let items = evaluate(&d, &e).unwrap_or_else(|err| panic!("{q}: {err}"));
        assert_eq!(items.len(), want, "query {q}");
    }
}

#[test]
fn sql_translation_matches_native_where_supported() {
    let d = doc();
    let mut sa = XmlDb::new(&schema()).expect("db");
    let sa_loaded = sa.load(&d).expect("load");
    sa.finalize().expect("indexes");
    let mut ed = EdgeDb::new();
    let ed_loaded = ed.load(&d).expect("load");
    ed.finalize().expect("indexes");

    // contains()/starts-with() translate; string-length/normalize-space
    // stay native-only (clean errors, tested below).
    for q in &QUERIES[..7] {
        let e = parse_xpath(q).expect("parse");
        let native: Vec<i64> = evaluate(&d, &e)
            .expect("native")
            .into_iter()
            .map(|i| match i {
                Item::Node(n) => sa_loaded.element_ids[&n],
                _ => panic!("elements only"),
            })
            .collect();
        let mut got = sa.query(q).unwrap_or_else(|err| panic!("{q}: {err}")).ids();
        got.sort();
        let mut want = native.clone();
        want.sort();
        assert_eq!(got, want, "schema-aware {q}");

        let native_ed: Vec<i64> = evaluate(&d, &e)
            .expect("native")
            .into_iter()
            .map(|i| match i {
                Item::Node(n) => ed_loaded.element_ids[&n],
                _ => panic!("elements only"),
            })
            .collect();
        let mut got = ed.query(q).unwrap_or_else(|err| panic!("{q}: {err}")).ids();
        got.sort();
        let mut want = native_ed;
        want.sort();
        assert_eq!(got, want, "edge {q}");
    }
}

#[test]
fn unsupported_string_functions_error_cleanly() {
    let mut sa = XmlDb::new(&schema()).expect("db");
    sa.load(&doc()).expect("load");
    sa.finalize().expect("indexes");
    for q in [
        "//title[string-length(.) > 15]",
        "//title[normalize-space(.) = 'x']",
    ] {
        assert!(sa.query(q).is_err(), "{q} should be SQL-unsupported");
    }
}

#[test]
fn metacharacters_cannot_escape_the_regex() {
    // A needle full of regex syntax must match literally.
    let mut sa = XmlDb::new(&schema()).expect("db");
    sa.load(&doc()).expect("load");
    sa.finalize().expect("indexes");
    let r = sa
        .query("//book[contains(title, '+special[')]")
        .expect("query");
    assert_eq!(r.rows.rows.len(), 1);
    let r2 = sa.query("//book[contains(title, '.*')]").expect("query");
    assert_eq!(r2.rows.rows.len(), 0, "'.*' is a literal, not a wildcard");
}
