//! Error handling and boundary behaviour of the translator and engine:
//! unsupported constructs must fail cleanly (never silently return wrong
//! answers), and statically-empty queries must be detected.

use ppf_core::XmlDb;
use xmlschema::figure1_schema;

fn db() -> XmlDb {
    let mut db = XmlDb::new(&figure1_schema()).expect("db");
    db.load_xml("<A x='1'><B><C><D>1</D></C></B></A>")
        .expect("load");
    db.finalize().expect("indexes");
    db
}

#[test]
fn statically_empty_queries() {
    let db = db();
    // Names not in the schema, impossible nestings, unsatisfiable
    // attribute tests.
    for q in [
        "/Z",
        "/A/F",
        "//F/parent::D",
        "/B/A",
        "//D[@y=1]",
        "/A/parent::B",
    ] {
        let t = db.translate(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        assert!(t.stmt.is_none(), "{q} should be statically empty");
        let r = db.query(q).expect("empty result");
        assert!(r.rows.rows.is_empty());
        assert!(r.sql.is_none());
    }
}

#[test]
fn unsupported_constructs_error() {
    let db = db();
    for q in [
        "//B[position() = last()]", // last() needs windowing
        "//B[C][2]",                // positional after a filter predicate
        "//B[count(*) = 1]",        // ambiguous count
        "3",                        // not a path
        "B/C",                      // relative top-level path
    ] {
        assert!(db.query(q).is_err(), "{q} should be rejected");
    }
}

#[test]
fn malformed_xpath_is_a_parse_error() {
    let db = db();
    for q in ["//", "/A[", "/A]", "/A/unknown::B", "/A/@"] {
        assert!(db.query(q).is_err(), "{q} should fail to parse");
    }
}

#[test]
fn load_rejects_schema_violations() {
    let mut db = XmlDb::new(&figure1_schema()).expect("db");
    assert!(db.load_xml("<A><Zed/></A>").is_err());
    assert!(db.load_xml("<Wrong/>").is_err());
    assert!(db.load_xml("<A x='1'").is_err());
}

#[test]
fn queries_work_before_finalize_too() {
    // Indexes are an optimization; correctness must not depend on them.
    let mut db = XmlDb::new(&figure1_schema()).expect("db");
    db.load_xml("<A x='4'><B><C><D>7</D></C></B></A>")
        .expect("load");
    // no finalize()
    let r = db.query("//D").expect("query without indexes");
    assert_eq!(r.rows.rows.len(), 1);
}

#[test]
fn empty_database_returns_empty_results() {
    let db = XmlDb::new(&figure1_schema()).expect("db");
    let r = db.query("//F").expect("query on empty db");
    assert!(r.rows.rows.is_empty());
}

#[test]
fn multiple_documents_are_isolated() {
    let mut db = XmlDb::new(&figure1_schema()).expect("db");
    db.load_xml("<A x='1'><B><C><D>1</D></C></B></A>")
        .expect("doc1");
    db.load_xml("<A x='2'><B><G/></B></A>").expect("doc2");
    db.finalize().expect("indexes");
    // Per-document structural joins: the descendant join must not leak
    // across documents.
    let r = db.query("/A[@x=1]//G").expect("query");
    assert!(r.rows.rows.is_empty(), "G belongs to the other document");
    let r2 = db.query("/A[@x=2]//G").expect("query");
    assert_eq!(r2.rows.rows.len(), 1);
    let all = db.query("//A").expect("query");
    assert_eq!(all.rows.rows.len(), 2);
}

#[test]
fn attribute_projection_output() {
    let db = db();
    let r = db.query("/A/@x").expect("attribute query");
    assert_eq!(r.output, ppf_core::OutputKind::AttributeValue);
    assert_eq!(r.rows.rows.len(), 1);
    // value column holds the attribute
    let vi = r
        .rows
        .columns
        .iter()
        .position(|c| c == "value")
        .expect("value col");
    assert_eq!(r.rows.rows[0][vi], relstore::Value::Int(1));
}

#[test]
fn text_projection_output() {
    let db = db();
    let r = db.query("//D/text()").expect("text query");
    assert_eq!(r.output, ppf_core::OutputKind::TextValue);
    assert_eq!(r.rows.rows.len(), 1);
}
