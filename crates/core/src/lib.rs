//! `ppf_core` — PPF-based XPath processing on a relational back end.
//!
//! The primary contribution of the reproduced paper: XPath expressions are
//! split into *Primitive Path Fragments* (PPFs), each PPF is evaluated
//! holistically through a root-to-node path index filtered by a regular
//! expression, and consecutive PPFs are combined with structural joins
//! over a binary Dewey encoding (or foreign keys for single child/parent
//! steps).
//!
//! * [`ppf`] — PPF identification (§4.1)
//! * [`pattern`] — symbolic path patterns → `REGEXP_LIKE` patterns (Table 1)
//! * [`nav`] — schema-graph navigation for prominent-relation assignment
//! * [`translate`](translate/index.html) — the XPath→SQL translation (Algorithm 1, §4.3–4.5)
//! * [`engine`] — a high-level façade: load documents, run XPath, get rows
pub mod engine;
pub mod error;
pub mod nav;
pub mod pattern;
pub mod ppf;
pub mod publish;
pub mod translate;

pub use engine::{
    cache_poison_recoveries, concurrent_queries_in_flight, concurrent_queries_peak, snapshots_live,
    snapshots_retired, EdgeDb, EngineError, EngineSnapshot, EngineStats, QueryResult, SharedEngine,
    XmlDb,
};
pub use error::{QueryError, ReloadError};
pub use publish::publish_element;
pub use sqlexec::{CancelToken, QueryLimits};
pub use translate::{
    translate, Mapping, OutputKind, TranslateError, TranslateOptions, Translation,
};
