//! Symbolic root-to-node path patterns and their regular-expression
//! rendering (paper §4.1, Table 1).
//!
//! A [`Pattern`] describes the set of root-to-node paths a node can have,
//! as a sequence of segments: a fixed name, one arbitrary segment
//! (wildcard), or a *gap* — zero or more arbitrary segments (from `//`).
//! Keeping the structure (instead of a flat regex string) is what lets
//! backward axes *refine* previously generated parts: `//F/parent::D`
//! turns the pattern `«gap»/F` into `«gap»/D/F` by constraining the
//! segment before `F`.
//!
//! Rendering a set of alternative patterns produces one POSIX ERE like
//! `^((/[^/]+)*/B/D/F|(/[^/]+)*/B(/[^/]+)*/D/F)$`, the form fed to
//! `REGEXP_LIKE` over the `Paths` relation.

/// One segment of a path pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Seg {
    /// Exactly one segment with this element name.
    Name(String),
    /// Exactly one segment, any name (`*`).
    AnyOne,
    /// Zero or more segments (`//`).
    Gap,
}

/// A single path pattern: root-anchored sequence of segments.
pub type Pattern = Vec<Seg>;

/// A node test in pattern space. `AnyNode` (from `node()`) also accepts
/// the document root; `AnyElement` (from `*`) requires a non-empty path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTest {
    Name(String),
    AnyElement,
    AnyNode,
}

impl PatTest {
    /// Segment appended when this test selects one new path level.
    fn seg(&self) -> Seg {
        match self {
            PatTest::Name(n) => Seg::Name(n.clone()),
            PatTest::AnyElement | PatTest::AnyNode => Seg::AnyOne,
        }
    }
}

/// A set of alternative patterns. The empty set means *infeasible* — no
/// path can satisfy the constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    pub alts: Vec<Pattern>,
}

/// Cap on tracked alternatives; beyond it we widen to a conservative
/// superset rather than growing the regex unboundedly.
const MAX_ALTS: usize = 24;

impl PatternSet {
    /// Build a set directly from alternatives (normalizing).
    pub(crate) fn from_alts(alts: Vec<Pattern>) -> PatternSet {
        PatternSet { alts }.normalize()
    }

    /// The pattern of the document root (empty path).
    pub fn root() -> PatternSet {
        PatternSet { alts: vec![vec![]] }
    }

    /// A completely unconstrained node: `«gap»/segment`.
    pub fn any_element() -> PatternSet {
        PatternSet {
            alts: vec![vec![Seg::Gap, Seg::AnyOne]],
        }
    }

    /// An unknown location ending with the given test: used for
    /// order-axis PPFs (Algorithm 1 lines 6–7).
    pub fn ending_with(test: &PatTest) -> PatternSet {
        PatternSet {
            alts: vec![vec![Seg::Gap, test.seg()]],
        }
    }

    pub fn is_infeasible(&self) -> bool {
        self.alts.is_empty()
    }

    fn normalize(mut self) -> PatternSet {
        for p in &mut self.alts {
            normalize_pattern(p);
        }
        self.alts.sort();
        self.alts.dedup();
        // Simplify the alternative set:
        // 1. drop `short` when `long` = `short` with one extra «gap»
        //    inserted (a gap can be empty, so short ⊆ long);
        // 2. merge `prefix ++ rest` with `prefix ++ «gap»/any ++ rest`
        //    into `prefix ++ «gap» ++ rest` (0 extra ∪ ≥1 extra = ≥0).
        loop {
            let mut changed = false;
            'pairs: for i in 0..self.alts.len() {
                for j in 0..self.alts.len() {
                    if i == j {
                        continue;
                    }
                    let short = &self.alts[i];
                    let long = &self.alts[j];
                    // Rule 1: long = short with an extra Gap at position k.
                    if long.len() == short.len() + 1 {
                        for k in 0..long.len() {
                            if long[k] == Seg::Gap
                                && long[..k] == short[..k]
                                && long[k + 1..] == short[k..]
                            {
                                self.alts.remove(i);
                                changed = true;
                                break 'pairs;
                            }
                        }
                    }
                    // Rule 2: long = prefix ++ [Gap, AnyOne] ++ rest,
                    //        short = prefix ++ rest.
                    if long.len() == short.len() + 2 {
                        for k in 0..long.len() - 1 {
                            if long[k] == Seg::Gap
                                && long[k + 1] == Seg::AnyOne
                                && long[..k] == short[..k.min(short.len())]
                                && short.len() >= k
                                && long[k + 2..] == short[k..]
                            {
                                let mut rep: Pattern = short[..k].to_vec();
                                rep.push(Seg::Gap);
                                rep.extend(short[k..].iter().cloned());
                                normalize_pattern(&mut rep);
                                let (lo, hi) = (i.min(j), i.max(j));
                                self.alts.remove(hi);
                                self.alts.remove(lo);
                                self.alts.push(rep);
                                self.alts.sort();
                                self.alts.dedup();
                                changed = true;
                                break 'pairs;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if self.alts.len() > MAX_ALTS {
            // Widen: keep only the common last segment when one exists.
            let last = self.alts[0].last().cloned();
            let same = last.is_some() && self.alts.iter().all(|p| p.last() == last.as_ref());
            self.alts = if same {
                vec![vec![Seg::Gap, last.expect("checked same")]]
            } else {
                vec![vec![Seg::Gap, Seg::AnyOne]]
            };
        }
        self
    }

    /// Append a child step: `/n` or `/*`.
    pub fn child(&self, test: &PatTest) -> PatternSet {
        let seg = test.seg();
        PatternSet {
            alts: self
                .alts
                .iter()
                .map(|p| {
                    let mut q = p.clone();
                    q.push(seg.clone());
                    q
                })
                .collect(),
        }
        .normalize()
    }

    /// Append a descendant step: `«gap»/n`.
    pub fn descendant(&self, test: &PatTest) -> PatternSet {
        let last = test.seg();
        PatternSet {
            alts: self
                .alts
                .iter()
                .map(|p| {
                    let mut q = p.clone();
                    q.push(Seg::Gap);
                    q.push(last.clone());
                    q
                })
                .collect(),
        }
        .normalize()
    }

    /// `descendant-or-self::test` — self branch (constrain the current
    /// node) union descendant branch.
    pub fn descendant_or_self(&self, test: &PatTest) -> PatternSet {
        let mut alts = Vec::new();
        for p in &self.alts {
            alts.extend(constrain_last(p, test));
        }
        alts.extend(self.descendant(test).alts);
        PatternSet { alts }.normalize()
    }

    /// `self::test`.
    pub fn self_axis(&self, test: &PatTest) -> PatternSet {
        let mut alts = Vec::new();
        for p in &self.alts {
            alts.extend(constrain_last(p, test));
        }
        PatternSet { alts }.normalize()
    }

    /// `parent::test`. Returns `(parent_patterns, constrained_self)`:
    /// the patterns of the parent node, and the refined patterns of the
    /// *current* node (its path now known to run through such a parent).
    pub fn parent(&self, test: &PatTest) -> (PatternSet, PatternSet) {
        let mut parents = Vec::new();
        let mut selves = Vec::new();
        for p in &self.alts {
            for (prefix, last) in split_last(p) {
                for par in constrain_last(&prefix, test) {
                    let mut whole = par.clone();
                    whole.push(last.clone());
                    selves.push(whole);
                    parents.push(par);
                }
            }
        }
        (
            PatternSet { alts: parents }.normalize(),
            PatternSet { alts: selves }.normalize(),
        )
    }

    /// `ancestor::test` (or `ancestor-or-self` with `or_self`). Returns
    /// `(ancestor_patterns, constrained_self)` like [`PatternSet::parent`].
    pub fn ancestor(&self, test: &PatTest, or_self: bool) -> (PatternSet, PatternSet) {
        let mut ancestors = Vec::new();
        let mut selves = Vec::new();
        for p in &self.alts {
            if or_self {
                for s in constrain_last(p, test) {
                    ancestors.push(s.clone());
                    selves.push(s);
                }
            }
            for (prefix, suffix) in proper_cuts(p) {
                for anc in constrain_last(&prefix, test) {
                    let mut whole = anc.clone();
                    whole.extend(suffix.iter().cloned());
                    selves.push(whole);
                    ancestors.push(anc);
                }
            }
        }
        (
            PatternSet { alts: ancestors }.normalize(),
            PatternSet { alts: selves }.normalize(),
        )
    }

    /// Render the whole set as one anchored POSIX ERE.
    /// Infeasible sets have no regex (`None`).
    pub fn to_regex(&self) -> Option<String> {
        if self.alts.is_empty() {
            return None;
        }
        let bodies: Vec<String> = self.alts.iter().map(render_pattern).collect();
        Some(if bodies.len() == 1 {
            format!("^{}$", bodies[0])
        } else {
            format!("^({})$", bodies.join("|"))
        })
    }

    /// Does the set have exactly one alternative consisting only of fixed
    /// names? Then the path is fully determined (no filter needed if it
    /// matches the stored path).
    pub fn exact_path(&self) -> Option<String> {
        if self.alts.len() != 1 {
            return None;
        }
        let mut out = String::new();
        for seg in &self.alts[0] {
            match seg {
                Seg::Name(n) => {
                    out.push('/');
                    out.push_str(n);
                }
                _ => return None,
            }
        }
        Some(out)
    }
}

/// Constrain the node at the end of `p` to satisfy the test. Returns the
/// refined alternatives (possibly empty = infeasible).
pub(crate) fn constrain_last(p: &Pattern, test: &PatTest) -> Vec<Pattern> {
    match test {
        // node(): accepts anything, including the document root.
        PatTest::AnyNode => vec![p.clone()],
        // `*`: any element — the path must be non-empty.
        PatTest::AnyElement => {
            if p.iter().any(|s| matches!(s, Seg::Name(_) | Seg::AnyOne)) {
                vec![p.clone()]
            } else if p.is_empty() {
                Vec::new() // only the root: not an element
            } else {
                // Gap-only pattern: force at least one segment.
                let mut q = p.clone();
                q.push(Seg::AnyOne);
                vec![q]
            }
        }
        PatTest::Name(n) => match p.last() {
            None => Vec::new(), // the root has no name
            Some(Seg::Name(m)) => {
                if m == n {
                    vec![p.clone()]
                } else {
                    Vec::new()
                }
            }
            Some(Seg::AnyOne) => {
                let mut q = p.clone();
                *q.last_mut().expect("non-empty") = Seg::Name(n.clone());
                vec![q]
            }
            Some(Seg::Gap) => {
                // gap = (zero segments → constrain what precedes it)
                //     | (≥1 segments, the last named n).
                let mut out = Vec::new();
                let prefix: Pattern = p[..p.len() - 1].to_vec();
                out.extend(constrain_last(&prefix, test));
                let mut q = p.clone();
                q.push(Seg::Name(n.clone()));
                out.push(q);
                out
            }
        },
    }
}

/// All decompositions of `p` into (prefix, final segment). A gap-final
/// pattern has two families: the last segment lies inside the gap, or the
/// gap is empty and the last segment comes before it.
pub(crate) fn split_last(p: &Pattern) -> Vec<(Pattern, Seg)> {
    match p.last() {
        None => Vec::new(),
        Some(Seg::Gap) => {
            let mut out = vec![(p.clone(), Seg::AnyOne)]; // segment from the gap
            out.extend(split_last(&p[..p.len() - 1].to_vec())); // empty gap
            out
        }
        Some(last) => vec![(p[..p.len() - 1].to_vec(), last.clone())],
    }
}

/// All decompositions `p = prefix ++ suffix` where the suffix spans at
/// least one path segment (proper ancestors). Gap segments produce the
/// extra "cut inside the gap" decomposition.
pub(crate) fn proper_cuts(p: &Pattern) -> Vec<(Pattern, Pattern)> {
    let mut out = Vec::new();
    for i in (0..p.len()).rev() {
        let prefix: Pattern = p[..i].to_vec();
        let suffix: Pattern = p[i..].to_vec();
        if suffix_has_segment(&suffix) {
            out.push((prefix.clone(), suffix.clone()));
        }
        if p[i] == Seg::Gap {
            // Cut inside the gap: ancestor ends within it.
            let mut pre = prefix.clone();
            pre.push(Seg::Gap);
            let mut suf: Pattern = vec![Seg::Gap];
            suf.extend(p[i + 1..].iter().cloned());
            if suffix_has_segment(&p[i + 1..].to_vec()) {
                out.push((pre, suf));
            } else {
                // Suffix must still span ≥1 segment: take one from the gap.
                let mut suf2: Pattern = vec![Seg::AnyOne];
                suf2.extend(p[i + 1..].iter().cloned());
                out.push((pre, suf2));
            }
        }
    }
    out
}

fn suffix_has_segment(s: &Pattern) -> bool {
    s.iter().any(|x| matches!(x, Seg::Name(_) | Seg::AnyOne))
}

fn normalize_pattern(p: &mut Pattern) {
    // Collapse consecutive gaps.
    p.dedup_by(|a, b| *a == Seg::Gap && *b == Seg::Gap);
}

fn render_pattern(p: &Pattern) -> String {
    let mut out = String::new();
    for seg in p {
        match seg {
            Seg::Name(n) => {
                out.push('/');
                out.push_str(&regexlite::escape(n));
            }
            Seg::AnyOne => out.push_str("/[^/]+"),
            Seg::Gap => out.push_str("(/[^/]+)*"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> PatTest {
        PatTest::Name(s.to_string())
    }

    fn set(p: &PatternSet) -> Vec<String> {
        let mut v: Vec<String> = p.alts.iter().map(render_pattern).collect();
        v.sort();
        v
    }

    #[test]
    fn table1_row1_descendant_then_children() {
        // //B/C → ^(/[^/]+)*/B/C$
        let p = PatternSet::root().descendant(&n("B")).child(&n("C"));
        assert_eq!(p.to_regex().expect("regex"), "^(/[^/]+)*/B/C$");
    }

    #[test]
    fn table1_row2_inner_descendant() {
        // /A/B//F → ^/A/B(/[^/]+)*/F$
        let p = PatternSet::root()
            .child(&n("A"))
            .child(&n("B"))
            .descendant(&n("F"));
        assert_eq!(p.to_regex().expect("regex"), "^/A/B(/[^/]+)*/F$");
    }

    #[test]
    fn table1_row3_wildcard() {
        // //C/*/F → ^(/[^/]+)*/C/[^/]+/F$
        let p = PatternSet::root()
            .descendant(&n("C"))
            .child(&PatTest::AnyElement)
            .child(&n("F"));
        assert_eq!(p.to_regex().expect("regex"), "^(/[^/]+)*/C/[^/]+/F$");
    }

    #[test]
    fn table1_row4_backward_path() {
        // //F + /parent::F? — row 4 of Table 1 constrains F's path by
        // parent::D and ancestor::B-like chains; here:
        // context //F, then parent::D, then ancestor::B
        let f = PatternSet::root().descendant(&n("F"));
        let (d, f2) = f.parent(&n("D"));
        assert_eq!(set(&d), vec!["(/[^/]+)*/D"]);
        assert_eq!(set(&f2), vec!["(/[^/]+)*/D/F"]);
        let (b, d2) = d.ancestor(&n("B"), false);
        // The ancestor's own path always ends at B; the two D variants
        // (immediate vs distant ancestor) dedup into one B pattern.
        assert_eq!(set(&b), vec!["(/[^/]+)*/B"]);
        // the /B/D variant is subsumed by /B(gap)/D (empty gap).
        assert_eq!(set(&d2), vec!["(/[^/]+)*/B(/[^/]+)*/D"]);
    }

    #[test]
    fn descendant_or_self_refines_or_descends() {
        // /A/*/descendant-or-self::C: self branch turns * into C,
        // descendant branch appends.
        let p = PatternSet::root()
            .child(&n("A"))
            .child(&PatTest::AnyElement);
        let q = p.descendant_or_self(&n("C"));
        assert_eq!(set(&q), vec!["/A/C", "/A/[^/]+(/[^/]+)*/C"]);
    }

    #[test]
    fn self_axis_mismatch_is_infeasible() {
        let p = PatternSet::root().child(&n("A"));
        assert!(p.self_axis(&n("B")).is_infeasible());
        assert!(!p.self_axis(&n("A")).is_infeasible());
    }

    #[test]
    fn parent_of_depth_one_is_infeasible() {
        // /A/parent::B — the parent of the document element is the root,
        // which has no name.
        let p = PatternSet::root().child(&n("A"));
        let (parents, selves) = p.parent(&n("B"));
        assert!(parents.is_infeasible());
        assert!(selves.is_infeasible());
    }

    #[test]
    fn exact_path_detection() {
        let p = PatternSet::root().child(&n("A")).child(&n("B"));
        assert_eq!(p.exact_path().as_deref(), Some("/A/B"));
        assert_eq!(PatternSet::root().exact_path().as_deref(), Some(""));
        assert!(PatternSet::root()
            .descendant(&n("B"))
            .exact_path()
            .is_none());
    }

    #[test]
    fn gaps_collapse() {
        let p = PatternSet::root()
            .descendant(&PatTest::AnyElement)
            .descendant(&n("k"));
        // «gap»/any«gap»/k — gaps around the wildcard stay distinct;
        // but root.descendant_or_self(node()) twice collapses.
        let q = PatternSet::root()
            .descendant_or_self(&PatTest::AnyNode)
            .descendant_or_self(&PatTest::AnyNode);
        for alt in &q.alts {
            let gaps = alt.iter().filter(|s| **s == Seg::Gap).count();
            let pairs = alt
                .windows(2)
                .filter(|w| w[0] == Seg::Gap && w[1] == Seg::Gap)
                .count();
            assert_eq!(pairs, 0, "no adjacent gaps in {alt:?} (of {} gaps)", gaps);
        }
        assert!(p.to_regex().is_some());
    }

    #[test]
    fn order_axis_pattern() {
        let p = PatternSet::ending_with(&n("E"));
        assert_eq!(p.to_regex().expect("regex"), "^(/[^/]+)*/E$");
    }

    #[test]
    fn regex_escaping_in_names() {
        let p = PatternSet::root().child(&n("a.b"));
        assert_eq!(p.to_regex().expect("regex"), "^/a\\.b$");
    }

    #[test]
    fn widening_beyond_cap_stays_sound() {
        // Build a pathological pattern set via repeated ancestor steps.
        let mut p = PatternSet::root().descendant(&n("x"));
        for _ in 0..6 {
            let (anc, _) = p.ancestor(&PatTest::AnyElement, true);
            p = anc.descendant(&n("x"));
        }
        assert!(p.alts.len() <= MAX_ALTS);
        // Soundness: the widened set still requires the path to end in /x.
        let regex = p.to_regex().expect("regex");
        let re = regexlite::Regex::new(&regex).expect("compiles");
        assert!(re.is_match("/a/b/x"));
        assert!(!re.is_match("/a/b/y"));
    }
}
