//! Primitive Path Fragment identification (paper §4.1).
//!
//! A PPF is a maximal run of consecutive steps that is
//! (a) a *forward simple path* (child / descendant / descendant-or-self /
//!     self axes, predicates only on the last step),
//! (b) a *backward simple path* (parent / ancestor / ancestor-or-self), or
//! (c) a single step with one of the order axes
//!     (following, following-sibling, preceding, preceding-sibling).
//!
//! A predicate on an intermediate step always ends the current PPF.
//! Attribute steps are only allowed as the final step of a path (they
//! project a value rather than navigate) and are returned separately.

use xpath::{Axis, Step};

/// The kind of a PPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpfKind {
    Forward,
    Backward,
    /// A single step with this order axis.
    Order(Axis),
}

/// One Primitive Path Fragment: consecutive steps of the original path.
#[derive(Debug, Clone)]
pub struct Ppf {
    pub kind: PpfKind,
    pub steps: Vec<Step>,
}

impl Ppf {
    /// The *prominent step* — the last step of the fragment (§4.1).
    pub fn prominent_step(&self) -> &Step {
        self.steps.last().expect("PPFs are non-empty")
    }

    /// Is this a single-step PPF (relevant for the FK-join shortcut of
    /// child/parent, Algorithm 1 lines 9–12)?
    pub fn is_single_step(&self) -> bool {
        self.steps.len() == 1
    }
}

/// Splitting error (feature outside the supported fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpfError(pub String);

impl std::fmt::Display for PpfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PPF analysis error: {}", self.0)
    }
}

impl std::error::Error for PpfError {}

fn is_forward_axis(a: Axis) -> bool {
    matches!(
        a,
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::SelfAxis
    )
}

fn is_backward_axis(a: Axis) -> bool {
    matches!(a, Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf)
}

fn is_order_axis(a: Axis) -> bool {
    matches!(
        a,
        Axis::Following | Axis::FollowingSibling | Axis::Preceding | Axis::PrecedingSibling
    )
}

/// Result of splitting a path: the PPFs plus an optional trailing
/// attribute step (`…/@id`).
#[derive(Debug, Clone)]
pub struct SplitPath {
    pub ppfs: Vec<Ppf>,
    pub trailing_attribute: Option<Step>,
}

/// Split a step sequence into PPFs.
pub fn split_ppfs(steps: &[Step]) -> Result<SplitPath, PpfError> {
    let mut steps = steps.to_vec();
    let trailing_attribute = match steps.last() {
        Some(s) if s.axis == Axis::Attribute => steps.pop(),
        _ => None,
    };
    if let Some(mid) = steps.iter().find(|s| s.axis == Axis::Attribute) {
        return Err(PpfError(format!(
            "attribute step `@{}` is only supported as the final step",
            mid.test
        )));
    }

    let mut ppfs: Vec<Ppf> = Vec::new();
    let mut current: Vec<Step> = Vec::new();
    let mut current_kind: Option<PpfKind> = None;

    let flush = |ppfs: &mut Vec<Ppf>, current: &mut Vec<Step>, kind: &mut Option<PpfKind>| {
        if !current.is_empty() {
            ppfs.push(Ppf {
                kind: kind.take().expect("kind set with steps"),
                steps: std::mem::take(current),
            });
        } else {
            *kind = None;
        }
    };

    for step in steps {
        let kind = if is_forward_axis(step.axis) {
            PpfKind::Forward
        } else if is_backward_axis(step.axis) {
            PpfKind::Backward
        } else if is_order_axis(step.axis) {
            PpfKind::Order(step.axis)
        } else {
            return Err(PpfError(format!(
                "axis `{}` is not supported here",
                step.axis.name()
            )));
        };

        let same_run = matches!(
            (current_kind, kind),
            (Some(PpfKind::Forward), PpfKind::Forward)
                | (Some(PpfKind::Backward), PpfKind::Backward)
        );
        if !same_run {
            flush(&mut ppfs, &mut current, &mut current_kind);
            current_kind = Some(kind);
        }
        let has_predicates = !step.predicates.is_empty();
        current.push(step);
        if has_predicates || matches!(kind, PpfKind::Order(_)) {
            // Predicates may appear only on the last step of a simple
            // path, and order-axis PPFs are single-step: close the run.
            flush(&mut ppfs, &mut current, &mut current_kind);
        }
    }
    flush(&mut ppfs, &mut current, &mut current_kind);

    if ppfs.is_empty() && trailing_attribute.is_none() {
        return Err(PpfError("empty path".into()));
    }
    Ok(SplitPath {
        ppfs,
        trailing_attribute,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath::parse_xpath;

    fn split(q: &str) -> SplitPath {
        let xpath::Expr::Path(p) = parse_xpath(q).expect("parse") else {
            panic!("path expected")
        };
        split_ppfs(&p.steps).expect("split")
    }

    fn kinds(s: &SplitPath) -> Vec<PpfKind> {
        s.ppfs.iter().map(|p| p.kind).collect()
    }

    fn sizes(s: &SplitPath) -> Vec<usize> {
        s.ppfs.iter().map(|p| p.steps.len()).collect()
    }

    #[test]
    fn single_forward_ppf() {
        let s = split("/A/B/C//F");
        assert_eq!(kinds(&s), vec![PpfKind::Forward]);
        assert_eq!(sizes(&s), vec![5]); // includes the // desugar step
    }

    #[test]
    fn predicate_splits_forward_path() {
        // The paper's running example: /A[@x=3]/B/C//F has PPFs
        // {/A} and {B/C//F}.
        let s = split("/A[@x=3]/B/C//F");
        assert_eq!(kinds(&s), vec![PpfKind::Forward, PpfKind::Forward]);
        assert_eq!(sizes(&s), vec![1, 4]);
        assert_eq!(s.ppfs[0].prominent_step().predicates.len(), 1);
    }

    #[test]
    fn backward_ppf() {
        // //F/parent::D/ancestor::B → forward {//F}, backward
        // {parent::D/ancestor::B}.
        let s = split("//F/parent::D/ancestor::B");
        assert_eq!(kinds(&s), vec![PpfKind::Forward, PpfKind::Backward]);
        assert_eq!(sizes(&s), vec![2, 2]);
    }

    #[test]
    fn order_axis_is_single_step_ppf() {
        let s = split("//D/following-sibling::E/G");
        assert_eq!(
            kinds(&s),
            vec![
                PpfKind::Forward,
                PpfKind::Order(xpath::Axis::FollowingSibling),
                PpfKind::Forward
            ]
        );
    }

    #[test]
    fn predicated_order_step() {
        let s = split("//a/following::b[c]/d");
        assert_eq!(sizes(&s), vec![2, 1, 1]);
        assert_eq!(s.ppfs[1].prominent_step().predicates.len(), 1);
    }

    #[test]
    fn trailing_attribute_extracted() {
        let s = split("/site/regions/*/item/@id");
        assert_eq!(kinds(&s), vec![PpfKind::Forward]);
        assert!(s.trailing_attribute.is_some());
    }

    #[test]
    fn mid_path_attribute_rejected() {
        let xpath::Expr::Path(p) = parse_xpath("/a/@x/parent::a").expect("parse") else {
            panic!("path expected")
        };
        assert!(split_ppfs(&p.steps).is_err());
    }

    #[test]
    fn consecutive_backward_predicates_split() {
        let s = split("//F/ancestor::B[G]/ancestor::A");
        assert_eq!(
            kinds(&s),
            vec![PpfKind::Forward, PpfKind::Backward, PpfKind::Backward]
        );
    }

    #[test]
    fn qd4_shape() {
        // //i[parent::*/parent::sub/ancestor::article] backbone is one
        // forward PPF with the whole predicate on its last step.
        let s = split("//i[parent::*/parent::sub/ancestor::article]");
        assert_eq!(kinds(&s), vec![PpfKind::Forward]);
        assert_eq!(s.ppfs[0].prominent_step().predicates.len(), 1);
    }
}
