//! XML publishing: reconstruct serialized XML for result elements from
//! the shredded relations alone (no access to the original `Document`).
//!
//! This closes the loop a downstream user needs: run an XPath query, get
//! back *XML*, not just ids — and doubles as a strong integrity check
//! that the shredding preserved all information (see the round-trip
//! tests).

use relstore::{Table, Value};
use shred::naming::*;
use shred::SchemaAwareStore;
use xmlschema::{Schema, ValueType};

use crate::engine::EngineError;

/// Reconstruct the subtree rooted at element `id` as XML text.
pub fn publish_element(store: &SchemaAwareStore, id: i64) -> Result<String, EngineError> {
    let schema = store.schema();
    let (relation, rid) = find_row(store, schema, id)
        .ok_or_else(|| EngineError::exec(format!("no element with id {id}")))?;
    let mut out = String::new();
    write_element(store, schema, &relation, rid, &mut out)?;
    Ok(out)
}

/// Locate the (relation, row) containing element `id`.
fn find_row(store: &SchemaAwareStore, schema: &Schema, id: i64) -> Option<(String, usize)> {
    for name in schema.names() {
        let t = store.db().table(name)?;
        let idc = t.schema.col(COL_ID)?;
        if let Some(ix) = t.index_on(&[idc]) {
            let hits = ix.get(&[Value::Int(id)]);
            if let Some(&rid) = hits.first() {
                return Some((name.to_string(), rid));
            }
        } else {
            for (rid, row) in t.rows() {
                if row[idc] == Value::Int(id) {
                    return Some((name.to_string(), rid));
                }
            }
        }
    }
    None
}

fn raw_text(v: &Value, ty: ValueType) -> String {
    match (v, ty) {
        (Value::Null, _) => String::new(),
        (Value::Str(s), _) => s.clone(),
        (Value::Int(i), _) => i.to_string(),
        (Value::Float(f), _) => f.to_string(),
        (other, _) => other.to_string(),
    }
}

fn escape_text(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

fn write_element(
    store: &SchemaAwareStore,
    schema: &Schema,
    relation: &str,
    rid: usize,
    out: &mut String,
) -> Result<(), EngineError> {
    let table = store
        .db()
        .table(relation)
        .ok_or_else(|| EngineError::exec(format!("missing relation {relation}")))?;
    let def = schema
        .def(relation)
        .ok_or_else(|| EngineError::exec(format!("missing definition {relation}")))?;
    let row = table.row(rid);
    let idc = table
        .schema
        .col(COL_ID)
        .ok_or_else(|| EngineError::exec("missing id column"))?;
    let my_id = row[idc]
        .as_int()
        .ok_or_else(|| EngineError::exec("id column is not an integer"))?;

    out.push('<');
    out.push_str(relation);
    for attr in &def.attributes {
        let c = table
            .schema
            .col(&attr_col(&attr.name))
            .ok_or_else(|| EngineError::exec(format!("missing column for @{}", attr.name)))?;
        if !row[c].is_null() {
            out.push(' ');
            out.push_str(&attr.name);
            out.push_str("=\"");
            escape_attr(&raw_text(&row[c], attr.ty), out);
            out.push('"');
        }
    }

    // Children of `my_id` live across the child relations; gather them in
    // document order (element ids are assigned in document order).
    let mut children: Vec<(i64, String, usize)> = Vec::new();
    for child_rel in schema.children_of(relation) {
        let ct = store
            .db()
            .table(child_rel)
            .ok_or_else(|| EngineError::exec(format!("missing relation {child_rel}")))?;
        collect_children(ct, child_rel, my_id, &mut children)?;
    }
    children.sort();

    let text = def.text.and_then(|ty| {
        let c = table.schema.col(COL_TEXT)?;
        if row[c].is_null() {
            None
        } else {
            Some(raw_text(&row[c], ty))
        }
    });

    if children.is_empty() && text.is_none() {
        out.push_str("/>");
        return Ok(());
    }
    out.push('>');
    // Note: the shredded form stores an element's direct text as one
    // column, so the original interleaving of text and child elements is
    // approximated as text-first (the paper's mapping has the same loss).
    if let Some(t) = &text {
        escape_text(t, out);
    }
    for (_, rel, rid) in children {
        write_element(store, schema, &rel, rid, out)?;
    }
    out.push_str("</");
    out.push_str(relation);
    out.push('>');
    Ok(())
}

fn collect_children(
    table: &Table,
    relation: &str,
    parent_id: i64,
    out: &mut Vec<(i64, String, usize)>,
) -> Result<(), EngineError> {
    let parc = table
        .schema
        .col(COL_PAR)
        .ok_or_else(|| EngineError::exec("missing par_id column"))?;
    let idc = table
        .schema
        .col(COL_ID)
        .ok_or_else(|| EngineError::exec("missing id column"))?;
    if let Some(ix) = table.index_on(&[parc]) {
        for rid in ix.get(&[Value::Int(parent_id)]).iter().copied() {
            let row = table.row(rid);
            let id = row[idc]
                .as_int()
                .ok_or_else(|| EngineError::exec("id column is not an integer"))?;
            out.push((id, relation.to_string(), rid));
        }
    } else {
        for (rid, row) in table.rows() {
            if row[parc] == Value::Int(parent_id) {
                let id = row[idc]
                    .as_int()
                    .ok_or_else(|| EngineError::exec("id column is not an integer"))?;
                out.push((id, relation.to_string(), rid));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::XmlDb;

    fn setup(xml: &str) -> (XmlDb, i64) {
        let schema = xmlschema::figure1_schema();
        let mut db = XmlDb::new(&schema).expect("db");
        let loaded = db.load_xml(xml).expect("load");
        db.finalize().expect("indexes");
        let root_id = *loaded
            .element_ids
            .values()
            .min()
            .expect("non-empty document");
        (db, root_id)
    }

    #[test]
    fn publishes_full_document() {
        let xml = "<A x=\"4\"><B><C><D x=\"1\">9</D></C><G/></B></A>";
        let (db, root) = setup(xml);
        let out = publish_element(db.store(), root).expect("publish");
        assert_eq!(out, xml);
    }

    #[test]
    fn publishes_subtrees() {
        let (db, _) = setup("<A><B><C><D>7</D></C></B></A>");
        let r = db.query("//C").expect("query");
        let id = r.ids()[0];
        let out = publish_element(db.store(), id).expect("publish");
        assert_eq!(out, "<C><D>7</D></C>");
    }

    #[test]
    fn escapes_markup_in_values() {
        // A text-typed schema (figure 1's D is integer-typed).
        let schema = xmlschema::parse_schema("root a\na @t = b*\nb : text").expect("schema");
        let mut db = XmlDb::new(&schema).expect("db");
        let loaded = db
            .load_xml("<a t='&quot;x&quot;'><b>a &lt; b &amp; c</b></a>")
            .expect("load");
        db.finalize().expect("indexes");
        let root = *loaded.element_ids.values().min().expect("root");
        let out = publish_element(db.store(), root).expect("publish");
        assert!(out.contains("a &lt; b &amp; c"), "{out}");
        assert!(out.contains("t=\"&quot;x&quot;\""), "{out}");
        let doc = xmldom::parse(&out).expect("published XML parses");
        assert_eq!(doc.element_count(), 2);
    }

    #[test]
    fn unknown_id_errors() {
        let (db, _) = setup("<A/>");
        assert!(publish_element(db.store(), 999).is_err());
    }
}
