//! Schema-graph navigation: which element definitions can a step sequence
//! land on? (Used to assign *prominent relations* to PPFs, §4.1, and to
//! detect statically-empty queries.)

use std::collections::BTreeSet;

use xmlschema::Schema;
use xpath::{Axis, NodeTest, Step};

/// The set of candidate element names at some point of a path walk.
/// `root` tracks whether the virtual document root is in the set (it has
/// no name, so it needs its own flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidates {
    pub names: BTreeSet<String>,
    pub root: bool,
}

impl Candidates {
    /// Starting point of an absolute path.
    pub fn at_root() -> Candidates {
        Candidates {
            names: BTreeSet::new(),
            root: true,
        }
    }

    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> Candidates {
        Candidates {
            names: names.into_iter().collect(),
            root: false,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty() && !self.root
    }
}

/// Names matching a node test within a name set.
fn filter_names(names: BTreeSet<String>, test: &NodeTest) -> BTreeSet<String> {
    match test {
        NodeTest::Name(n) => names.into_iter().filter(|x| x == n).collect(),
        NodeTest::Wildcard | NodeTest::AnyNode => names,
        NodeTest::Text => BTreeSet::new(),
    }
}

/// Everything reachable strictly below the given names.
fn reachable_below(schema: &Schema, from: &BTreeSet<String>, from_root: bool) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<String> = Vec::new();
    if from_root {
        stack.push(schema.root().to_string());
    }
    for n in from {
        for c in schema.children_of(n) {
            stack.push(c.clone());
        }
    }
    while let Some(n) = stack.pop() {
        if seen.insert(n.clone()) {
            for c in schema.children_of(&n) {
                stack.push(c.clone());
            }
        }
    }
    seen
}

/// Everything that can appear strictly above the given names.
fn reachable_above(schema: &Schema, from: &BTreeSet<String>) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<String> = Vec::new();
    for n in from {
        for p in schema.parents_of(n) {
            stack.push(p.to_string());
        }
    }
    while let Some(n) = stack.pop() {
        if seen.insert(n.clone()) {
            for p in schema.parents_of(&n) {
                stack.push(p.to_string());
            }
        }
    }
    seen
}

/// Advance candidates over one step. Attribute steps do not change the
/// element context (they are handled separately by the translator).
pub fn advance(schema: &Schema, cur: &Candidates, step: &Step) -> Candidates {
    let names = &cur.names;
    let out: BTreeSet<String> = match step.axis {
        Axis::Child => {
            let mut kids: BTreeSet<String> = BTreeSet::new();
            if cur.root {
                kids.insert(schema.root().to_string());
            }
            for n in names {
                kids.extend(schema.children_of(n).iter().cloned());
            }
            filter_names(kids, &step.test)
        }
        Axis::Descendant => filter_names(reachable_below(schema, names, cur.root), &step.test),
        Axis::DescendantOrSelf => {
            let mut all = reachable_below(schema, names, cur.root);
            all.extend(names.iter().cloned());
            filter_names(all, &step.test)
        }
        Axis::SelfAxis => filter_names(names.clone(), &step.test),
        Axis::Parent => {
            let mut parents: BTreeSet<String> = BTreeSet::new();
            for n in names {
                parents.extend(schema.parents_of(n).iter().map(|s| s.to_string()));
            }
            filter_names(parents, &step.test)
        }
        Axis::Ancestor => filter_names(reachable_above(schema, names), &step.test),
        Axis::AncestorOrSelf => {
            let mut all = reachable_above(schema, names);
            all.extend(names.iter().cloned());
            filter_names(all, &step.test)
        }
        // Order axes: any element sharing a parent (siblings) or any
        // element at all (following/preceding) can qualify; the path
        // filter and Dewey join provide the precision.
        Axis::FollowingSibling | Axis::PrecedingSibling => {
            let mut sibs: BTreeSet<String> = BTreeSet::new();
            for n in names {
                for p in schema.parents_of(n) {
                    sibs.extend(schema.children_of(p).iter().cloned());
                }
            }
            filter_names(sibs, &step.test)
        }
        Axis::Following | Axis::Preceding => {
            filter_names(schema.names().map(|s| s.to_string()).collect(), &step.test)
        }
        Axis::Attribute => names.clone(),
    };
    let keep_root = match step.axis {
        // self::node() / descendant-or-self keep the root in context.
        Axis::SelfAxis | Axis::DescendantOrSelf => {
            cur.root && matches!(step.test, NodeTest::AnyNode)
        }
        _ => false,
    };
    Candidates {
        names: out,
        root: keep_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlschema::figure1_schema;
    use xpath::parse_xpath;

    fn walk(q: &str) -> Candidates {
        let schema = figure1_schema();
        let expr = parse_xpath(q).expect("parse");
        let xpath::Expr::Path(p) = expr else {
            panic!("path expected")
        };
        let mut cur = Candidates::at_root();
        for step in &p.steps {
            cur = advance(&schema, &cur, step);
        }
        cur
    }

    fn names(c: &Candidates) -> Vec<&str> {
        c.names.iter().map(|s| s.as_str()).collect()
    }

    #[test]
    fn child_navigation() {
        assert_eq!(names(&walk("/A/B")), vec!["B"]);
        assert_eq!(names(&walk("/A/B/*")), vec!["C", "G"]);
        assert!(walk("/A/F").is_empty());
        assert!(walk("/B").is_empty());
    }

    #[test]
    fn descendant_navigation() {
        assert_eq!(names(&walk("//F")), vec!["F"]);
        assert_eq!(names(&walk("/A/B/C//*")), vec!["D", "E", "F"]);
        assert_eq!(names(&walk("//G")), vec!["G"]);
    }

    #[test]
    fn backward_navigation() {
        assert_eq!(names(&walk("//F/parent::E")), vec!["E"]);
        assert!(walk("//F/parent::D").is_empty());
        assert_eq!(names(&walk("//F/ancestor::*")), vec!["A", "B", "C", "E"]);
        assert_eq!(names(&walk("//G/ancestor::*")), vec!["A", "B", "G"]);
    }

    #[test]
    fn sibling_navigation() {
        // Siblings of D within C: D and E.
        assert_eq!(names(&walk("//D/following-sibling::*")), vec!["D", "E"]);
        assert_eq!(names(&walk("//D/following-sibling::E")), vec!["E"]);
    }

    #[test]
    fn wildcard_after_root() {
        assert_eq!(names(&walk("/*")), vec!["A"]);
        assert_eq!(names(&walk("/descendant-or-self::node()/*")).len(), 7);
    }

    #[test]
    fn recursion_is_handled() {
        assert_eq!(names(&walk("//G//G")), vec!["G"]);
        assert_eq!(names(&walk("//G/ancestor-or-self::G")), vec!["G"]);
    }
}
