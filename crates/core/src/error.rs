//! Typed error taxonomy for the whole query lifecycle.
//!
//! Every failure a query can hit — from XPath parsing through SQL
//! execution, resource budgets and cancellation — surfaces as one
//! [`QueryError`] variant, so callers (the shell, benchmarks, a future
//! network front end) can branch on [`QueryError::kind`] instead of
//! string-matching messages. Variants mirror the executor's
//! [`sqlexec::exec`] phases plus the engine-only `Translate` phase.

use sqlexec::ExecError;

/// Where in the pipeline a query failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The XPath (or SQL) text failed to parse.
    Parse(String),
    /// XPath → SQL translation failed (unmapped name, unsupported axis).
    Translate(String),
    /// Planning failed: unknown table, malformed statement shape.
    Plan(String),
    /// Runtime failure: bad types, overflow, a store inconsistency, or a
    /// contained worker panic.
    Exec(String),
    /// A resource budget aborted the query (deadline, row budget).
    Limit(String),
    /// The query's [`sqlexec::CancelToken`] fired.
    Cancelled(String),
}

/// Historical name for [`QueryError`] (it used to be an opaque string
/// wrapper); kept so downstream code and the published API stay valid.
pub type EngineError = QueryError;

impl QueryError {
    pub fn parse(msg: impl Into<String>) -> QueryError {
        QueryError::Parse(msg.into())
    }

    pub fn translate(msg: impl Into<String>) -> QueryError {
        QueryError::Translate(msg.into())
    }

    pub fn plan(msg: impl Into<String>) -> QueryError {
        QueryError::Plan(msg.into())
    }

    pub fn exec(msg: impl Into<String>) -> QueryError {
        QueryError::Exec(msg.into())
    }

    pub fn limit(msg: impl Into<String>) -> QueryError {
        QueryError::Limit(msg.into())
    }

    pub fn cancelled(msg: impl Into<String>) -> QueryError {
        QueryError::Cancelled(msg.into())
    }

    /// The bare message, without the phase prefix.
    pub fn message(&self) -> &str {
        match self {
            QueryError::Parse(m)
            | QueryError::Translate(m)
            | QueryError::Plan(m)
            | QueryError::Exec(m)
            | QueryError::Limit(m)
            | QueryError::Cancelled(m) => m,
        }
    }

    /// Short lifecycle-phase tag, for counters and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryError::Parse(_) => "parse",
            QueryError::Translate(_) => "translate",
            QueryError::Plan(_) => "plan",
            QueryError::Exec(_) => "exec",
            QueryError::Limit(_) => "limit",
            QueryError::Cancelled(_) => "cancelled",
        }
    }

    /// True for the two cooperative-abort variants (the query was fine;
    /// the caller bounded it).
    pub fn is_aborted(&self) -> bool {
        matches!(self, QueryError::Limit(_) | QueryError::Cancelled(_))
    }
}

impl From<ExecError> for QueryError {
    fn from(e: ExecError) -> QueryError {
        match e {
            ExecError::Parse(m) => QueryError::Parse(m),
            ExecError::Plan(m) => QueryError::Plan(m),
            ExecError::Exec(m) => QueryError::Exec(m),
            ExecError::Limit(m) => QueryError::Limit(m),
            ExecError::Cancelled(m) => QueryError::Cancelled(m),
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Every variant keeps the historical "engine error:" prefix so
        // existing callers (and log scrapers) keep matching.
        match self {
            QueryError::Parse(m) => write!(f, "engine error: {m}"),
            QueryError::Translate(m) => write!(f, "engine error: {m}"),
            QueryError::Plan(m) => write!(f, "engine error: plan error: {m}"),
            QueryError::Exec(m) => write!(f, "engine error: execution error: {m}"),
            QueryError::Limit(m) => write!(f, "engine error: resource limit exceeded: {m}"),
            QueryError::Cancelled(m) => write!(f, "engine error: query cancelled: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Why a hot reload did not produce a new serving snapshot. Every
/// variant leaves the previously-serving [`crate::EngineSnapshot`]
/// untouched — a failed reload is an operator-visible event, never a
/// serving outage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadError {
    /// The replacement input failed to parse (malformed or truncated
    /// XML, a bad schema file).
    Parse(String),
    /// The replacement input could not be read (missing file, I/O error,
    /// chaos-injected fault).
    Io(String),
    /// Shredding, indexing or statistics rebuilding failed on the
    /// staging store.
    Shred(String),
    /// The builder panicked mid-load; the panic was contained inside the
    /// reload path.
    Panic(String),
    /// Another reload is already staging a snapshot. Transient: retry
    /// after it finishes.
    Busy,
    /// The server is draining; it will take no new snapshot. Terminal
    /// for this process.
    Draining,
}

impl ReloadError {
    pub fn parse(msg: impl Into<String>) -> ReloadError {
        ReloadError::Parse(msg.into())
    }

    pub fn io(msg: impl Into<String>) -> ReloadError {
        ReloadError::Io(msg.into())
    }

    pub fn shred(msg: impl Into<String>) -> ReloadError {
        ReloadError::Shred(msg.into())
    }

    pub fn panic(msg: impl Into<String>) -> ReloadError {
        ReloadError::Panic(msg.into())
    }

    /// Stable tag for counters (`engine.reload_failures.<kind>`) and
    /// wire errors.
    pub fn kind(&self) -> &'static str {
        match self {
            ReloadError::Parse(_) => "parse",
            ReloadError::Io(_) => "io",
            ReloadError::Shred(_) => "shred",
            ReloadError::Panic(_) => "panic",
            ReloadError::Busy => "busy",
            ReloadError::Draining => "draining",
        }
    }

    /// Whether retrying the same reload later can succeed without any
    /// operator intervention (only the transient `Busy` refusal).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ReloadError::Busy)
    }
}

/// Builder helpers (e.g. `ppfd`'s data-source recipe) run ordinary
/// engine loads; their failures classify onto the reload taxonomy by
/// lifecycle phase.
impl From<QueryError> for ReloadError {
    fn from(e: QueryError) -> ReloadError {
        match e {
            QueryError::Parse(m) => ReloadError::Parse(m),
            other => ReloadError::Shred(other.message().to_string()),
        }
    }
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Parse(m) => write!(f, "reload parse error: {m}"),
            ReloadError::Io(m) => write!(f, "reload I/O error: {m}"),
            ReloadError::Shred(m) => write!(f, "reload shred error: {m}"),
            ReloadError::Panic(m) => write!(f, "reload panic contained: {m}"),
            ReloadError::Busy => write!(f, "reload busy: another reload is in progress"),
            ReloadError::Draining => write!(f, "reload refused: server is draining"),
        }
    }
}

impl std::error::Error for ReloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_error_variants_map_one_to_one() {
        let pairs = [
            (ExecError::parse("p"), "parse"),
            (ExecError::plan("p"), "plan"),
            (ExecError::exec("p"), "exec"),
            (ExecError::limit("p"), "limit"),
            (ExecError::cancelled("p"), "cancelled"),
        ];
        for (e, kind) in pairs {
            let q: QueryError = e.into();
            assert_eq!(q.kind(), kind);
            assert_eq!(q.message(), "p");
        }
    }

    #[test]
    fn aborted_classification() {
        assert!(QueryError::limit("x").is_aborted());
        assert!(QueryError::cancelled("x").is_aborted());
        assert!(!QueryError::exec("x").is_aborted());
    }

    #[test]
    fn reload_kinds_and_retryability() {
        let cases = [
            (ReloadError::parse("x"), "parse", false),
            (ReloadError::io("x"), "io", false),
            (ReloadError::shred("x"), "shred", false),
            (ReloadError::panic("x"), "panic", false),
            (ReloadError::Busy, "busy", true),
            (ReloadError::Draining, "draining", false),
        ];
        for (e, kind, retry) in cases {
            assert_eq!(e.kind(), kind);
            assert_eq!(e.is_retryable(), retry);
        }
    }

    #[test]
    fn engine_errors_classify_onto_reload_kinds() {
        assert_eq!(ReloadError::from(QueryError::parse("p")).kind(), "parse");
        assert_eq!(ReloadError::from(QueryError::exec("e")).kind(), "shred");
        assert_eq!(ReloadError::from(QueryError::plan("e")).kind(), "shred");
    }
}
