//! High-level façade: an XML database backed by the relational engine.
//!
//! [`XmlDb`] is the schema-aware system of the paper (shredding per §3,
//! PPF translation per §4); [`EdgeDb`] is the schema-oblivious variant of
//! §5.1. Both run the generated SQL on the `sqlexec`/`relstore` engine and
//! return element ids in document order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use obs::QueryTrace;
use relstore::{Database, Value};
use shred::{EdgeStore, SchemaAwareStore};
use sqlexec::plan::SelectPlan;
pub use sqlexec::{CancelToken, QueryLimits};
use sqlexec::{ExecStats, Executor, Expr as Sql, ResultSet, Select, SelectStmt};
use xmldom::Document;
use xmlschema::Schema;

pub use crate::error::{EngineError, QueryError, ReloadError};
use crate::translate::{translate, Mapping, OutputKind, TranslateOptions, Translation};

/// Engine-level query-cache locks recovered after being poisoned by a
/// panicking holder (the cache is cleared on recovery: a panic mid-insert
/// leaves no trustworthy entry set).
static CACHE_POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Query-cache lock poison recoveries since process start.
pub fn cache_poison_recoveries() -> u64 {
    CACHE_POISON_RECOVERIES.load(Relaxed)
}

/// Lock a cache map, recovering from poisoning by clearing it. Losing
/// warm plans costs a re-translate on the next query; keeping state a
/// panicking thread may have half-written could serve wrong answers.
fn lock_cache<'a, K: std::cmp::Eq + std::hash::Hash, V>(
    m: &'a Mutex<HashMap<K, V>>,
) -> std::sync::MutexGuard<'a, HashMap<K, V>> {
    m.lock().unwrap_or_else(|poisoned| {
        m.clear_poison();
        CACHE_POISON_RECOVERIES.fetch_add(1, Relaxed);
        let mut guard = poisoned.into_inner();
        guard.clear();
        guard
    })
}

/// Recompute planner statistics for every table in `db` — called after
/// any load/finalize mutation, right where the plan cache is also
/// invalidated, so the stats cache tracks the same `(uid, version)`
/// lifecycle. Build effort is mirrored into the registry:
/// `engine.stats_builds` (rebuild passes), `engine.stats_tables`
/// (tables covered last pass), `engine.stats_build_ns` (per-pass wall
/// time histogram).
fn rebuild_stats(db: &Database) {
    let t0 = std::time::Instant::now();
    let tables = relstore::stats::analyze_db(db);
    let reg = obs::Registry::global();
    reg.incr("engine.stats_builds", 1);
    reg.set_max("engine.stats_tables", tables as u64);
    reg.observe("engine.stats_build_ns", t0.elapsed().as_nanos() as u64);
}

/// Best-effort human message out of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Count a failed query in the process-wide registry, classified by
/// lifecycle phase, and refresh the poison-recovery mirrors (a contained
/// panic is exactly when they move).
fn record_query_error(err: &QueryError) {
    let reg = obs::Registry::global();
    reg.incr("engine.query_errors", 1);
    reg.incr(&format!("engine.query_errors.{}", err.kind()), 1);
    match err {
        QueryError::Limit(_) => reg.incr("engine.limit_aborts", 1),
        QueryError::Cancelled(_) => reg.incr("engine.query_cancelled", 1),
        _ => {}
    }
    mirror_poison_counters(reg);
}

/// Mirror the monotone poison-recovery counters kept in crates that
/// cannot depend on `obs` (pool, regexlite, sqlexec) into the registry,
/// so one `.metrics` snapshot shows every layer's recoveries.
fn mirror_poison_counters(reg: &obs::Registry) {
    reg.set_max("pool.poison_recoveries", ppf_pool::poison_recoveries());
    reg.set_max("pool.env_parse_errors", ppf_pool::env_parse_errors());
    reg.set_max(
        "regex.poison_recoveries",
        regexlite::stats::poison_recoveries(),
    );
    reg.set_max(
        "sqlexec.cache_poison_recoveries",
        sqlexec::cache_poison_recoveries(),
    );
    reg.set_max("engine.cache_poison_recoveries", cache_poison_recoveries());
}

/// Pipeline-level counters, collected on every query (the hooks are
/// always compiled in; only per-step wall-time measurement is gated, by
/// `EXPLAIN ANALYZE`). Timings are wall-clock per phase; the remaining
/// fields measure how much work the PPF machinery did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// XPath parsing.
    pub parse_ns: u64,
    /// XPath → SQL translation (PPF splitting, pattern building).
    pub translate_ns: u64,
    /// Up-front planning of every UNION branch (the executor re-plans
    /// from its own cache during execution; this measures planning cost).
    pub plan_ns: u64,
    /// SQL execution.
    pub execute_ns: u64,
    /// Result assembly and SQL text rendering.
    pub publish_ns: u64,
    /// Primitive path fragments identified by the translator.
    pub ppf_count: u64,
    /// UNION branches after §4.4 SQL splitting.
    pub union_branches: u64,
    /// `REGEXP_LIKE` path filters in the generated statement (after the
    /// §4.5 marking removed the redundant ones).
    pub path_filters: u64,
    /// Rows of the `Paths` table fetched as path-filter candidates.
    pub path_candidates: u64,
    /// `Paths` rows surviving their step's filters (regex included).
    pub path_survivors: u64,
    /// Rows entering join steps (every non-leading plan step: structural
    /// Dewey joins, FK joins, and `Paths` lookups alike).
    pub join_rows_in: u64,
    /// Rows surviving those join steps' residual conditions.
    pub join_rows_out: u64,
    /// Pike-VM `is_match` calls during execution (path-filter work).
    pub vm_match_calls: u64,
    /// Pike-VM thread dispatches during execution. Counts only the
    /// backtracking-free NFA simulation — matches answered by the lazy
    /// DFA do no Pike-VM work and show up in `dfa_matches` instead.
    pub vm_steps: u64,
    /// 1 when this query hit the engine's XPath-keyed cache and skipped
    /// parse, translate and plan entirely (their `*_ns` fields are 0).
    pub plan_cache_hits: u64,
    /// Regex programs compiled during execution (a hot query re-run
    /// should compile zero: patterns come from the executor's cache).
    pub regex_compiles: u64,
    /// `is_match` calls answered by the lazy DFA (O(bytes) path).
    pub dfa_matches: u64,
    /// `is_match` calls where the DFA hit its state budget and fell back
    /// to the Pike VM.
    pub dfa_fallbacks: u64,
    /// Path-filter probes answered from the memoised surviving-row set.
    pub path_memo_hits: u64,
    /// Path-filter probes that had to scan `Paths` and run the regex.
    pub path_memo_misses: u64,
    /// Sort-merge structural-join probes (vs B-tree range probes).
    pub merge_probes: u64,
    /// Heap allocations on the index-probe hot path (key buffers and
    /// probe row buffers acquired past their pools).
    pub probe_allocs: u64,
    /// Parallel fan-outs during execution (partitioned path-filter scans
    /// and partitioned branch pipelines).
    pub par_tasks: u64,
    /// Chunks executed across those fan-outs (`par_chunks / par_tasks` is
    /// the average degree of partitioning achieved).
    pub par_chunks: u64,
    /// Input rows distributed across parallel chunks.
    pub par_rows: u64,
    /// Largest single parallel chunk in input rows; against the even
    /// share `par_rows / par_chunks` it measures partition skew.
    pub par_chunk_rows_max: u64,
    /// Threads in the process-wide work-stealing pool when this query ran
    /// (1 ⇒ the serial pipeline, no fan-out possible).
    pub pool_threads: u64,
    /// Pool-wide steal-count delta observed across this query's
    /// execution (approximate under concurrent queries — steals are a
    /// process-global counter).
    pub pool_steals: u64,
    /// Pool-wide steal-attempt delta across this query's execution (same
    /// caveat); `pool_steals / pool_steal_attempts` is the steal success
    /// rate the steal-half mechanic is meant to raise.
    pub pool_steal_attempts: u64,
    /// Pool-wide LIFO-slot hit delta across this query's execution —
    /// tasks a worker picked back up while still cache-warm.
    pub pool_lifo_hits: u64,
    /// High-water mark of engine queries in flight at once, as of this
    /// query's completion (process-wide, monotone).
    pub concurrent_queries_peak: u64,
}

/// Engine queries currently in flight, and the high-water mark.
static QUERIES_IN_FLIGHT: AtomicU64 = AtomicU64::new(0);
static QUERIES_PEAK: AtomicU64 = AtomicU64::new(0);

/// RAII in-flight counter; decrements on every exit path of `run_query`
/// (errors included) so the gauge cannot drift.
struct InFlight;

impl InFlight {
    fn enter() -> (InFlight, u64) {
        let cur = QUERIES_IN_FLIGHT.fetch_add(1, Relaxed) + 1;
        QUERIES_PEAK.fetch_max(cur, Relaxed);
        (InFlight, cur)
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        QUERIES_IN_FLIGHT.fetch_sub(1, Relaxed);
    }
}

/// A query answer: the SQL text that ran (if any), the rows, and
/// execution counters.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub sql: Option<String>,
    pub output: OutputKind,
    pub rows: ResultSet,
    pub stats: ExecStats,
    /// Pipeline phase timings and PPF-level work counters.
    pub engine: EngineStats,
    /// The [`EngineSnapshot`] version this query ran against, when it
    /// came through a [`SharedEngine`] (0 for direct `XmlDb`/`EdgeDb`
    /// queries, which have no snapshot identity). Every row of one
    /// result comes from exactly this version — queries pin their
    /// snapshot at admission and never see a mid-flight swap.
    pub snapshot_version: u64,
}

impl QueryResult {
    /// Element ids of the result, in document order.
    pub fn ids(&self) -> Vec<i64> {
        self.rows
            .rows
            .iter()
            .filter_map(|r| r.first().and_then(Value::as_int))
            .collect()
    }
}

/// A fully-prepared query, cached under its XPath text: the translated
/// statement (behind `Arc`, so the `Select` addresses that key cached
/// plans stay stable for the lifetime of the entry), the translate-time
/// counters, and the plan snapshot captured from the first execution
/// (top-level branches planned eagerly, subquery blocks as execution
/// discovers them). Entries are dropped wholesale whenever the backing
/// store mutates — correctness also relies on the executor's own
/// `(table uid, version)`-keyed memos, but the statement and plans
/// themselves can go stale (path marking depends on loaded documents).
///
/// `Arc` + `Mutex` (not `Rc` + `RefCell`) because [`SharedEngine`] runs
/// queries against one cache from many threads at once.
struct CachedQuery {
    stmt: Option<Arc<SelectStmt>>,
    output: OutputKind,
    ppf_count: u64,
    union_branches: u64,
    path_filters: u64,
    plans: Mutex<HashMap<usize, Arc<SelectPlan>>>,
}

type QueryCache = Mutex<HashMap<String, Arc<CachedQuery>>>;

/// Cached distinct XPath strings before the cache is cleared wholesale.
const QUERY_CACHE_CAP: usize = 256;

fn empty_result(output: OutputKind) -> QueryResult {
    QueryResult {
        sql: None,
        output,
        rows: ResultSet {
            columns: vec!["id".into(), "dewey_pos".into()],
            rows: Vec::new(),
        },
        stats: ExecStats::default(),
        engine: EngineStats::default(),
        snapshot_version: 0,
    }
}

/// The schema-aware PPF system (the paper's main configuration).
pub struct XmlDb {
    store: SchemaAwareStore,
    opts: TranslateOptions,
    cache: QueryCache,
    docs: u64,
}

impl XmlDb {
    pub fn new(schema: &Schema) -> Result<XmlDb, EngineError> {
        Ok(XmlDb {
            store: SchemaAwareStore::new(schema).map_err(|e| QueryError::exec(e.to_string()))?,
            opts: TranslateOptions::default(),
            cache: QueryCache::default(),
            docs: 0,
        })
    }

    /// Toggle the §4.5 path-filter omission (for the ablation benchmark).
    pub fn set_path_marking(&mut self, on: bool) {
        self.opts.use_path_marking = on;
        lock_cache(&self.cache).clear();
    }

    /// Toggle FK joins for single child/parent steps (§4.2; off = always
    /// Dewey joins, for the ablation benchmark).
    pub fn set_fk_joins(&mut self, on: bool) {
        self.opts.use_fk_joins = on;
        lock_cache(&self.cache).clear();
    }

    /// Load a document; returns its tree-node → element-id mapping.
    /// Invalidates cached query plans (the translation itself can change:
    /// §4.5 path marking depends on which paths exist) and refreshes
    /// planner statistics for the mutated tables. The cache is cleared
    /// only *after* the mutation succeeds — a document that fails schema
    /// validation (checked before any row is written) must not cost the
    /// warm plans; the executor's own `(uid, version)`-keyed memos cover
    /// any partially-written rows on the rare mid-shred failure.
    pub fn load(&mut self, doc: &Document) -> Result<shred::LoadedDoc, EngineError> {
        let loaded = self
            .store
            .load(doc)
            .map_err(|e| QueryError::exec(e.to_string()))?;
        self.docs += 1;
        lock_cache(&self.cache).clear();
        rebuild_stats(self.store.db());
        Ok(loaded)
    }

    /// Parse and load an XML string. A parse failure happens before any
    /// store mutation, so it leaves the query cache warm.
    pub fn load_xml(&mut self, xml: &str) -> Result<shred::LoadedDoc, EngineError> {
        let doc = xmldom::parse(xml).map_err(|e| QueryError::parse(e.to_string()))?;
        self.load(&doc)
    }

    /// Build the §3.1 indexes; call once after bulk loading. Also the
    /// canonical statistics collection point: indexing bumps every
    /// table's version, so stats are recomputed here for the final
    /// loaded shape. As with [`XmlDb::load`], warm plans are dropped
    /// only once the mutation has succeeded.
    pub fn finalize(&mut self) -> Result<(), EngineError> {
        self.store
            .create_indexes()
            .map_err(|e| QueryError::exec(e.to_string()))?;
        lock_cache(&self.cache).clear();
        rebuild_stats(self.store.db());
        Ok(())
    }

    pub fn db(&self) -> &Database {
        self.store.db()
    }

    /// Documents successfully loaded into this store.
    pub fn doc_count(&self) -> u64 {
        self.docs
    }

    pub fn store(&self) -> &SchemaAwareStore {
        &self.store
    }

    /// Translate an XPath string to its SQL.
    pub fn translate(&self, xpath: &str) -> Result<Translation, EngineError> {
        let expr = xpath::parse_xpath(xpath).map_err(|e| QueryError::parse(e.to_string()))?;
        self.translate_expr(&expr)
    }

    fn translate_expr(&self, expr: &xpath::Expr) -> Result<Translation, EngineError> {
        translate(
            expr,
            Mapping::SchemaAware {
                schema: self.store.schema(),
                marking: self.store.marking(),
            },
            self.opts,
        )
        .map_err(|e| QueryError::translate(e.to_string()))
    }

    /// The SQL text for an XPath query (`None` when statically empty).
    pub fn sql_for(&self, xpath: &str) -> Result<Option<String>, EngineError> {
        Ok(self
            .translate(xpath)?
            .stmt
            .as_ref()
            .map(sqlexec::render_stmt))
    }

    /// Run an XPath query through the PPF translation.
    pub fn query(&self, xpath: &str) -> Result<QueryResult, EngineError> {
        Ok(self.query_traced(xpath)?.0)
    }

    /// Run an XPath query under resource limits: a deadline, a scanned-row
    /// budget and/or a [`CancelToken`], checked cooperatively at the
    /// executor's loop boundaries. Violations come back as
    /// [`QueryError::Limit`] / [`QueryError::Cancelled`]; other in-flight
    /// queries are unaffected.
    pub fn query_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<QueryResult, EngineError> {
        Ok(run_query(
            self.db(),
            xpath,
            &self.cache,
            &|e| self.translate_expr(e),
            limits,
        )?
        .0)
    }

    /// Run a query and also return its span tree (parse → translate →
    /// plan → execute → publish, with per-phase counters attached).
    /// Repeat runs of the same XPath hit the engine's query cache and
    /// skip the first three phases (their spans appear with zero
    /// duration; `EngineStats::plan_cache_hits` is set).
    pub fn query_traced(&self, xpath: &str) -> Result<(QueryResult, QueryTrace), EngineError> {
        self.query_traced_with_limits(xpath, QueryLimits::none())
    }

    /// [`XmlDb::query_traced`] under resource limits (see
    /// [`XmlDb::query_with_limits`]).
    pub fn query_traced_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<(QueryResult, QueryTrace), EngineError> {
        run_query(
            self.db(),
            xpath,
            &self.cache,
            &|e| self.translate_expr(e),
            limits,
        )
    }
}

/// The schema-oblivious (Edge-like) PPF system of §5.1.
pub struct EdgeDb {
    store: EdgeStore,
    cache: QueryCache,
    docs: u64,
}

impl Default for EdgeDb {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeDb {
    pub fn new() -> EdgeDb {
        EdgeDb {
            store: EdgeStore::new(),
            cache: QueryCache::default(),
            docs: 0,
        }
    }

    /// See [`XmlDb::load`]: the cache is cleared only after the mutation
    /// succeeds, so a rejected document keeps the warm plans.
    pub fn load(&mut self, doc: &Document) -> Result<shred::LoadedDoc, EngineError> {
        let loaded = self
            .store
            .load(doc)
            .map_err(|e| QueryError::exec(e.to_string()))?;
        self.docs += 1;
        lock_cache(&self.cache).clear();
        rebuild_stats(self.store.db());
        Ok(loaded)
    }

    pub fn load_xml(&mut self, xml: &str) -> Result<shred::LoadedDoc, EngineError> {
        let doc = xmldom::parse(xml).map_err(|e| QueryError::parse(e.to_string()))?;
        self.load(&doc)
    }

    pub fn finalize(&mut self) -> Result<(), EngineError> {
        self.store
            .create_indexes()
            .map_err(|e| QueryError::exec(e.to_string()))?;
        lock_cache(&self.cache).clear();
        rebuild_stats(self.store.db());
        Ok(())
    }

    pub fn db(&self) -> &Database {
        self.store.db()
    }

    /// Documents successfully loaded into this store.
    pub fn doc_count(&self) -> u64 {
        self.docs
    }

    pub fn translate(&self, xpath: &str) -> Result<Translation, EngineError> {
        let expr = xpath::parse_xpath(xpath).map_err(|e| QueryError::parse(e.to_string()))?;
        self.translate_expr(&expr)
    }

    fn translate_expr(&self, expr: &xpath::Expr) -> Result<Translation, EngineError> {
        translate(
            expr,
            Mapping::EdgeLike,
            TranslateOptions {
                use_path_marking: false,
                ..TranslateOptions::default()
            },
        )
        .map_err(|e| QueryError::translate(e.to_string()))
    }

    pub fn sql_for(&self, xpath: &str) -> Result<Option<String>, EngineError> {
        Ok(self
            .translate(xpath)?
            .stmt
            .as_ref()
            .map(sqlexec::render_stmt))
    }

    pub fn query(&self, xpath: &str) -> Result<QueryResult, EngineError> {
        Ok(self.query_traced(xpath)?.0)
    }

    /// Run a query under resource limits (see [`XmlDb::query_with_limits`]).
    pub fn query_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<QueryResult, EngineError> {
        Ok(run_query(
            self.db(),
            xpath,
            &self.cache,
            &|e| self.translate_expr(e),
            limits,
        )?
        .0)
    }

    /// Run a query and also return its span tree (see
    /// [`XmlDb::query_traced`]).
    pub fn query_traced(&self, xpath: &str) -> Result<(QueryResult, QueryTrace), EngineError> {
        self.query_traced_with_limits(xpath, QueryLimits::none())
    }

    /// [`EdgeDb::query_traced`] under resource limits (see
    /// [`XmlDb::query_with_limits`]).
    pub fn query_traced_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<(QueryResult, QueryTrace), EngineError> {
        run_query(
            self.db(),
            xpath,
            &self.cache,
            &|e| self.translate_expr(e),
            limits,
        )
    }
}

/// `REGEXP_LIKE` occurrences in an expression tree (path filters).
fn filters_in_expr(e: &Sql) -> u64 {
    match e {
        Sql::RegexpLike { subject, .. } => 1 + filters_in_expr(subject),
        Sql::And(xs) | Sql::Or(xs) => xs.iter().map(filters_in_expr).sum(),
        Sql::Not(x) | Sql::IsNull { expr: x, .. } => filters_in_expr(x),
        Sql::Cmp { lhs, rhs, .. } | Sql::Arith { lhs, rhs, .. } => {
            filters_in_expr(lhs) + filters_in_expr(rhs)
        }
        Sql::Between { expr, lo, hi, .. } => {
            filters_in_expr(expr) + filters_in_expr(lo) + filters_in_expr(hi)
        }
        Sql::Concat(a, b) => filters_in_expr(a) + filters_in_expr(b),
        Sql::Exists(s) | Sql::ScalarSubquery(s) => filters_in_select(s),
        Sql::Literal(_) | Sql::Column { .. } | Sql::CountStar => 0,
    }
}

fn filters_in_select(s: &Select) -> u64 {
    s.where_clause.as_ref().map_or(0, filters_in_expr)
        + s.projections
            .iter()
            .map(|p| filters_in_expr(&p.expr))
            .sum::<u64>()
}

fn path_filters_in_stmt(stmt: &SelectStmt) -> u64 {
    stmt.branches.iter().map(filters_in_select).sum()
}

/// The instrumented query pipeline shared by [`XmlDb`] and [`EdgeDb`]:
/// parse → translate → plan → execute → publish, each phase a span in the
/// returned trace, with work counters attached and mirrored into the
/// process-wide [`obs`] metrics registry.
fn run_query(
    db: &Database,
    xpath: &str,
    cache: &QueryCache,
    translate_expr: &dyn Fn(&xpath::Expr) -> Result<Translation, EngineError>,
    limits: QueryLimits,
) -> Result<(QueryResult, QueryTrace), EngineError> {
    // End-to-end latency is recorded for *every* query — errors and
    // limit aborts included — so the `engine.query_ns` histogram's
    // p50/p95/p99 describe what callers actually experienced, not just
    // the successes. Profiler query markers bracket the same window.
    obs::profile::record(obs::profile::EventKind::QueryStart, 0);
    let t0 = std::time::Instant::now();
    let result = run_query_inner(db, xpath, cache, translate_expr, limits);
    obs::Registry::global().observe("engine.query_ns", t0.elapsed().as_nanos() as u64);
    obs::profile::record(obs::profile::EventKind::QueryEnd, u64::from(result.is_ok()));
    if let Err(e) = &result {
        record_query_error(e);
    }
    result
}

fn run_query_inner(
    db: &Database,
    xpath: &str,
    cache: &QueryCache,
    translate_expr: &dyn Fn(&xpath::Expr) -> Result<Translation, EngineError>,
    limits: QueryLimits,
) -> Result<(QueryResult, QueryTrace), EngineError> {
    let (_in_flight, in_flight_now) = InFlight::enter();
    let mut trace = QueryTrace::new(xpath);
    let mut engine = EngineStats::default();
    let root = trace.start("query");

    let cached = lock_cache(cache).get(xpath).cloned();
    let entry = match cached {
        Some(entry) => {
            // Warm hit: parse, translate and plan were all done the first
            // time this XPath ran. The phases still appear in the trace —
            // as zero-duration spans — so every record keeps the same
            // five-phase shape; their `*_ns` stats stay 0.
            engine.plan_cache_hits = 1;
            let s = trace.start("parse");
            trace.end(s);
            let span = trace.start("translate");
            trace.counter(span, "ppfs", entry.ppf_count);
            trace.counter(span, "union_branches", entry.union_branches);
            trace.counter(span, "path_filters", entry.path_filters);
            trace.end(span);
            entry
        }
        None => {
            let span = trace.start("parse");
            let t0 = std::time::Instant::now();
            let expr = xpath::parse_xpath(xpath).map_err(|e| QueryError::parse(e.to_string()))?;
            engine.parse_ns = t0.elapsed().as_nanos() as u64;
            trace.end(span);

            let span = trace.start("translate");
            let t0 = std::time::Instant::now();
            let t = translate_expr(&expr)?;
            engine.translate_ns = t0.elapsed().as_nanos() as u64;
            let mut union_branches = 0;
            let mut path_filters = 0;
            if let Some(stmt) = &t.stmt {
                union_branches = stmt.branches.len() as u64;
                path_filters = path_filters_in_stmt(stmt);
            }
            trace.counter(span, "ppfs", t.ppf_count as u64);
            trace.counter(span, "union_branches", union_branches);
            trace.counter(span, "path_filters", path_filters);
            trace.end(span);

            let entry = Arc::new(CachedQuery {
                stmt: t.stmt.map(Arc::new),
                output: t.output,
                ppf_count: t.ppf_count as u64,
                union_branches,
                path_filters,
                plans: Mutex::new(HashMap::new()),
            });
            let mut map = lock_cache(cache);
            if map.len() >= QUERY_CACHE_CAP {
                map.clear();
            }
            map.insert(xpath.to_string(), entry.clone());
            entry
        }
    };
    engine.ppf_count = entry.ppf_count;
    engine.union_branches = entry.union_branches;
    engine.path_filters = entry.path_filters;

    let mut result = match entry.stmt.as_deref() {
        None => {
            // Statically empty: plan/execute/publish phases are trivial
            // but still appear in the trace, so every record has the same
            // five-phase shape.
            for name in ["plan", "execute", "publish"] {
                let s = trace.start(name);
                trace.end(s);
            }
            empty_result(entry.output)
        }
        Some(stmt) => {
            let span = trace.start("plan");
            if engine.plan_cache_hits == 0 {
                let t0 = std::time::Instant::now();
                let mut plan_steps = 0u64;
                let mut plans = lock_cache(&entry.plans);
                for branch in &stmt.branches {
                    let plan = Arc::new(
                        sqlexec::plan::plan_select(db, branch, &[]).map_err(QueryError::from)?,
                    );
                    plan_steps += plan.steps.len() as u64;
                    plans.insert(branch as *const Select as usize, plan);
                }
                engine.plan_ns = t0.elapsed().as_nanos() as u64;
                trace.counter(span, "steps", plan_steps);
            }
            trace.end(span);

            let span = trace.start("execute");
            let pool = ppf_pool::global();
            let steals_before = pool.steal_count();
            let steal_attempts_before = pool.steal_attempt_count();
            let lifo_hits_before = pool.lifo_hit_count();
            let vm_before = regexlite::stats::snapshot();
            let exec = Executor::new(db);
            exec.seed_plans(&lock_cache(&entry.plans));
            exec.set_limits(limits.clone());
            let t0 = std::time::Instant::now();
            // Contain any panic that escapes the executor (its own pool
            // workers are already caught per task): one bad query must
            // degrade to an error, not take down every query in the
            // process. The executor's shared caches recover from the
            // resulting lock poisoning on their next use.
            let run_outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exec.run(stmt)));
            let rows = match run_outcome {
                Ok(Ok(rows)) => rows,
                Ok(Err(e)) => return Err(QueryError::from(e)),
                Err(payload) => {
                    return Err(QueryError::exec(format!(
                        "panic during execution: {}",
                        panic_message(payload.as_ref())
                    )))
                }
            };
            engine.execute_ns = t0.elapsed().as_nanos() as u64;
            // Keep every plan this run produced (subquery blocks are
            // planned lazily during execution) for future warm runs.
            lock_cache(&entry.plans).extend(exec.plan_snapshot());
            let vm = regexlite::stats::snapshot().since(&vm_before);
            engine.vm_match_calls = vm.match_calls;
            engine.vm_steps = vm.vm_steps;
            engine.regex_compiles = vm.compiles;
            engine.dfa_matches = vm.dfa_matches;
            engine.dfa_fallbacks = vm.dfa_fallbacks;
            for (plan, ops) in exec.profiled_steps() {
                for (i, (step, op)) in plan.steps.iter().zip(&ops).enumerate() {
                    if step.table == shred::naming::PATHS_TABLE {
                        engine.path_candidates += op.rows_in;
                        engine.path_survivors += op.rows_out;
                    }
                    if i > 0 {
                        engine.join_rows_in += op.rows_in;
                        engine.join_rows_out += op.rows_out;
                    }
                }
            }
            let stats = exec.stats();
            engine.path_memo_hits = stats.path_memo_hits;
            engine.path_memo_misses = stats.path_memo_misses;
            engine.merge_probes = stats.merge_probes;
            engine.probe_allocs = stats.probe_allocs;
            engine.par_tasks = stats.par_tasks;
            engine.par_chunks = stats.par_chunks;
            engine.par_rows = stats.par_rows;
            engine.par_chunk_rows_max = stats.par_chunk_rows_max;
            engine.pool_threads = pool.threads() as u64;
            engine.pool_steals = pool.steal_count().saturating_sub(steals_before);
            engine.pool_steal_attempts = pool
                .steal_attempt_count()
                .saturating_sub(steal_attempts_before);
            engine.pool_lifo_hits = pool.lifo_hit_count().saturating_sub(lifo_hits_before);
            trace.counter(span, "rows_scanned", stats.rows_scanned);
            trace.counter(span, "index_probes", stats.index_probes);
            trace.counter(span, "predicate_evals", stats.predicate_evals);
            trace.counter(span, "subqueries", stats.subqueries);
            trace.counter(span, "path_candidates", engine.path_candidates);
            trace.counter(span, "path_survivors", engine.path_survivors);
            trace.counter(span, "join_rows_in", engine.join_rows_in);
            trace.counter(span, "join_rows_out", engine.join_rows_out);
            trace.counter(span, "vm_match_calls", engine.vm_match_calls);
            trace.counter(span, "vm_steps", engine.vm_steps);
            trace.counter(span, "dfa_matches", engine.dfa_matches);
            trace.counter(span, "path_memo_hits", engine.path_memo_hits);
            trace.counter(span, "merge_probes", engine.merge_probes);
            trace.counter(span, "par_tasks", engine.par_tasks);
            trace.counter(span, "par_chunks", engine.par_chunks);
            trace.counter(span, "par_rows", engine.par_rows);
            trace.counter(span, "par_chunk_rows_max", engine.par_chunk_rows_max);
            trace.counter(span, "pool_threads", engine.pool_threads);
            trace.counter(span, "pool_steals", engine.pool_steals);
            trace.counter(span, "pool_steal_attempts", engine.pool_steal_attempts);
            trace.counter(span, "pool_lifo_hits", engine.pool_lifo_hits);
            trace.end(span);

            let span = trace.start("publish");
            let t0 = std::time::Instant::now();
            let row_count = rows.rows.len() as u64;
            let result = QueryResult {
                sql: Some(sqlexec::render_stmt(stmt)),
                output: entry.output,
                rows,
                stats,
                engine: EngineStats::default(),
                snapshot_version: 0,
            };
            engine.publish_ns = t0.elapsed().as_nanos() as u64;
            trace.counter(span, "rows", row_count);
            trace.end(span);
            result
        }
    };
    trace.end(root);
    engine.pool_threads = engine.pool_threads.max(ppf_pool::current_threads() as u64);
    engine.concurrent_queries_peak = QUERIES_PEAK.load(Relaxed);
    result.engine = engine;

    let reg = obs::Registry::global();
    reg.incr("engine.queries", 1);
    reg.observe("engine.parse_ns", engine.parse_ns);
    reg.observe("engine.translate_ns", engine.translate_ns);
    reg.observe("engine.plan_ns", engine.plan_ns);
    reg.observe("engine.execute_ns", engine.execute_ns);
    reg.observe("engine.publish_ns", engine.publish_ns);
    reg.observe("engine.result_rows", result.rows.rows.len() as u64);
    reg.incr("engine.ppfs", engine.ppf_count);
    reg.incr("engine.path_filters", engine.path_filters);
    reg.incr("engine.path_candidates", engine.path_candidates);
    reg.incr("engine.path_survivors", engine.path_survivors);
    reg.incr("engine.rows_scanned", result.stats.rows_scanned);
    reg.incr("engine.index_probes", result.stats.index_probes);
    reg.incr("engine.vm_steps", engine.vm_steps);
    reg.incr("engine.plan_cache_hits", engine.plan_cache_hits);
    reg.incr("engine.dfa_matches", engine.dfa_matches);
    reg.incr("engine.dfa_fallbacks", engine.dfa_fallbacks);
    reg.incr("engine.path_memo_hits", engine.path_memo_hits);
    reg.incr("engine.merge_probes", engine.merge_probes);
    reg.incr("engine.par_tasks", engine.par_tasks);
    reg.incr("engine.par_chunks", engine.par_chunks);
    reg.incr("engine.par_rows", engine.par_rows);
    reg.set_max("engine.par_chunk_rows_max", engine.par_chunk_rows_max);
    reg.incr("engine.pool_steals", engine.pool_steals);
    reg.incr("engine.pool_steal_attempts", engine.pool_steal_attempts);
    reg.incr("engine.pool_lifo_hits", engine.pool_lifo_hits);
    reg.incr("engine.par_degraded", result.stats.par_degraded);
    // Histogram max = the observed high-water mark of concurrency.
    reg.observe("engine.concurrent_queries", in_flight_now);
    reg.observe("engine.pool_threads", engine.pool_threads);
    mirror_poison_counters(reg);

    Ok((result, trace))
}

// ---------------------------------------------------------------------
// Copy-on-write snapshots & hot reload.
// ---------------------------------------------------------------------

/// Snapshots ever retired (dropped after their last pinned query
/// finished) and currently alive, process-wide. The live gauge minus 1
/// (the serving snapshot) is how many superseded versions are still
/// pinned by in-flight queries.
static SNAPSHOTS_LIVE: AtomicU64 = AtomicU64::new(0);
static SNAPSHOTS_RETIRED: AtomicU64 = AtomicU64::new(0);

/// Snapshots currently alive across every [`SharedEngine`] (serving +
/// superseded-but-pinned).
pub fn snapshots_live() -> u64 {
    SNAPSHOTS_LIVE.load(Relaxed)
}

/// Snapshots fully drained and dropped since process start.
pub fn snapshots_retired() -> u64 {
    SNAPSHOTS_RETIRED.load(Relaxed)
}

/// One immutable serving version of the engine: a finalized [`XmlDb`]
/// (store + statistics + its own XPath query cache) plus identity
/// metadata. Snapshots are held behind `Arc` and swapped atomically by
/// [`SharedEngine::reload_with`]; a query pins its snapshot at admission
/// and therefore always sees one consistent version. The snapshot is
/// dropped — and counted in `engine.snapshots_retired` — only when the
/// last pinned query releases it.
pub struct EngineSnapshot {
    db: XmlDb,
    version: u64,
    loaded_at: std::time::SystemTime,
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("version", &self.version)
            .field("docs", &self.doc_count())
            .field("tables", &self.table_count())
            .field("rows", &self.row_count())
            .finish()
    }
}

impl EngineSnapshot {
    fn new(db: XmlDb, version: u64) -> EngineSnapshot {
        SNAPSHOTS_LIVE.fetch_add(1, Relaxed);
        obs::Registry::global().set_gauge("engine.snapshots_live", SNAPSHOTS_LIVE.load(Relaxed));
        EngineSnapshot {
            db,
            version,
            loaded_at: std::time::SystemTime::now(),
        }
    }

    /// Monotone version stamp; bumped by one on every successful reload.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// When this snapshot's store finished building.
    pub fn loaded_at(&self) -> std::time::SystemTime {
        self.loaded_at
    }

    /// Seconds since the Unix epoch when this snapshot was built (0 if
    /// the clock is before the epoch).
    pub fn loaded_at_unix(&self) -> u64 {
        self.loaded_at
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }

    /// Documents loaded into this snapshot's store.
    pub fn doc_count(&self) -> u64 {
        self.db.doc_count()
    }

    /// Relations in this snapshot's store.
    pub fn table_count(&self) -> usize {
        self.db.db().len()
    }

    /// Total rows across all relations.
    pub fn row_count(&self) -> usize {
        self.db.db().total_rows()
    }

    /// The snapshot's relational store (read-only).
    pub fn db(&self) -> &Database {
        self.db.db()
    }

    /// Run an XPath query against exactly this version (see
    /// [`XmlDb::query_with_limits`]). The result carries this snapshot's
    /// version stamp.
    pub fn query_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<QueryResult, EngineError> {
        let mut r = self.db.query_with_limits(xpath, limits)?;
        r.snapshot_version = self.version;
        Ok(r)
    }

    /// Translate an XPath against this version's schema/marking.
    pub fn translate(&self, xpath: &str) -> Result<Translation, EngineError> {
        self.db.translate(xpath)
    }
}

impl Drop for EngineSnapshot {
    fn drop(&mut self) {
        SNAPSHOTS_LIVE.fetch_sub(1, Relaxed);
        SNAPSHOTS_RETIRED.fetch_add(1, Relaxed);
        let reg = obs::Registry::global();
        reg.incr("engine.snapshots_retired", 1);
        reg.set_gauge("engine.snapshots_live", SNAPSHOTS_LIVE.load(Relaxed));
    }
}

struct EngineShared {
    /// The serving snapshot. The mutex guards only the pointer swap —
    /// queries clone the `Arc` and release the lock before running, so
    /// the critical section is a refcount bump.
    current: Mutex<Arc<EngineSnapshot>>,
    /// Held for the whole of one reload (staging included), so a second
    /// concurrent reload gets a typed [`ReloadError::Busy`] instead of
    /// building a snapshot that would immediately be overwritten.
    reloading: Mutex<()>,
}

/// A cloneable, thread-safe handle over a loaded [`XmlDb`] for running
/// **concurrent read-only queries**, now with **hot reload**: the
/// serving state is an immutable [`EngineSnapshot`] swapped atomically
/// by [`SharedEngine::reload_with`]. Each query pins the current
/// snapshot `Arc` at admission, so in-flight queries always see one
/// consistent version while the next one is staged entirely off the
/// serving path; a failed or panicking reload leaves the old snapshot
/// serving untouched.
///
/// Construction consumes the `XmlDb` (load and finalize first; the
/// mutating API takes `&mut self` and is therefore unreachable through
/// the shared handle). All clones see one serving snapshot; per-query
/// [`EngineStats`] merge into the process-wide [`obs::Registry`] exactly
/// as serial queries do, plus the reload counters
/// (`engine.reload_{attempts,failures,swaps,busy}`) and the
/// snapshot-drain gauges (`engine.snapshots_live`,
/// `engine.snapshots_retired`).
#[derive(Clone)]
pub struct SharedEngine {
    shared: Arc<EngineShared>,
}

impl SharedEngine {
    /// Wrap a fully-loaded database for concurrent use, as snapshot
    /// version 1.
    pub fn new(db: XmlDb) -> SharedEngine {
        let snap = Arc::new(EngineSnapshot::new(db, 1));
        obs::Registry::global().set_gauge("engine.snapshot_version", 1);
        SharedEngine {
            shared: Arc::new(EngineShared {
                current: Mutex::new(snap),
                reloading: Mutex::new(()),
            }),
        }
    }

    /// Pin the serving snapshot. The returned `Arc` keeps that exact
    /// version alive (and queryable) even across concurrent reloads;
    /// drop it to let a superseded snapshot retire.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.shared
            .current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The serving snapshot's version stamp.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Stage a replacement snapshot and swap it in atomically.
    ///
    /// `build` runs entirely off the serving path (parse → shred →
    /// finalize → stats on its own staging [`XmlDb`]); queries keep
    /// being answered from the old snapshot for its whole duration.
    /// Every failure mode — a typed build error or a panic mid-build
    /// (contained here) — leaves the old snapshot serving untouched and
    /// is reported as a [`ReloadError`], counted under
    /// `engine.reload_failures`. Only one reload stages at a time;
    /// concurrent calls get [`ReloadError::Busy`] immediately
    /// (`engine.reload_busy`). On success the new snapshot (version =
    /// old + 1) is swapped in with one pointer store and returned;
    /// queries admitted after the swap see it, queries already in flight
    /// finish on the version they pinned.
    pub fn reload_with<F>(&self, build: F) -> Result<Arc<EngineSnapshot>, ReloadError>
    where
        F: FnOnce() -> Result<XmlDb, ReloadError>,
    {
        let reg = obs::Registry::global();
        reg.incr("engine.reload_attempts", 1);
        let Ok(_staging) = self.shared.reloading.try_lock() else {
            reg.incr("engine.reload_busy", 1);
            return Err(ReloadError::Busy);
        };
        let t0 = std::time::Instant::now();
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build));
        let db = match built {
            Ok(Ok(db)) => db,
            Ok(Err(e)) => {
                reg.incr("engine.reload_failures", 1);
                reg.incr(&format!("engine.reload_failures.{}", e.kind()), 1);
                return Err(e);
            }
            Err(payload) => {
                let e = ReloadError::panic(panic_message(payload.as_ref()));
                reg.incr("engine.reload_failures", 1);
                reg.incr(&format!("engine.reload_failures.{}", e.kind()), 1);
                return Err(e);
            }
        };
        // Swap: one pointer store under the lock. The old snapshot's Arc
        // keeps serving every query that pinned it; it retires when the
        // last one finishes. The staging XmlDb arrives with a fresh
        // (empty) XPath query cache, and its fresh table uids make the
        // executor's (uid, version)-keyed memos and the statistics cache
        // miss cleanly — no explicit invalidation to forget.
        let snap = {
            let mut cur = self
                .shared
                .current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let snap = Arc::new(EngineSnapshot::new(db, cur.version + 1));
            *cur = snap.clone();
            snap
        };
        reg.incr("engine.reload_swaps", 1);
        reg.observe("engine.reload_ns", t0.elapsed().as_nanos() as u64);
        reg.set_gauge("engine.snapshot_version", snap.version);
        Ok(snap)
    }

    /// Run an XPath query (safe from any thread, any number at a time).
    /// The result's `snapshot_version` stamps which version answered.
    pub fn query(&self, xpath: &str) -> Result<QueryResult, EngineError> {
        self.query_with_limits(xpath, QueryLimits::none())
    }

    /// Run an XPath query under resource limits — a deadline, a
    /// scanned-row budget and/or a [`CancelToken`] another thread can
    /// fire. An aborted query returns [`QueryError::Limit`] /
    /// [`QueryError::Cancelled`]; other in-flight queries on this engine
    /// keep running.
    pub fn query_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<QueryResult, EngineError> {
        self.snapshot().query_with_limits(xpath, limits)
    }

    /// Run a query and return its span tree (see [`XmlDb::query_traced`]).
    pub fn query_traced(&self, xpath: &str) -> Result<(QueryResult, QueryTrace), EngineError> {
        self.query_traced_with_limits(xpath, QueryLimits::none())
    }

    /// [`SharedEngine::query_traced`] under resource limits (see
    /// [`XmlDb::query_with_limits`]).
    pub fn query_traced_with_limits(
        &self,
        xpath: &str,
        limits: QueryLimits,
    ) -> Result<(QueryResult, QueryTrace), EngineError> {
        let snap = self.snapshot();
        let (mut r, trace) = snap.db.query_traced_with_limits(xpath, limits)?;
        r.snapshot_version = snap.version;
        Ok((r, trace))
    }

    /// Translate an XPath to its SQL statement without executing it (the
    /// server's `explain`/`analyze` verbs plan from this). For plan
    /// rendering against the same version, pin [`SharedEngine::snapshot`]
    /// and use its `db()` instead.
    pub fn translate(&self, xpath: &str) -> Result<Translation, EngineError> {
        self.snapshot().translate(xpath)
    }

    /// The generated SQL for an XPath (`None` when statically empty).
    pub fn sql_for(&self, xpath: &str) -> Result<Option<String>, EngineError> {
        self.snapshot().db.sql_for(xpath)
    }
}

/// Process-wide peak of simultaneously running engine queries.
pub fn concurrent_queries_peak() -> u64 {
    QUERIES_PEAK.load(Relaxed)
}

/// Engine queries in flight right now (the live gauge behind
/// [`concurrent_queries_peak`]; the server's `health` verb reports it).
pub fn concurrent_queries_in_flight() -> u64 {
    QUERIES_IN_FLIGHT.load(Relaxed)
}
