//! High-level façade: an XML database backed by the relational engine.
//!
//! [`XmlDb`] is the schema-aware system of the paper (shredding per §3,
//! PPF translation per §4); [`EdgeDb`] is the schema-oblivious variant of
//! §5.1. Both run the generated SQL on the `sqlexec`/`relstore` engine and
//! return element ids in document order.

use relstore::{Database, Value};
use shred::{EdgeStore, SchemaAwareStore};
use sqlexec::{ExecStats, Executor, ResultSet};
use xmldom::Document;
use xmlschema::Schema;

use crate::translate::{
    translate, Mapping, OutputKind, TranslateOptions, Translation,
};

/// Engine error (shredding, translation or execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError(pub String);

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine error: {}", self.0)
    }
}

impl std::error::Error for EngineError {}

macro_rules! wrap_err {
    ($e:expr) => {
        $e.map_err(|e| EngineError(e.to_string()))
    };
}

/// A query answer: the SQL text that ran (if any), the rows, and
/// execution counters.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub sql: Option<String>,
    pub output: OutputKind,
    pub rows: ResultSet,
    pub stats: ExecStats,
}

impl QueryResult {
    /// Element ids of the result, in document order.
    pub fn ids(&self) -> Vec<i64> {
        self.rows
            .rows
            .iter()
            .filter_map(|r| r.first().and_then(Value::as_int))
            .collect()
    }
}

fn empty_result(output: OutputKind) -> QueryResult {
    QueryResult {
        sql: None,
        output,
        rows: ResultSet {
            columns: vec!["id".into(), "dewey_pos".into()],
            rows: Vec::new(),
        },
        stats: ExecStats::default(),
    }
}

/// The schema-aware PPF system (the paper's main configuration).
pub struct XmlDb {
    store: SchemaAwareStore,
    opts: TranslateOptions,
}

impl XmlDb {
    pub fn new(schema: &Schema) -> Result<XmlDb, EngineError> {
        Ok(XmlDb {
            store: wrap_err!(SchemaAwareStore::new(schema))?,
            opts: TranslateOptions::default(),
        })
    }

    /// Toggle the §4.5 path-filter omission (for the ablation benchmark).
    pub fn set_path_marking(&mut self, on: bool) {
        self.opts.use_path_marking = on;
    }

    /// Toggle FK joins for single child/parent steps (§4.2; off = always
    /// Dewey joins, for the ablation benchmark).
    pub fn set_fk_joins(&mut self, on: bool) {
        self.opts.use_fk_joins = on;
    }

    /// Load a document; returns its tree-node → element-id mapping.
    pub fn load(&mut self, doc: &Document) -> Result<shred::LoadedDoc, EngineError> {
        wrap_err!(self.store.load(doc))
    }

    /// Parse and load an XML string.
    pub fn load_xml(&mut self, xml: &str) -> Result<shred::LoadedDoc, EngineError> {
        let doc = wrap_err!(xmldom::parse(xml))?;
        self.load(&doc)
    }

    /// Build the §3.1 indexes; call once after bulk loading.
    pub fn finalize(&mut self) -> Result<(), EngineError> {
        wrap_err!(self.store.create_indexes())
    }

    pub fn db(&self) -> &Database {
        self.store.db()
    }

    pub fn store(&self) -> &SchemaAwareStore {
        &self.store
    }

    /// Translate an XPath string to its SQL.
    pub fn translate(&self, xpath: &str) -> Result<Translation, EngineError> {
        let expr = wrap_err!(xpath::parse_xpath(xpath))?;
        wrap_err!(translate(
            &expr,
            Mapping::SchemaAware {
                schema: self.store.schema(),
                marking: self.store.marking(),
            },
            self.opts,
        ))
    }

    /// The SQL text for an XPath query (`None` when statically empty).
    pub fn sql_for(&self, xpath: &str) -> Result<Option<String>, EngineError> {
        Ok(self
            .translate(xpath)?
            .stmt
            .as_ref()
            .map(sqlexec::render_stmt))
    }

    /// Run an XPath query through the PPF translation.
    pub fn query(&self, xpath: &str) -> Result<QueryResult, EngineError> {
        let t = self.translate(xpath)?;
        run_translation(self.db(), t)
    }
}

/// The schema-oblivious (Edge-like) PPF system of §5.1.
pub struct EdgeDb {
    store: EdgeStore,
}

impl Default for EdgeDb {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeDb {
    pub fn new() -> EdgeDb {
        EdgeDb {
            store: EdgeStore::new(),
        }
    }

    pub fn load(&mut self, doc: &Document) -> Result<shred::LoadedDoc, EngineError> {
        wrap_err!(self.store.load(doc))
    }

    pub fn load_xml(&mut self, xml: &str) -> Result<shred::LoadedDoc, EngineError> {
        let doc = wrap_err!(xmldom::parse(xml))?;
        self.load(&doc)
    }

    pub fn finalize(&mut self) -> Result<(), EngineError> {
        wrap_err!(self.store.create_indexes())
    }

    pub fn db(&self) -> &Database {
        self.store.db()
    }

    pub fn translate(&self, xpath: &str) -> Result<Translation, EngineError> {
        let expr = wrap_err!(xpath::parse_xpath(xpath))?;
        wrap_err!(translate(
            &expr,
            Mapping::EdgeLike,
            TranslateOptions {
                use_path_marking: false,
                ..TranslateOptions::default()
            },
        ))
    }

    pub fn sql_for(&self, xpath: &str) -> Result<Option<String>, EngineError> {
        Ok(self
            .translate(xpath)?
            .stmt
            .as_ref()
            .map(sqlexec::render_stmt))
    }

    pub fn query(&self, xpath: &str) -> Result<QueryResult, EngineError> {
        let t = self.translate(xpath)?;
        run_translation(self.db(), t)
    }
}

fn run_translation(db: &Database, t: Translation) -> Result<QueryResult, EngineError> {
    match t.stmt {
        None => Ok(empty_result(t.output)),
        Some(stmt) => {
            let exec = Executor::new(db);
            let rows = wrap_err!(exec.run(&stmt))?;
            Ok(QueryResult {
                sql: Some(sqlexec::render_stmt(&stmt)),
                output: t.output,
                rows,
                stats: exec.stats(),
            })
        }
    }
}
