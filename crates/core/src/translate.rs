//! The PPF-based XPath→SQL translation (paper §4, Algorithm 1).
//!
//! The translator walks the backbone path PPF by PPF, gradually building a
//! SQL statement:
//!
//! * **forward PPFs** join their prominent relation with `Paths` and
//!   filter the root-to-node path with a regular expression covering the
//!   maximal known forward path (§4.1/§4.3);
//! * **backward PPFs** refine the *previous* PPF's path filter and join
//!   the ancestor relation structurally (§4.3, Table 3-3);
//! * **order-axis PPFs** (following/preceding/…-sibling) constrain the
//!   path's last segment and use the Dewey conditions of Table 2;
//! * consecutive PPFs are joined by **foreign keys** (single child/parent
//!   steps) or **Dewey `BETWEEN`/`<`/`>` comparisons** (§4.2);
//! * predicates become conditions / `EXISTS` subselects with the same
//!   machinery, predicates that are pure backward paths fold into the
//!   path filter (Table 5-2);
//! * ambiguous prominent steps split the statement into a `UNION`
//!   (§4.4) — but only at the backbone; in predicates they become `OR`s
//!   of `EXISTS`;
//! * the §4.5 marking (U-P/F-P/I-P) omits provably redundant path
//!   filters (toggleable, for the ablation benchmark).
//!
//! The same translator drives both the schema-aware and the Edge-like
//! mapping ([`Mapping`]).

use std::collections::HashMap;

use shred::naming::*;
use sqlexec::{CmpOp, Expr as Sql, OrderKey, Projection, Select, SelectStmt, TableRef};
use xmlschema::{Marking, PathMark, Schema, ValueType};
use xpath::{Axis, CompOp, Expr as XExpr, LocationPath, NodeTest, Step};

use crate::nav::{self, Candidates};
use crate::pattern::{constrain_last, proper_cuts, split_last, PatTest, Pattern, PatternSet};
use crate::ppf::{split_ppfs, Ppf, PpfKind};

/// Which shredded layout the translation targets.
#[derive(Clone, Copy)]
pub enum Mapping<'a> {
    SchemaAware {
        schema: &'a Schema,
        marking: &'a Marking,
    },
    EdgeLike,
}

/// Translation options.
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Apply the §4.5 path-filter omission (U-P/F-P/I-P marking).
    /// Ignored for the Edge-like mapping (which has no schema).
    pub use_path_marking: bool,
    /// Use foreign-key joins for single child/parent steps (§4.2: "Our
    /// algorithm uses the second way, because it is expected to be
    /// faster"). Off = always Dewey joins, for the ablation benchmark.
    pub use_fk_joins: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            use_path_marking: true,
            use_fk_joins: true,
        }
    }
}

/// What the result rows represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// `id`, `dewey_pos` of the selected elements.
    Elements,
    /// plus a `value` column holding a selected attribute.
    AttributeValue,
    /// plus a `value` column holding text content.
    TextValue,
}

/// The result of translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// `None` when the query is statically empty (infeasible against the
    /// schema).
    pub stmt: Option<SelectStmt>,
    pub output: OutputKind,
    /// Total primitive path fragments identified across every branch and
    /// predicate path (an observability counter: "how much holistic path
    /// evaluation did this query get").
    pub ppf_count: usize,
}

/// Translation failure (query outside the supported subset, or schema
/// mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError(pub String);

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XPath-to-SQL translation error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

/// Hard cap on UNION branches produced by SQL splitting.
const MAX_BRANCHES: usize = 128;

/// Translate a full XPath expression (path or union of paths).
pub fn translate(
    expr: &XExpr,
    mapping: Mapping<'_>,
    opts: TranslateOptions,
) -> Result<Translation, TranslateError> {
    let paths: Vec<&LocationPath> = match expr {
        XExpr::Path(p) => vec![p],
        XExpr::Union(ps) => ps.iter().collect(),
        other => {
            return Err(TranslateError(format!(
                "top-level expression must be a path, got `{other}`"
            )))
        }
    };
    let mut ctx = Ctx {
        mapping,
        opts,
        alias_seq: HashMap::new(),
        ppf_count: 0,
    };
    let mut selects: Vec<Select> = Vec::new();
    let mut output: Option<OutputKind> = None;
    for p in paths {
        if !p.absolute {
            return Err(TranslateError(
                "top-level paths must be absolute".to_string(),
            ));
        }
        let (branch_selects, kind) = ctx.translate_top_path(p)?;
        match output {
            None => output = Some(kind),
            Some(k) if k == kind => {}
            Some(_) => {
                return Err(TranslateError(
                    "union branches select different result kinds".to_string(),
                ))
            }
        }
        selects.extend(branch_selects);
    }
    let output = output.unwrap_or(OutputKind::Elements);
    if selects.is_empty() {
        return Ok(Translation {
            stmt: None,
            output,
            ppf_count: ctx.ppf_count,
        });
    }
    Ok(Translation {
        stmt: Some(SelectStmt {
            branches: selects,
            order_by: vec![OrderKey {
                expr: Sql::Column {
                    qualifier: None,
                    name: "dewey_pos".to_string(),
                },
                desc: false,
            }],
        }),
        output,
        ppf_count: ctx.ppf_count,
    })
}

/// Reference to a bound relation (the prominent relation of the previous
/// PPF, or the predicated node inside predicates).
#[derive(Clone)]
struct NodeRef {
    alias: String,
    relation: String,
    pattern: PatternSet,
    /// `None` for the Edge-like mapping (no schema to navigate).
    candidates: Option<Candidates>,
    paths_alias: Option<String>,
    /// Index of this node's path-filter conjunct within the branch,
    /// so backward PPFs can replace it with a refined filter.
    filter_idx: Option<usize>,
}

/// Context for translating `position()` predicates: the axis and node
/// test of the predicated step (position is only sound in a step's first
/// predicate, so this is only provided there).
#[derive(Clone)]
struct PosInfo {
    axis: Axis,
    test: NodeTest,
}

/// One in-progress SQL branch (pre-UNION).
#[derive(Clone)]
struct Branch {
    from: Vec<TableRef>,
    conjuncts: Vec<Sql>,
    prev: Option<NodeRef>,
}

impl Branch {
    fn push(&mut self, cond: Sql) -> Option<usize> {
        match cond {
            Sql::Literal(relstore::Value::Bool(true)) => None,
            c => {
                self.conjuncts.push(c);
                Some(self.conjuncts.len() - 1)
            }
        }
    }

    fn is_statically_false(&self) -> bool {
        self.conjuncts
            .iter()
            .any(|c| matches!(c, Sql::Literal(relstore::Value::Bool(false))))
    }
}

struct Ctx<'a> {
    mapping: Mapping<'a>,
    opts: TranslateOptions,
    alias_seq: HashMap<String, usize>,
    ppf_count: usize,
}

const TRUE: Sql = Sql::Literal(relstore::Value::Bool(true));
const FALSE: Sql = Sql::Literal(relstore::Value::Bool(false));

fn ff_byte() -> Sql {
    Sql::Literal(relstore::Value::Bytes(vec![0xFF]))
}

fn col(alias: &str, name: &str) -> Sql {
    Sql::column(alias, name)
}

fn test_name(test: &NodeTest) -> Result<Option<&str>, TranslateError> {
    match test {
        NodeTest::Name(n) => Ok(Some(n.as_str())),
        NodeTest::Wildcard | NodeTest::AnyNode => Ok(None),
        NodeTest::Text => Err(TranslateError(
            "text() node test not allowed here".to_string(),
        )),
    }
}

/// Node test in pattern space (`*` ≠ `node()`: only the latter accepts
/// the document root).
fn pat_test(test: &NodeTest) -> Result<PatTest, TranslateError> {
    match test {
        NodeTest::Name(n) => Ok(PatTest::Name(n.clone())),
        NodeTest::Wildcard => Ok(PatTest::AnyElement),
        NodeTest::AnyNode => Ok(PatTest::AnyNode),
        NodeTest::Text => Err(TranslateError(
            "text() node test not allowed here".to_string(),
        )),
    }
}

fn cmp_op(op: CompOp) -> CmpOp {
    match op {
        CompOp::Eq => CmpOp::Eq,
        CompOp::Ne => CmpOp::Ne,
        CompOp::Lt => CmpOp::Lt,
        CompOp::Le => CmpOp::Le,
        CompOp::Gt => CmpOp::Gt,
        CompOp::Ge => CmpOp::Ge,
    }
}

fn literal_value(e: &XExpr) -> Option<relstore::Value> {
    match e {
        XExpr::Literal(s) => Some(relstore::Value::Str(s.clone())),
        XExpr::Number(n) => Some(if n.fract() == 0.0 && n.is_finite() {
            relstore::Value::Int(*n as i64)
        } else {
            relstore::Value::Float(*n)
        }),
        _ => None,
    }
}

/// How to use the value of a path inside a predicate.
enum ValueCond {
    /// Bare existence.
    Exists,
    /// Compare the value column with a literal, possibly through an
    /// arithmetic wrapper (the wrapper maps the column expression to the
    /// comparison's left side).
    Cmp {
        op: CmpOp,
        rhs: relstore::Value,
        wrap: Option<Box<dyn Fn(Sql) -> Sql>>,
    },
    /// `contains(value, needle)` — unanchored regex containment.
    ContainsStr(String),
    /// `starts-with(value, prefix)` — anchored regex.
    StartsWithStr(String),
}

impl<'a> Ctx<'a> {
    fn fresh_alias(&mut self, base: &str) -> String {
        let n = self.alias_seq.entry(base.to_string()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base.to_string()
        } else {
            format!("{base}_{n}")
        }
    }

    fn is_schema_aware(&self) -> bool {
        matches!(self.mapping, Mapping::SchemaAware { .. })
    }

    fn schema(&self) -> Option<&'a Schema> {
        match self.mapping {
            Mapping::SchemaAware { schema, .. } => Some(schema),
            Mapping::EdgeLike => None,
        }
    }

    // ----- top level -----

    fn translate_top_path(
        &mut self,
        path: &LocationPath,
    ) -> Result<(Vec<Select>, OutputKind), TranslateError> {
        let mut steps = path.steps.clone();
        // Trailing text() step selects the text value.
        let mut output = OutputKind::Elements;
        if let Some(last) = steps.last() {
            if last.test == NodeTest::Text {
                if last.axis != Axis::Child || !last.predicates.is_empty() {
                    return Err(TranslateError(
                        "text() is only supported as a plain final step".to_string(),
                    ));
                }
                steps.pop();
                output = OutputKind::TextValue;
            }
        }
        if steps.is_empty() {
            return Err(TranslateError(
                "the root path `/` alone is not a relational query".to_string(),
            ));
        }
        let split = split_ppfs(&steps).map_err(|e| TranslateError(e.to_string()))?;
        self.ppf_count += split.ppfs.len();
        if split.trailing_attribute.is_some() {
            if output != OutputKind::Elements {
                return Err(TranslateError("conflicting terminal steps".to_string()));
            }
            output = OutputKind::AttributeValue;
        }

        let branches = self.build_ppfs(None, &split.ppfs)?;
        let mut selects = Vec::new();
        for mut branch in branches {
            let node = branch.prev.clone().expect("non-empty path has a prominent");
            let mut projections = vec![
                Projection {
                    expr: col(&node.alias, COL_ID),
                    alias: Some("id".to_string()),
                },
                Projection {
                    expr: col(&node.alias, COL_DEWEY),
                    alias: Some("dewey_pos".to_string()),
                },
            ];
            match (&split.trailing_attribute, output) {
                (Some(attr_step), _) => {
                    let name = test_name(&attr_step.test)?;
                    match self.attr_value_expr(&mut branch, &node, name)? {
                        Some(value) => {
                            let not_null = Sql::IsNull {
                                expr: Box::new(value.clone()),
                                negated: true,
                            };
                            branch.push(not_null);
                            projections.push(Projection {
                                expr: value,
                                alias: Some("value".to_string()),
                            });
                        }
                        None => continue, // relation has no such attribute
                    }
                }
                (None, OutputKind::TextValue) => {
                    match self.text_value_expr(&node) {
                        Some(value) => {
                            branch.push(Sql::IsNull {
                                expr: Box::new(value.clone()),
                                negated: true,
                            });
                            projections.push(Projection {
                                expr: value,
                                alias: Some("value".to_string()),
                            });
                        }
                        None => continue, // element can hold no text
                    }
                }
                _ => {}
            }
            if branch.is_statically_false() {
                continue;
            }
            selects.push(Select {
                distinct: true,
                projections,
                from: branch.from,
                where_clause: conjoin(branch.conjuncts),
            });
        }
        Ok((selects, output))
    }

    // ----- PPF pipeline -----

    /// Process a PPF sequence starting from `initial` (None = document
    /// root). Returns the surviving branches, each with its final
    /// prominent node in `prev`.
    fn build_ppfs(
        &mut self,
        initial: Option<&NodeRef>,
        ppfs: &[Ppf],
    ) -> Result<Vec<Branch>, TranslateError> {
        let mut branches = vec![Branch {
            from: Vec::new(),
            conjuncts: Vec::new(),
            prev: initial.cloned(),
        }];
        for ppf in ppfs {
            let mut next: Vec<Branch> = Vec::new();
            for branch in branches {
                next.extend(self.process_ppf(branch, ppf)?);
            }
            if next.len() > MAX_BRANCHES {
                return Err(TranslateError(format!(
                    "SQL splitting produced more than {MAX_BRANCHES} branches"
                )));
            }
            branches = next;
        }
        Ok(branches)
    }

    fn process_ppf(&mut self, branch: Branch, ppf: &Ppf) -> Result<Vec<Branch>, TranslateError> {
        match ppf.kind {
            PpfKind::Forward => self.process_forward(branch, ppf),
            PpfKind::Backward => self.process_backward(branch, ppf),
            PpfKind::Order(axis) => self.process_order(branch, ppf, axis),
        }
    }

    fn process_forward(
        &mut self,
        branch: Branch,
        ppf: &Ppf,
    ) -> Result<Vec<Branch>, TranslateError> {
        // Walk pattern and candidates over the steps.
        let mut pattern = match &branch.prev {
            Some(p) => p.pattern.clone(),
            None => PatternSet::root(),
        };
        let mut cands = match (&branch.prev, self.schema()) {
            (Some(p), Some(_)) => p
                .candidates
                .clone()
                .expect("schema-aware tracks candidates"),
            (None, Some(_)) => Candidates::at_root(),
            _ => Candidates::at_root(), // unused for EdgeLike
        };
        for step in &ppf.steps {
            let test = pat_test(&step.test)?;
            pattern = match step.axis {
                Axis::Child => pattern.child(&test),
                Axis::Descendant => pattern.descendant(&test),
                Axis::DescendantOrSelf => pattern.descendant_or_self(&test),
                Axis::SelfAxis => pattern.self_axis(&test),
                other => unreachable!("forward PPF with axis {other:?}"),
            };
            if let Some(schema) = self.schema() {
                cands = nav::advance(schema, &cands, step);
            }
        }
        let relations = self.relations_for(&cands);
        let mut out = Vec::new();
        for relation in relations {
            let mut b = branch.clone();
            let refined = if self.is_schema_aware() {
                pattern.self_axis(&PatTest::Name(relation.clone()))
            } else {
                pattern.clone()
            };
            if refined.is_infeasible() {
                continue;
            }
            let alias = self.fresh_alias(&relation);
            b.from.push(TableRef::new(&relation, &alias));
            let mut node = NodeRef {
                alias,
                relation: relation.clone(),
                pattern: refined,
                candidates: self
                    .schema()
                    .map(|_| Candidates::from_names(vec![relation.clone()])),
                paths_alias: None,
                filter_idx: None,
            };
            if !self.apply_path_filter(&mut b, &mut node)? {
                continue;
            }
            let context = b.prev.clone();
            if let Some(prev) = &context {
                self.join_forward(&mut b, prev, &node, ppf);
            }
            b.prev = Some(node.clone());
            if !self.apply_predicates(&mut b, ppf, context.as_ref())? {
                continue;
            }
            out.push(b);
        }
        Ok(out)
    }

    fn process_backward(
        &mut self,
        branch: Branch,
        ppf: &Ppf,
    ) -> Result<Vec<Branch>, TranslateError> {
        let Some(prev) = branch.prev.clone() else {
            // Backward from the document root selects nothing.
            return Ok(Vec::new());
        };
        // Walk (context, suffix) pairs upward.
        let mut pairs: Vec<(Pattern, Pattern)> = prev
            .pattern
            .alts
            .iter()
            .map(|p| (p.clone(), Vec::new()))
            .collect();
        let mut cands = prev.candidates.clone().unwrap_or_else(Candidates::at_root);
        for step in &ppf.steps {
            let test = pat_test(&step.test)?;
            let mut next: Vec<(Pattern, Pattern)> = Vec::new();
            for (ctxp, suffix) in &pairs {
                backward_step(&mut next, ctxp, suffix, step.axis, &test);
            }
            // Deduplicate to keep the pair set small.
            next.sort();
            next.dedup();
            if next.len() > 64 {
                // Widen conservatively: unconstrained ancestor position.
                let last = match &test {
                    PatTest::Name(n) => crate::pattern::Seg::Name(n.clone()),
                    _ => crate::pattern::Seg::AnyOne,
                };
                next = vec![(
                    vec![crate::pattern::Seg::Gap, last],
                    vec![crate::pattern::Seg::Gap, crate::pattern::Seg::AnyOne],
                )];
            }
            pairs = next;
            if let Some(schema) = self.schema() {
                cands = nav::advance(schema, &cands, step);
            }
        }

        let relations = self.relations_for(&cands);
        let mut out = Vec::new();
        for relation in relations {
            let mut b = branch.clone();
            // Refine the context patterns to the chosen relation.
            let rel_pairs: Vec<(Pattern, Pattern)> = if self.is_schema_aware() {
                pairs
                    .iter()
                    .flat_map(|(c, s)| {
                        constrain_last(c, &PatTest::Name(relation.clone()))
                            .into_iter()
                            .map(|c2| (c2, s.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            } else {
                pairs.clone()
            };
            if rel_pairs.is_empty() {
                continue;
            }
            let ctx_set = PatternSet::from_alts(rel_pairs.iter().map(|(c, _)| c.clone()).collect());
            let prev_refined = PatternSet::from_alts(
                rel_pairs
                    .iter()
                    .map(|(c, s)| {
                        let mut whole = c.clone();
                        whole.extend(s.iter().cloned());
                        whole
                    })
                    .collect(),
            );
            if ctx_set.is_infeasible() || prev_refined.is_infeasible() {
                continue;
            }
            // Refine the previous PPF's path filter (Algorithm 1 lines 4-5).
            let mut prev_node = prev.clone();
            prev_node.pattern = prev_refined;
            if !self.refresh_path_filter(&mut b, &mut prev_node)? {
                continue;
            }

            let alias = self.fresh_alias(&relation);
            b.from.push(TableRef::new(&relation, &alias));
            let node = NodeRef {
                alias: alias.clone(),
                relation: relation.clone(),
                pattern: ctx_set,
                candidates: self
                    .schema()
                    .map(|_| Candidates::from_names(vec![relation.clone()])),
                paths_alias: None,
                filter_idx: None,
            };
            // In the schema-aware mapping the ancestor's relation pins its
            // element name; the Edge mapping needs an explicit name filter.
            if matches!(self.mapping, Mapping::EdgeLike) {
                if let Some(n) = test_name(&ppf.prominent_step().test)? {
                    b.push(Sql::eq(col(&alias, EDGE_NAME), Sql::str(n)));
                }
            }
            // Structural join (lines 8-14): single parent step → FK.
            if ppf.is_single_step() && ppf.steps[0].axis == Axis::Parent && self.opts.use_fk_joins {
                b.push(Sql::eq(col(&alias, COL_ID), col(&prev_node.alias, COL_PAR)));
            } else {
                let or_self = min_levels_backward(&ppf.steps) == 0;
                self.push_ancestor_join(&mut b, &prev_node, &node, or_self);
            }
            b.prev = Some(node);
            if !self.apply_predicates(&mut b, ppf, Some(&prev_node))? {
                continue;
            }
            out.push(b);
        }
        Ok(out)
    }

    fn process_order(
        &mut self,
        branch: Branch,
        ppf: &Ppf,
        axis: Axis,
    ) -> Result<Vec<Branch>, TranslateError> {
        let Some(prev) = branch.prev.clone() else {
            return Err(TranslateError(format!(
                "`{}` axis cannot start a path",
                axis.name()
            )));
        };
        let step = &ppf.steps[0];
        let pattern = PatternSet::ending_with(&pat_test(&step.test)?);
        let cands = match self.schema() {
            Some(schema) => {
                let cur = prev.candidates.clone().unwrap_or_else(Candidates::at_root);
                nav::advance(schema, &cur, step)
            }
            None => Candidates::at_root(),
        };
        let relations = self.relations_for(&cands);
        let mut out = Vec::new();
        for relation in relations {
            let mut b = branch.clone();
            let refined = if self.is_schema_aware() {
                pattern.self_axis(&PatTest::Name(relation.clone()))
            } else {
                pattern.clone()
            };
            if refined.is_infeasible() {
                continue;
            }
            let alias = self.fresh_alias(&relation);
            b.from.push(TableRef::new(&relation, &alias));
            let mut node = NodeRef {
                alias: alias.clone(),
                relation: relation.clone(),
                pattern: refined,
                candidates: self
                    .schema()
                    .map(|_| Candidates::from_names(vec![relation.clone()])),
                paths_alias: None,
                filter_idx: None,
            };
            // Path restriction of Algorithm 1 lines 6-7 (subject to
            // marking).
            if !self.apply_path_filter(&mut b, &mut node)? {
                continue;
            }
            // Table 2 rows 3-6.
            match axis {
                Axis::Following => {
                    b.push(Sql::cmp(
                        CmpOp::Gt,
                        col(&alias, COL_DEWEY),
                        Sql::Concat(Box::new(col(&prev.alias, COL_DEWEY)), Box::new(ff_byte())),
                    ));
                }
                Axis::Preceding => {
                    b.push(Sql::cmp(
                        CmpOp::Gt,
                        col(&prev.alias, COL_DEWEY),
                        Sql::Concat(Box::new(col(&alias, COL_DEWEY)), Box::new(ff_byte())),
                    ));
                }
                Axis::FollowingSibling => {
                    b.push(Sql::cmp(
                        CmpOp::Gt,
                        col(&alias, COL_DEWEY),
                        col(&prev.alias, COL_DEWEY),
                    ));
                    b.push(Sql::eq(col(&alias, COL_PAR), col(&prev.alias, COL_PAR)));
                }
                Axis::PrecedingSibling => {
                    b.push(Sql::cmp(
                        CmpOp::Lt,
                        col(&alias, COL_DEWEY),
                        col(&prev.alias, COL_DEWEY),
                    ));
                    b.push(Sql::eq(col(&alias, COL_PAR), col(&prev.alias, COL_PAR)));
                }
                other => unreachable!("order PPF with axis {other:?}"),
            }
            b.prev = Some(node);
            if !self.apply_predicates(&mut b, ppf, Some(&prev))? {
                continue;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Relations that can hold the prominent step's elements.
    fn relations_for(&self, cands: &Candidates) -> Vec<String> {
        match self.mapping {
            Mapping::SchemaAware { .. } => cands.names.iter().cloned().collect(),
            Mapping::EdgeLike => vec![EDGE_TABLE.to_string()],
        }
    }

    // ----- joins -----

    fn join_forward(&mut self, b: &mut Branch, prev: &NodeRef, cur: &NodeRef, ppf: &Ppf) {
        let steps = &ppf.steps;
        if steps.len() == 1 && steps[0].axis == Axis::Child && self.opts.use_fk_joins {
            b.push(Sql::eq(col(&cur.alias, COL_PAR), col(&prev.alias, COL_ID)));
            return;
        }
        if steps.len() == 1 && steps[0].axis == Axis::Child {
            // Ablation mode: Dewey join restricted to one level down via
            // the strict descendant window (correct because the path
            // filter pins the depth relative to the parent's path).
            b.push(Sql::cmp(
                CmpOp::Gt,
                col(&cur.alias, COL_DEWEY),
                col(&prev.alias, COL_DEWEY),
            ));
            b.push(Sql::cmp(
                CmpOp::Lt,
                col(&cur.alias, COL_DEWEY),
                Sql::Concat(Box::new(col(&prev.alias, COL_DEWEY)), Box::new(ff_byte())),
            ));
            return;
        }
        if steps.iter().all(|s| s.axis == Axis::SelfAxis) {
            b.push(Sql::eq(col(&cur.alias, COL_ID), col(&prev.alias, COL_ID)));
            return;
        }
        let or_self = min_levels_forward(steps) == 0;
        // cur is a descendant(-or-self) of prev.
        if or_self {
            b.push(Sql::Between {
                expr: Box::new(col(&cur.alias, COL_DEWEY)),
                lo: Box::new(col(&prev.alias, COL_DEWEY)),
                hi: Box::new(Sql::Concat(
                    Box::new(col(&prev.alias, COL_DEWEY)),
                    Box::new(ff_byte()),
                )),
                negated: false,
            });
        } else {
            b.push(Sql::cmp(
                CmpOp::Gt,
                col(&cur.alias, COL_DEWEY),
                col(&prev.alias, COL_DEWEY),
            ));
            b.push(Sql::cmp(
                CmpOp::Lt,
                col(&cur.alias, COL_DEWEY),
                Sql::Concat(Box::new(col(&prev.alias, COL_DEWEY)), Box::new(ff_byte())),
            ));
        }
    }

    /// prev is a descendant(-or-self) of cur (the ancestor).
    fn push_ancestor_join(&mut self, b: &mut Branch, prev: &NodeRef, cur: &NodeRef, or_self: bool) {
        if or_self {
            b.push(Sql::Between {
                expr: Box::new(col(&prev.alias, COL_DEWEY)),
                lo: Box::new(col(&cur.alias, COL_DEWEY)),
                hi: Box::new(Sql::Concat(
                    Box::new(col(&cur.alias, COL_DEWEY)),
                    Box::new(ff_byte()),
                )),
                negated: false,
            });
        } else {
            b.push(Sql::cmp(
                CmpOp::Gt,
                col(&prev.alias, COL_DEWEY),
                col(&cur.alias, COL_DEWEY),
            ));
            b.push(Sql::cmp(
                CmpOp::Lt,
                col(&prev.alias, COL_DEWEY),
                Sql::Concat(Box::new(col(&cur.alias, COL_DEWEY)), Box::new(ff_byte())),
            ));
        }
    }

    // ----- path filters (§4.1 + §4.5) -----

    /// Add (or statically resolve) the root-to-node path filter for
    /// `node`. Returns false when the branch is infeasible.
    fn apply_path_filter(
        &mut self,
        b: &mut Branch,
        node: &mut NodeRef,
    ) -> Result<bool, TranslateError> {
        let Some(regex) = node.pattern.to_regex() else {
            return Ok(false);
        };
        if let (Mapping::SchemaAware { marking, .. }, true) =
            (self.mapping, self.opts.use_path_marking)
        {
            match marking.mark(&node.relation) {
                Some(PathMark::Unique(p)) => {
                    return regex_matches(&regex, p);
                }
                Some(PathMark::Finite(ps)) => {
                    let mut matched = 0;
                    for p in ps {
                        if regex_matches(&regex, p)? {
                            matched += 1;
                        }
                    }
                    if matched == ps.len() {
                        return Ok(true); // filter redundant
                    }
                    if matched == 0 {
                        return Ok(false); // statically empty
                    }
                    // fall through: filter needed
                }
                _ => {}
            }
        }
        self.add_path_filter(b, node);
        Ok(true)
    }

    /// Unconditionally join `node` with `Paths` and filter by its pattern.
    fn add_path_filter(&mut self, b: &mut Branch, node: &mut NodeRef) {
        let pa = match &node.paths_alias {
            Some(pa) => pa.clone(),
            None => {
                let pa = self.fresh_alias(&format!("{}_Paths", node.alias));
                b.from.push(TableRef::new(PATHS_TABLE, &pa));
                b.push(Sql::eq(col(&node.alias, COL_PATH), col(&pa, PATHS_ID)));
                node.paths_alias = Some(pa.clone());
                pa
            }
        };
        let cond = path_condition(&pa, &node.pattern);
        node.filter_idx = b.push(cond);
    }

    /// Re-apply the path filter after the pattern was refined by a
    /// backward PPF: replace the existing conjunct or add a new one.
    /// Also updates the stored prev in the branch.
    fn refresh_path_filter(
        &mut self,
        b: &mut Branch,
        node: &mut NodeRef,
    ) -> Result<bool, TranslateError> {
        if node.pattern.is_infeasible() {
            return Ok(false);
        }
        let keep = match (node.filter_idx, &node.paths_alias) {
            (Some(idx), Some(pa)) => {
                b.conjuncts[idx] = path_condition(pa, &node.pattern);
                true
            }
            _ => self.apply_path_filter(b, node)?,
        };
        if keep {
            b.prev = Some(node.clone());
        }
        Ok(keep)
    }

    // ----- predicates -----

    fn apply_predicates(
        &mut self,
        b: &mut Branch,
        ppf: &Ppf,
        context: Option<&NodeRef>,
    ) -> Result<bool, TranslateError> {
        let step = ppf.prominent_step();
        let preds = step.predicates.clone();
        if preds.is_empty() {
            return Ok(true);
        }
        let node = b.prev.clone().expect("predicates follow a bound node");
        for (i, pred) in preds.iter().enumerate() {
            // position() is only sound in the FIRST predicate of a step
            // (later predicates would re-number the filtered sequence).
            let _ = context;
            let pos = if i == 0 {
                Some(PosInfo {
                    axis: step.axis,
                    test: step.test.clone(),
                })
            } else {
                None
            };
            let cond = self.translate_pred(b, &node, pred, pos.as_ref())?;
            b.push(cond);
        }
        Ok(!b.is_statically_false())
    }

    fn translate_pred(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        pred: &XExpr,
        pos: Option<&PosInfo>,
    ) -> Result<Sql, TranslateError> {
        match pred {
            XExpr::And(xs) => {
                let mut out = TRUE;
                for x in xs {
                    let c = self.translate_pred(b, node, x, pos)?;
                    out = combine_and(out, c);
                }
                Ok(out)
            }
            XExpr::Or(xs) => {
                let mut parts = Vec::new();
                let mut any_true = false;
                for x in xs {
                    let c = self.translate_pred(b, node, x, pos)?;
                    match c {
                        Sql::Literal(relstore::Value::Bool(true)) => any_true = true,
                        Sql::Literal(relstore::Value::Bool(false)) => {}
                        c => parts.push(c),
                    }
                }
                if any_true {
                    Ok(TRUE)
                } else if parts.is_empty() {
                    Ok(FALSE)
                } else if parts.len() == 1 {
                    Ok(parts.pop().expect("one part"))
                } else {
                    Ok(Sql::Or(parts))
                }
            }
            XExpr::Not(x) => {
                let c = self.translate_pred(b, node, x, pos)?;
                Ok(match c {
                    Sql::Literal(relstore::Value::Bool(v)) => {
                        Sql::Literal(relstore::Value::Bool(!v))
                    }
                    c => Sql::Not(Box::new(c)),
                })
            }
            XExpr::Path(p) => self.path_condition_for(b, node, p, ValueCond::Exists),
            XExpr::Union(ps) => {
                let mut parts = Vec::new();
                for p in ps {
                    parts.push(self.path_condition_for(b, node, p, ValueCond::Exists)?);
                }
                Ok(parts.into_iter().reduce(|a, c| a.or(c)).unwrap_or(FALSE))
            }
            XExpr::Literal(s) => Ok(Sql::Literal(relstore::Value::Bool(!s.is_empty()))),
            XExpr::Compare { op, lhs, rhs } => self.translate_compare(b, node, *op, lhs, rhs, pos),
            XExpr::Count(inner) => {
                // Bare count(p) in boolean context: count != 0 ⇔ exists.
                match inner.as_ref() {
                    XExpr::Path(p) => self.path_condition_for(b, node, p, ValueCond::Exists),
                    other => Err(TranslateError(format!(
                        "unsupported count() argument `{other}`"
                    ))),
                }
            }
            XExpr::Contains(a, bx) => {
                let (XExpr::Path(p), Some(relstore::Value::Str(needle))) =
                    (a.as_ref(), literal_value(bx))
                else {
                    return Err(TranslateError(
                        "contains() requires (path, string-literal)".to_string(),
                    ));
                };
                self.path_condition_for(b, node, p, ValueCond::ContainsStr(needle))
            }
            XExpr::StartsWith(a, bx) => {
                let (XExpr::Path(p), Some(relstore::Value::Str(prefix))) =
                    (a.as_ref(), literal_value(bx))
                else {
                    return Err(TranslateError(
                        "starts-with() requires (path, string-literal)".to_string(),
                    ));
                };
                self.path_condition_for(b, node, p, ValueCond::StartsWithStr(prefix))
            }
            other => Err(TranslateError(format!(
                "predicate `{other}` is outside the SQL-translatable subset \
                 (use the native evaluator)"
            ))),
        }
    }

    fn translate_compare(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        op: CompOp,
        lhs: &XExpr,
        rhs: &XExpr,
        pos: Option<&PosInfo>,
    ) -> Result<Sql, TranslateError> {
        // position() <op> n  (also [n], which the parser desugars)
        if let (XExpr::Position, Some(v)) = (lhs, literal_value(rhs)) {
            return self.position_condition(node, pos, cmp_op(op), v);
        }
        if let (Some(v), XExpr::Position) = (literal_value(lhs), rhs) {
            return self.position_condition(node, pos, cmp_op(op).flip(), v);
        }
        // path <op> literal
        if let (XExpr::Path(p), Some(v)) = (lhs, literal_value(rhs)) {
            return self.path_condition_for(
                b,
                node,
                p,
                ValueCond::Cmp {
                    op: cmp_op(op),
                    rhs: v,
                    wrap: None,
                },
            );
        }
        // literal <op> path
        if let (Some(v), XExpr::Path(p)) = (literal_value(lhs), rhs) {
            return self.path_condition_for(
                b,
                node,
                p,
                ValueCond::Cmp {
                    op: cmp_op(op).flip(),
                    rhs: v,
                    wrap: None,
                },
            );
        }
        // path <op> path — join clause (footnote 1)
        if let (XExpr::Path(p1), XExpr::Path(p2)) = (lhs, rhs) {
            return self.join_clause(b, node, op, p1, p2);
        }
        // count(path) <op> number
        if let (XExpr::Count(inner), Some(v)) = (lhs, literal_value(rhs)) {
            if let XExpr::Path(p) = inner.as_ref() {
                return self.count_condition(node, cmp_op(op), p, v);
            }
        }
        if let (Some(v), XExpr::Count(inner)) = (literal_value(lhs), rhs) {
            if let XExpr::Path(p) = inner.as_ref() {
                return self.count_condition(node, cmp_op(op).flip(), p, v);
            }
        }
        // arithmetic over a single path: (path ± k) <op> literal
        if let (XExpr::Arith { .. }, Some(v)) = (lhs, literal_value(rhs)) {
            if let Some((p, wrap)) = extract_arith_path(lhs) {
                return self.path_condition_for(
                    b,
                    node,
                    &p,
                    ValueCond::Cmp {
                        op: cmp_op(op),
                        rhs: v,
                        wrap: Some(wrap),
                    },
                );
            }
        }
        Err(TranslateError(format!(
            "comparison `{lhs} {} {rhs}` is outside the SQL-translatable subset",
            op.symbol()
        )))
    }

    /// `[position() = k]` on a child step: the node is the k-th matching
    /// child of its parent ⇔ k-1 earlier matching siblings exist.
    fn position_condition(
        &mut self,
        node: &NodeRef,
        pos: Option<&PosInfo>,
        op: CmpOp,
        rhs: relstore::Value,
    ) -> Result<Sql, TranslateError> {
        let Some(pos) = pos else {
            return Err(TranslateError(
                "position() is only supported in the first predicate of a step".to_string(),
            ));
        };
        if pos.axis != Axis::Child {
            return Err(TranslateError(format!(
                "position() on the `{}` axis is outside the SQL-translatable subset",
                pos.axis.name()
            )));
        }
        let k = match rhs {
            relstore::Value::Int(k) => k,
            relstore::Value::Float(f) if f.fract() == 0.0 => f as i64,
            other => {
                return Err(TranslateError(format!(
                    "position() compared with non-integer {other}"
                )))
            }
        };
        // The node's own par_id identifies the shared parent; no separate
        // binding for the context node is needed.
        let sib = self.fresh_alias(&format!("{}_sib", node.alias));
        let mut conj = vec![
            Sql::eq(col(&sib, COL_PAR), col(&node.alias, COL_PAR)),
            Sql::cmp(CmpOp::Lt, col(&sib, COL_DEWEY), col(&node.alias, COL_DEWEY)),
        ];
        match (&self.mapping, &pos.test) {
            (Mapping::SchemaAware { .. }, NodeTest::Name(_)) => {
                // the sibling table is the same relation, which already
                // pins the name
            }
            (Mapping::SchemaAware { .. }, _) => {
                return Err(TranslateError(
                    "position() on a wildcard step needs the Edge mapping or \
                     the native evaluator"
                        .to_string(),
                ))
            }
            (Mapping::EdgeLike, NodeTest::Name(n)) => {
                conj.push(Sql::eq(col(&sib, EDGE_NAME), Sql::str(n)));
            }
            (Mapping::EdgeLike, _) => {}
        }
        let sub = Select {
            distinct: false,
            projections: vec![Projection {
                expr: Sql::CountStar,
                alias: None,
            }],
            from: vec![TableRef::new(&node.relation, &sib)],
            where_clause: conjoin(conj),
        };
        Ok(Sql::Cmp {
            op,
            lhs: Box::new(Sql::ScalarSubquery(Box::new(sub))),
            rhs: Box::new(Sql::Literal(relstore::Value::Int(k - 1))),
        })
    }

    // ----- value/path conditions -----

    /// Attribute value expression on a node; `None` name = any attribute.
    /// For the schema-aware mapping, returns `None` when the relation has
    /// no such attribute (statically absent). For Edge, joins `Attrs`.
    fn attr_value_expr(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        name: Option<&str>,
    ) -> Result<Option<Sql>, TranslateError> {
        match self.mapping {
            Mapping::SchemaAware { schema, .. } => {
                let def = schema
                    .def(&node.relation)
                    .ok_or_else(|| TranslateError(format!("unknown relation {}", node.relation)))?;
                match name {
                    Some(n) => {
                        if def.attributes.iter().any(|a| a.name == n) {
                            Ok(Some(col(&node.alias, &attr_col(n))))
                        } else {
                            Ok(None)
                        }
                    }
                    None => Err(TranslateError(
                        "`@*` value projection requires a concrete attribute name".to_string(),
                    )),
                }
            }
            Mapping::EdgeLike => {
                let alias = self.fresh_alias(ATTR_TABLE);
                b.from.push(TableRef::new(ATTR_TABLE, &alias));
                b.push(Sql::eq(col(&alias, ATTR_OWNER), col(&node.alias, COL_ID)));
                if let Some(n) = name {
                    b.push(Sql::eq(col(&alias, ATTR_NAME), Sql::str(n)));
                }
                Ok(Some(col(&alias, ATTR_VALUE)))
            }
        }
    }

    /// The text-content column of a node (`None` if the schema says the
    /// element never holds text).
    fn text_value_expr(&self, node: &NodeRef) -> Option<Sql> {
        match self.mapping {
            Mapping::SchemaAware { schema, .. } => {
                let def = schema.def(&node.relation)?;
                def.text.map(|_| col(&node.alias, COL_TEXT))
            }
            Mapping::EdgeLike => Some(col(&node.alias, COL_TEXT)),
        }
    }

    /// Condition for a (relative or absolute) path predicate on `node`,
    /// with a value condition at its end.
    fn path_condition_for(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        path: &LocationPath,
        vc: ValueCond,
    ) -> Result<Sql, TranslateError> {
        let mut steps = path.steps.clone();
        let mut value_on_text_step = false;
        if let Some(last) = steps.last() {
            if last.test == NodeTest::Text && last.axis == Axis::Child {
                steps.pop();
                value_on_text_step = true;
            }
        }

        // `.` (self) path: value of the predicated node itself.
        if !path.absolute
            && steps
                .iter()
                .all(|s| s.axis == Axis::SelfAxis && s.predicates.is_empty())
        {
            // Constrain the name tests statically.
            let mut pat = node.pattern.clone();
            for s in &steps {
                pat = pat.self_axis(&pat_test(&s.test)?);
            }
            if pat.is_infeasible() {
                return Ok(FALSE);
            }
            return match self.text_value_expr(node) {
                Some(value) => Ok(apply_value_cond(value, &vc)),
                None => Ok(match vc {
                    ValueCond::Exists => TRUE,
                    _ => FALSE,
                }),
            };
        }

        let split = split_ppfs(&steps).map_err(|e| TranslateError(e.to_string()))?;
        self.ppf_count += split.ppfs.len();

        // Single attribute step on the node itself: direct column test
        // (Table 3: `A.x = 3`).
        if split.ppfs.is_empty() {
            let Some(attr_step) = &split.trailing_attribute else {
                return Err(TranslateError("empty predicate path".to_string()));
            };
            return self.attr_condition_on(b, node, attr_step, &vc);
        }

        // Pure backward path (existence only): fold into the path filter
        // (Table 5-2).
        if matches!(vc, ValueCond::Exists)
            && split.trailing_attribute.is_none()
            && !value_on_text_step
            && split.ppfs.iter().all(|p| {
                p.kind == PpfKind::Backward && p.steps.iter().all(|s| s.predicates.is_empty())
            })
        {
            return self.backward_filter_condition(b, node, &split.ppfs);
        }

        // General case: EXISTS subselect(s).
        let initial = if path.absolute { None } else { Some(node) };
        let inner = self.build_ppfs(initial, &split.ppfs)?;
        let mut parts: Vec<Sql> = Vec::new();
        for mut ib in inner {
            let prom = ib.prev.clone().expect("inner path is non-empty");
            let cond_ok = if let Some(attr_step) = &split.trailing_attribute {
                let name = test_name(&attr_step.test)?;
                match self.attr_value_expr(&mut ib, &prom, name)? {
                    Some(value) => {
                        match &vc {
                            ValueCond::Exists => {
                                ib.push(Sql::IsNull {
                                    expr: Box::new(value),
                                    negated: true,
                                });
                            }
                            other => {
                                ib.push(apply_value_cond(value, other));
                            }
                        }
                        true
                    }
                    None => false,
                }
            } else {
                match &vc {
                    ValueCond::Exists => true,
                    other => match self.text_value_expr(&prom) {
                        Some(value) => {
                            ib.push(apply_value_cond(value, other));
                            true
                        }
                        None => false,
                    },
                }
            };
            if !cond_ok || ib.is_statically_false() {
                continue;
            }
            parts.push(Sql::Exists(Box::new(Select {
                distinct: false,
                projections: vec![Projection {
                    expr: Sql::Literal(relstore::Value::Null),
                    alias: None,
                }],
                from: ib.from,
                where_clause: conjoin(ib.conjuncts),
            })));
        }
        Ok(parts.into_iter().reduce(|a, c| a.or(c)).unwrap_or(FALSE))
    }

    /// `[@x]` / `[@x = v]` directly on the predicated node.
    fn attr_condition_on(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        attr_step: &Step,
        vc: &ValueCond,
    ) -> Result<Sql, TranslateError> {
        let name = test_name(&attr_step.test)?;
        match self.mapping {
            Mapping::SchemaAware { schema, .. } => {
                let def = schema
                    .def(&node.relation)
                    .ok_or_else(|| TranslateError(format!("unknown relation {}", node.relation)))?;
                match name {
                    Some(n) => {
                        if !def.attributes.iter().any(|a| a.name == n) {
                            return Ok(FALSE);
                        }
                        let value = col(&node.alias, &attr_col(n));
                        Ok(match vc {
                            ValueCond::Exists => Sql::IsNull {
                                expr: Box::new(value),
                                negated: true,
                            },
                            other => apply_value_cond(value, other),
                        })
                    }
                    None => {
                        // `@*`: any declared attribute.
                        let mut parts = Vec::new();
                        for a in &def.attributes {
                            let value = col(&node.alias, &attr_col(&a.name));
                            parts.push(match vc {
                                ValueCond::Exists => Sql::IsNull {
                                    expr: Box::new(value),
                                    negated: true,
                                },
                                other => apply_value_cond(value, other),
                            });
                        }
                        Ok(parts.into_iter().reduce(|x, y| x.or(y)).unwrap_or(FALSE))
                    }
                }
            }
            Mapping::EdgeLike => {
                // EXISTS over the attribute relation.
                let alias = self.fresh_alias(ATTR_TABLE);
                let mut conj = vec![Sql::eq(col(&alias, ATTR_OWNER), col(&node.alias, COL_ID))];
                if let Some(n) = name {
                    conj.push(Sql::eq(col(&alias, ATTR_NAME), Sql::str(n)));
                }
                if !matches!(vc, ValueCond::Exists) {
                    conj.push(apply_value_cond(col(&alias, ATTR_VALUE), vc));
                }
                let _ = b;
                Ok(Sql::Exists(Box::new(Select {
                    distinct: false,
                    projections: vec![Projection {
                        expr: Sql::Literal(relstore::Value::Null),
                        alias: None,
                    }],
                    from: vec![TableRef::new(ATTR_TABLE, &alias)],
                    where_clause: conjoin(conj),
                })))
            }
        }
    }

    /// Table 5-2: a predicate that is a pure backward simple path becomes
    /// an extra restriction on the predicated node's root-to-node path.
    fn backward_filter_condition(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        ppfs: &[Ppf],
    ) -> Result<Sql, TranslateError> {
        // Walk the backward steps over the node's pattern, tracking
        // context/suffix pairs exactly like process_backward, but only the
        // refined *self* pattern matters here.
        let mut pairs: Vec<(Pattern, Pattern)> = node
            .pattern
            .alts
            .iter()
            .map(|p| (p.clone(), Vec::new()))
            .collect();
        let mut cands = node.candidates.clone().unwrap_or_else(Candidates::at_root);
        for ppf in ppfs {
            for step in &ppf.steps {
                let test = pat_test(&step.test)?;
                let mut next = Vec::new();
                for (ctxp, suffix) in &pairs {
                    backward_step(&mut next, ctxp, suffix, step.axis, &test);
                }
                next.sort();
                next.dedup();
                pairs = next;
                if let Some(schema) = self.schema() {
                    cands = nav::advance(schema, &cands, step);
                }
            }
        }
        if self.is_schema_aware() && cands.is_empty() {
            return Ok(FALSE);
        }
        let refined = PatternSet::from_alts(
            pairs
                .into_iter()
                .map(|(mut c, s)| {
                    c.extend(s);
                    c
                })
                .collect(),
        );
        let Some(regex) = refined.to_regex() else {
            return Ok(FALSE);
        };
        // If a Paths join already exists for the node, the condition is a
        // plain extra REGEXP_LIKE on it.
        if let Some(pa) = &node.paths_alias {
            return Ok(Sql::RegexpLike {
                subject: Box::new(col(pa, PATHS_PATH)),
                pattern: regex,
            });
        }
        // Otherwise resolve statically via the marking, or join Paths.
        if let (Mapping::SchemaAware { marking, .. }, true) =
            (self.mapping, self.opts.use_path_marking)
        {
            match marking.mark(&node.relation) {
                Some(PathMark::Unique(p)) => {
                    return Ok(Sql::Literal(relstore::Value::Bool(regex_matches(
                        &regex, p,
                    )?)));
                }
                Some(PathMark::Finite(ps)) => {
                    let matched = ps
                        .iter()
                        .map(|p| regex_matches(&regex, p))
                        .collect::<Result<Vec<_>, _>>()?;
                    if matched.iter().all(|&m| m) {
                        return Ok(TRUE);
                    }
                    if !matched.iter().any(|&m| m) {
                        return Ok(FALSE);
                    }
                    // fall through: join Paths
                }
                _ => {}
            }
        }
        // Join Paths (unfiltered) and return the regex as the condition.
        let pa = self.fresh_alias(&format!("{}_Paths", node.alias));
        b.from.push(TableRef::new(PATHS_TABLE, &pa));
        b.push(Sql::eq(col(&node.alias, COL_PATH), col(&pa, PATHS_ID)));
        // Note: the node stored in b.prev keeps paths_alias = None; further
        // backward predicates would add another join, which is correct if
        // slightly redundant.
        Ok(Sql::RegexpLike {
            subject: Box::new(col(&pa, PATHS_PATH)),
            pattern: regex,
        })
    }

    /// `count(path) <op> n` via a scalar subquery.
    fn count_condition(
        &mut self,
        node: &NodeRef,
        op: CmpOp,
        path: &LocationPath,
        rhs: relstore::Value,
    ) -> Result<Sql, TranslateError> {
        let split = split_ppfs(&path.steps).map_err(|e| TranslateError(e.to_string()))?;
        self.ppf_count += split.ppfs.len();
        if split.trailing_attribute.is_some() {
            return Err(TranslateError(
                "count() over attributes is not supported in SQL translation".to_string(),
            ));
        }
        let initial = if path.absolute { None } else { Some(node) };
        let inner = self.build_ppfs(initial, &split.ppfs)?;
        if inner.len() != 1 {
            return Err(TranslateError(
                "count() over an ambiguous path is not supported in SQL translation".to_string(),
            ));
        }
        let ib = inner.into_iter().next().expect("one branch");
        let sub = Select {
            distinct: false,
            projections: vec![Projection {
                expr: Sql::CountStar,
                alias: None,
            }],
            from: ib.from,
            where_clause: conjoin(ib.conjuncts),
        };
        Ok(Sql::Cmp {
            op,
            lhs: Box::new(Sql::ScalarSubquery(Box::new(sub))),
            rhs: Box::new(Sql::Literal(rhs)),
        })
    }

    /// `[p1 <op> p2]` — both paths in one EXISTS with a theta join between
    /// their value columns (paper footnote 1).
    fn join_clause(
        &mut self,
        b: &mut Branch,
        node: &NodeRef,
        op: CompOp,
        p1: &LocationPath,
        p2: &LocationPath,
    ) -> Result<Sql, TranslateError> {
        let _ = b;
        let mut parts = Vec::new();
        let sides: Vec<(Vec<Branch>, Option<Step>)> = [p1, p2]
            .iter()
            .map(|p| {
                let mut steps = p.steps.clone();
                let mut _text = false;
                if let Some(last) = steps.last() {
                    if last.test == NodeTest::Text && last.axis == Axis::Child {
                        steps.pop();
                        _text = true;
                    }
                }
                let split = split_ppfs(&steps).map_err(|e| TranslateError(e.to_string()))?;
                self.ppf_count += split.ppfs.len();
                let initial = if p.absolute { None } else { Some(node) };
                let branches = self.build_ppfs(initial, &split.ppfs)?;
                Ok((branches, split.trailing_attribute))
            })
            .collect::<Result<Vec<_>, TranslateError>>()?
            .into_iter()
            .collect();
        let (b1s, attr1) = &sides[0];
        let (b2s, attr2) = &sides[1];
        for ib1 in b1s {
            for ib2 in b2s {
                let mut merged = Branch {
                    from: ib1
                        .from
                        .iter()
                        .cloned()
                        .chain(ib2.from.iter().cloned())
                        .collect(),
                    conjuncts: ib1
                        .conjuncts
                        .iter()
                        .cloned()
                        .chain(ib2.conjuncts.iter().cloned())
                        .collect(),
                    prev: None,
                };
                let prom1 = ib1.prev.clone().expect("non-empty");
                let prom2 = ib2.prev.clone().expect("non-empty");
                let v1 = self.side_value(&mut merged, &prom1, attr1.as_ref())?;
                let v2 = self.side_value(&mut merged, &prom2, attr2.as_ref())?;
                let (Some(v1), Some(v2)) = (v1, v2) else {
                    continue;
                };
                merged.push(Sql::Cmp {
                    op: cmp_op(op),
                    lhs: Box::new(v1),
                    rhs: Box::new(v2),
                });
                if merged.is_statically_false() {
                    continue;
                }
                parts.push(Sql::Exists(Box::new(Select {
                    distinct: false,
                    projections: vec![Projection {
                        expr: Sql::Literal(relstore::Value::Null),
                        alias: None,
                    }],
                    from: merged.from,
                    where_clause: conjoin(merged.conjuncts),
                })));
            }
        }
        Ok(parts.into_iter().reduce(|a, c| a.or(c)).unwrap_or(FALSE))
    }

    fn side_value(
        &mut self,
        b: &mut Branch,
        prom: &NodeRef,
        attr: Option<&Step>,
    ) -> Result<Option<Sql>, TranslateError> {
        match attr {
            Some(step) => {
                let name = test_name(&step.test)?;
                self.attr_value_expr(b, prom, name)
            }
            None => Ok(self.text_value_expr(prom)),
        }
    }
}

/// One backward step over a (context, suffix) decomposition (shared by
/// backward PPFs and Table 5-2 predicate folding).
fn backward_step(
    next: &mut Vec<(Pattern, Pattern)>,
    ctxp: &Pattern,
    suffix: &Pattern,
    axis: Axis,
    test: &PatTest,
) {
    match axis {
        Axis::Parent => {
            for (prefix, last) in split_last(ctxp) {
                for c in constrain_last(&prefix, test) {
                    let mut sfx = vec![last.clone()];
                    sfx.extend(suffix.iter().cloned());
                    next.push((c, sfx));
                }
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            if axis == Axis::AncestorOrSelf {
                for c in constrain_last(ctxp, test) {
                    next.push((c, suffix.clone()));
                }
            }
            for (prefix, cut_suffix) in proper_cuts(ctxp) {
                for c in constrain_last(&prefix, test) {
                    let mut sfx = cut_suffix.clone();
                    sfx.extend(suffix.iter().cloned());
                    next.push((c, sfx));
                }
            }
        }
        other => unreachable!("backward step with axis {other:?}"),
    }
}

// ----- small helpers -----

fn conjoin(conjuncts: Vec<Sql>) -> Option<Sql> {
    conjuncts.into_iter().reduce(|a, c| a.and(c))
}

fn combine_and(a: Sql, b: Sql) -> Sql {
    match (a, b) {
        (Sql::Literal(relstore::Value::Bool(true)), x)
        | (x, Sql::Literal(relstore::Value::Bool(true))) => x,
        (Sql::Literal(relstore::Value::Bool(false)), _)
        | (_, Sql::Literal(relstore::Value::Bool(false))) => FALSE,
        (a, b) => a.and(b),
    }
}

fn apply_value_cond(value: Sql, vc: &ValueCond) -> Sql {
    match vc {
        ValueCond::Exists => Sql::IsNull {
            expr: Box::new(value),
            negated: true,
        },
        ValueCond::Cmp { op, rhs, wrap } => {
            let lhs = match wrap {
                Some(f) => f(value),
                None => value,
            };
            Sql::Cmp {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(Sql::Literal(rhs.clone())),
            }
        }
        ValueCond::ContainsStr(needle) => Sql::RegexpLike {
            subject: Box::new(value),
            pattern: regexlite::escape(needle),
        },
        ValueCond::StartsWithStr(prefix) => Sql::RegexpLike {
            subject: Box::new(value),
            pattern: format!("^{}", regexlite::escape(prefix)),
        },
    }
}

/// Rebuilds an arithmetic tree around the extracted value column.
type ArithRebuild = Box<dyn Fn(Sql) -> Sql>;

/// Extract `path` from an arithmetic tree with exactly one path leaf,
/// returning a wrapper that rebuilds the tree around the value column.
fn extract_arith_path(e: &XExpr) -> Option<(LocationPath, ArithRebuild)> {
    match e {
        XExpr::Path(p) => {
            let p = p.clone();
            Some((p, Box::new(|v| v)))
        }
        XExpr::Arith { op, lhs, rhs } => {
            let sql_op = match op {
                xpath::NumOp::Add => sqlexec::ArithOp::Add,
                xpath::NumOp::Sub => sqlexec::ArithOp::Sub,
                xpath::NumOp::Div => sqlexec::ArithOp::Div,
                xpath::NumOp::Mod => return None, // no SQL mod operator here
            };
            match (extract_arith_path(lhs), literal_value(rhs)) {
                (Some((p, wrap)), Some(v)) => Some((
                    p,
                    Box::new(move |col| Sql::Arith {
                        op: sql_op,
                        lhs: Box::new(wrap(col)),
                        rhs: Box::new(Sql::Literal(v.clone())),
                    }),
                )),
                _ => match (literal_value(lhs), extract_arith_path(rhs)) {
                    (Some(v), Some((p, wrap))) => Some((
                        p,
                        Box::new(move |col| Sql::Arith {
                            op: sql_op,
                            lhs: Box::new(Sql::Literal(v.clone())),
                            rhs: Box::new(wrap(col)),
                        }),
                    )),
                    _ => None,
                },
            }
        }
        _ => None,
    }
}

/// Path filter condition: exact string equality when the pattern is a
/// single fixed path (Table 3-2), else `REGEXP_LIKE` (Table 3-1).
fn path_condition(paths_alias: &str, pattern: &PatternSet) -> Sql {
    if let Some(exact) = pattern.exact_path() {
        return Sql::eq(col(paths_alias, PATHS_PATH), Sql::str(&exact));
    }
    Sql::RegexpLike {
        subject: Box::new(col(paths_alias, PATHS_PATH)),
        pattern: pattern.to_regex().expect("feasible pattern"),
    }
}

fn regex_matches(regex: &str, path: &str) -> Result<bool, TranslateError> {
    let re = regexlite::Regex::new(regex)
        .map_err(|e| TranslateError(format!("internal regex error: {e}")))?;
    Ok(re.is_match(path))
}

/// Minimum number of levels a forward PPF descends.
fn min_levels_forward(steps: &[Step]) -> usize {
    steps
        .iter()
        .map(|s| match s.axis {
            Axis::Child | Axis::Descendant => 1,
            _ => 0,
        })
        .sum()
}

/// Minimum number of levels a backward PPF ascends.
fn min_levels_backward(steps: &[Step]) -> usize {
    steps
        .iter()
        .map(|s| match s.axis {
            Axis::Parent | Axis::Ancestor => 1,
            _ => 0,
        })
        .sum()
}

/// The value type of an element's text content under a schema (exposed
/// for the engines' result decoding).
pub fn text_type(schema: &Schema, relation: &str) -> Option<ValueType> {
    schema.def(relation).and_then(|d| d.text)
}
