//! `relstore` — the in-memory relational storage engine.
//!
//! Stands in for Oracle 10g's storage layer in the paper's setup: heap
//! tables with typed, nullable columns and B-tree indexes (single-column
//! and composite, supporting equality probes, range scans and prefix
//! scans). The SQL planner/executor lives in the `sqlexec` crate.
//!
//! Binary `dewey_pos` values are [`Value::Bytes`] and compare
//! lexicographically, which is exactly the property the paper's Dewey
//! structural joins need (§4.2).
//!
//! # Example
//! ```
//! use relstore::{ColType, Database, TableSchema, Value};
//! let mut db = Database::new();
//! db.create_table(TableSchema::new("item", &[("id", ColType::Int), ("name", ColType::Str)])).unwrap();
//! let t = db.table_mut("item").unwrap();
//! t.insert(vec![Value::Int(1), Value::from("axe")]).unwrap();
//! t.create_index("item_id", &["id"]).unwrap();
//! assert_eq!(t.index_on(&[0]).unwrap().get(&[Value::Int(1)]), &[0]);
//! ```

pub mod db;
pub mod stats;
pub mod table;
pub mod value;

pub use db::Database;
pub use table::{Column, Index, RowId, StoreError, Table, TableSchema};
pub use value::{ColType, Value};
