//! Table and column statistics for cost-based planning.
//!
//! A commercial optimizer (the paper's Oracle 10g) estimates
//! cardinalities from `ANALYZE`-time statistics; this module is our
//! equivalent. [`analyze`] computes, per table:
//!
//! * the row count;
//! * per column: non-null/null counts, distinct count, min/max, and an
//!   **equi-depth histogram** (each bucket holds ≈ rows/64, with its
//!   upper boundary value, row count, and distinct count — so equality
//!   selectivity inside a bucket is `rows/distinct` and range
//!   selectivity interpolates across buckets);
//! * for `Bytes` columns, a **prefix fanout**: the average number of
//!   strict byte-prefix descendants per value. Dewey position columns
//!   are byte-strings where ancestor = prefix, so this is exactly the
//!   expected size of one `dewey_pos BETWEEN self AND self||max`
//!   descendant window — the cardinality the paper's structural joins
//!   live or die on.
//!
//! Results are cached process-wide, keyed by the table's `(uid,
//! version)` identity — the same key the executor's path-filter memo
//! and the engine's plan cache use — so statistics invalidate exactly
//! like those caches: any insert or index build bumps `version` and
//! [`lookup`] starts returning `None` until the next [`analyze`]. The
//! engine re-analyzes on `load`/`finalize`; the planner only ever calls
//! [`lookup`] (never builds), so planning latency cannot spike on a
//! stats miss — it falls back to its fixed selectivity constants.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::db::Database;
use crate::table::Table;
use crate::value::{ColType, Value};

/// Target bucket count for equi-depth histograms. Small columns get
/// fewer buckets (never more than one per distinct run).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Entries kept in the process-wide stats cache before it is cleared
/// wholesale (bounds memory across many short-lived `Database`s, e.g.
/// under tests and benchmarks).
const CACHE_CAP: usize = 512;

/// One equi-depth histogram bucket: all values `v` with
/// `previous_upper < v <= upper` (the first bucket starts at the column
/// minimum, inclusive).
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Largest value in the bucket (inclusive upper boundary).
    pub upper: Value,
    /// Rows in the bucket. Equal values never straddle a boundary, so
    /// `rows / distinct` is an honest per-key depth.
    pub rows: u64,
    /// Distinct values in the bucket.
    pub distinct: u64,
}

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Non-NULL rows.
    pub non_null: u64,
    /// NULL rows.
    pub nulls: u64,
    /// Distinct non-NULL values.
    pub distinct: u64,
    /// Smallest non-NULL value.
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
    /// Equi-depth histogram over the non-NULL values (empty when the
    /// column is all NULL).
    pub buckets: Vec<Bucket>,
    /// `Bytes` columns only: average number of strict byte-prefix
    /// descendants per value (≙ expected Dewey descendant-window size).
    pub prefix_fanout: Option<f64>,
}

impl ColumnStats {
    /// Fraction of the table's rows expected to match `col = value`.
    /// With a known comparison value the containing histogram bucket
    /// answers (`rows/distinct` of that bucket); for an unknown
    /// (correlated) probe value the average key depth answers. `rows`
    /// is the table's total row count.
    pub fn eq_fraction(&self, value: Option<&Value>, rows: u64) -> f64 {
        let rows = rows.max(1) as f64;
        if self.non_null == 0 {
            return 0.0;
        }
        match value {
            Some(v) => match self.bucket_for(v) {
                Some(b) => (b.rows as f64 / b.distinct.max(1) as f64) / rows,
                // Outside [min, max]: matches nothing.
                None => 0.0,
            },
            None => (self.non_null as f64 / self.distinct.max(1) as f64) / rows,
        }
    }

    /// Fraction of the table's rows expected inside `lo..hi` (either
    /// bound optional; `None` = unbounded on that side). Interpolates
    /// linearly inside numeric buckets, half-bucket otherwise.
    pub fn range_fraction(&self, lo: Option<&Value>, hi: Option<&Value>, rows: u64) -> f64 {
        let rows = rows.max(1) as f64;
        if self.non_null == 0 {
            return 0.0;
        }
        let hi_f = hi.map(|v| self.frac_le(v)).unwrap_or(1.0);
        // Subtract everything strictly below `lo`: `frac_le(lo)` minus
        // the mass of `lo` itself (BETWEEN is inclusive).
        let lo_f = lo.map(|v| self.frac_le(v) - self.mass(v)).unwrap_or(0.0);
        let inside = (hi_f - lo_f).clamp(0.0, 1.0);
        inside * self.non_null as f64 / rows
    }

    /// Fraction of the non-NULL values equal to `v`.
    fn mass(&self, v: &Value) -> f64 {
        match self.bucket_for(v) {
            Some(b) => (b.rows as f64 / b.distinct.max(1) as f64) / self.non_null.max(1) as f64,
            None => 0.0,
        }
    }

    /// The bucket containing `v`, if `v` is within `[min, max]`.
    fn bucket_for(&self, v: &Value) -> Option<&Bucket> {
        if let Some(min) = &self.min {
            if v < min {
                return None;
            }
        }
        self.buckets.iter().find(|b| v <= &b.upper)
    }

    /// Estimated fraction of the **non-NULL** values `<= v`.
    fn frac_le(&self, v: &Value) -> f64 {
        if self.non_null == 0 {
            return 0.0;
        }
        if let Some(min) = &self.min {
            if v < min {
                return 0.0;
            }
        }
        let mut cum = 0u64;
        let mut lower: Option<&Value> = self.min.as_ref();
        for b in &self.buckets {
            if v >= &b.upper {
                cum += b.rows;
                lower = Some(&b.upper);
                continue;
            }
            let within = interp(lower, &b.upper, v);
            return (cum as f64 + within * b.rows as f64) / self.non_null as f64;
        }
        1.0
    }
}

/// Position of `v` within `(lo, hi]` in `[0, 1]`: linear for numeric
/// boundaries, half a bucket otherwise (strings/bytes have no metric).
fn interp(lo: Option<&Value>, hi: &Value, v: &Value) -> f64 {
    match (lo.and_then(numeric), numeric(hi), numeric(v)) {
        (Some(a), Some(b), Some(x)) if b > a => ((x - a) / (b - a)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Statistics for one table snapshot.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// The `(uid, version)` identity the stats were computed against.
    pub table_uid: u64,
    pub table_version: u64,
    /// Row count at analyze time.
    pub rows: u64,
    /// Per-column stats, aligned with `schema.columns`.
    pub columns: Vec<ColumnStats>,
}

fn cache() -> &'static Mutex<HashMap<u64, Arc<TableStats>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<TableStats>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_cache() -> std::sync::MutexGuard<'static, HashMap<u64, Arc<TableStats>>> {
    // A panic while holding the lock leaves plain data; recover.
    cache()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Statistics for `table`'s **current** contents, or `None` when none
/// have been computed for this exact `(uid, version)` snapshot. Never
/// computes — the read-only planner path must stay cheap.
pub fn lookup(table: &Table) -> Option<Arc<TableStats>> {
    lock_cache()
        .get(&table.uid())
        .filter(|s| s.table_version == table.version())
        .cloned()
}

/// Compute (or fetch cached) statistics for `table`'s current contents.
pub fn analyze(table: &Table) -> Arc<TableStats> {
    if let Some(s) = lookup(table) {
        return s;
    }
    let stats = Arc::new(build(table));
    let mut map = lock_cache();
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(table.uid(), stats.clone());
    stats
}

/// Analyze every table in `db`; returns the number of tables analyzed.
/// Tables whose `(uid, version)` is already cached cost one map lookup.
pub fn analyze_db(db: &Database) -> usize {
    let mut n = 0;
    for name in db.table_names() {
        if let Some(t) = db.table(name) {
            analyze(t);
            n += 1;
        }
    }
    n
}

/// Drop every cached entry (tests and A/B benchmarks).
pub fn clear() {
    lock_cache().clear();
}

fn build(table: &Table) -> TableStats {
    let rows = table.len() as u64;
    let columns = (0..table.schema.columns.len())
        .map(|ci| build_column(table, ci))
        .collect();
    TableStats {
        table_uid: table.uid(),
        table_version: table.version(),
        rows,
        columns,
    }
}

fn build_column(table: &Table, ci: usize) -> ColumnStats {
    let mut vals: Vec<&Value> = Vec::with_capacity(table.len());
    let mut nulls = 0u64;
    for (_, row) in table.rows() {
        if row[ci].is_null() {
            nulls += 1;
        } else {
            vals.push(&row[ci]);
        }
    }
    vals.sort_unstable_by(|a, b| a.cmp_total(b));
    let non_null = vals.len() as u64;
    let mut distinct = 0u64;
    for (i, v) in vals.iter().enumerate() {
        if i == 0 || vals[i - 1] != *v {
            distinct += 1;
        }
    }
    let prefix_fanout = if table.schema.columns[ci].ty == ColType::Bytes {
        prefix_fanout(&vals)
    } else {
        None
    };
    ColumnStats {
        non_null,
        nulls,
        distinct,
        min: vals.first().map(|v| (*v).clone()),
        max: vals.last().map(|v| (*v).clone()),
        buckets: equi_depth(&vals),
        prefix_fanout,
    }
}

/// Equi-depth bucketing over sorted values. A run of equal values never
/// straddles a boundary (the boundary slides right past it), so each
/// bucket's `rows / distinct` is a true average key depth.
fn equi_depth(sorted: &[&Value]) -> Vec<Bucket> {
    let n = sorted.len();
    if n == 0 {
        return Vec::new();
    }
    let depth = n.div_ceil(HISTOGRAM_BUCKETS).max(1);
    let mut buckets = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = (i + depth).min(n);
        while j < n && sorted[j] == sorted[j - 1] {
            j += 1;
        }
        let mut distinct = 1u64;
        for k in i + 1..j {
            if sorted[k] != sorted[k - 1] {
                distinct += 1;
            }
        }
        buckets.push(Bucket {
            upper: sorted[j - 1].clone(),
            rows: (j - i) as u64,
            distinct,
        });
        i = j;
    }
    buckets
}

/// Average number of strict byte-prefix descendants per value, over
/// lexicographically sorted byte strings. In sorted order every
/// value's prefix-ancestors form a contiguous stack (exactly the
/// document-order property Dewey encodings give), so one forward pass
/// counts all (ancestor, descendant) pairs. `None` if any value is not
/// `Bytes` (mixed columns carry no usable prefix structure).
fn prefix_fanout(sorted: &[&Value]) -> Option<f64> {
    if sorted.is_empty() {
        return Some(0.0);
    }
    let mut stack: Vec<&[u8]> = Vec::new();
    let mut pairs = 0u64;
    for v in sorted {
        let b = v.as_bytes()?;
        while let Some(top) = stack.last() {
            if b.len() > top.len() && b.starts_with(top) {
                break;
            }
            stack.pop();
        }
        pairs += stack.len() as u64;
        stack.push(b);
    }
    Some(pairs as f64 / sorted.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableSchema;

    fn table_with(vals: &[Value], ty: ColType) -> Table {
        let mut t = Table::new(TableSchema::new("t", &[("v", ty)]));
        for v in vals {
            t.insert(vec![v.clone()]).expect("insert");
        }
        t
    }

    #[test]
    fn row_and_null_counts() {
        let t = table_with(
            &[Value::Int(1), Value::Null, Value::Int(2), Value::Int(2)],
            ColType::Int,
        );
        let s = analyze(&t);
        assert_eq!(s.rows, 4);
        let c = &s.columns[0];
        assert_eq!((c.non_null, c.nulls, c.distinct), (3, 1, 2));
        assert_eq!(c.min, Some(Value::Int(1)));
        assert_eq!(c.max, Some(Value::Int(2)));
    }

    #[test]
    fn buckets_cover_all_rows_and_respect_equal_runs() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i / 10)).collect();
        let t = table_with(&vals, ColType::Int);
        let s = analyze(&t);
        let c = &s.columns[0];
        let total: u64 = c.buckets.iter().map(|b| b.rows).sum();
        assert_eq!(total, 1000);
        assert!(c.buckets.len() <= HISTOGRAM_BUCKETS + 1);
        // No run of 10 equal values straddles a boundary: each bucket's
        // rows is a multiple of the run length.
        for b in &c.buckets {
            assert_eq!(b.rows % 10, 0, "bucket {b:?}");
            assert_eq!(b.rows / 10, b.distinct);
        }
    }

    #[test]
    fn eq_fraction_from_histogram() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i % 100)).collect();
        let t = table_with(&vals, ColType::Int);
        let s = analyze(&t);
        let c = &s.columns[0];
        // Uniform 10 rows per key out of 1000.
        let f = c.eq_fraction(Some(&Value::Int(42)), s.rows);
        assert!((f - 0.01).abs() < 0.005, "{f}");
        // Unknown probe value: average depth.
        let f = c.eq_fraction(None, s.rows);
        assert!((f - 0.01).abs() < 0.005, "{f}");
        // Outside the domain: nothing matches.
        assert_eq!(c.eq_fraction(Some(&Value::Int(5000)), s.rows), 0.0);
    }

    #[test]
    fn range_fraction_interpolates() {
        let vals: Vec<Value> = (0..1000).map(Value::Int).collect();
        let t = table_with(&vals, ColType::Int);
        let s = analyze(&t);
        let c = &s.columns[0];
        let f = c.range_fraction(Some(&Value::Int(250)), Some(&Value::Int(500)), s.rows);
        assert!((f - 0.25).abs() < 0.05, "{f}");
        let f = c.range_fraction(None, Some(&Value::Int(100)), s.rows);
        assert!((f - 0.1).abs() < 0.05, "{f}");
        let f = c.range_fraction(Some(&Value::Int(900)), None, s.rows);
        assert!((f - 0.1).abs() < 0.05, "{f}");
    }

    #[test]
    fn bucket_boundary_values_stay_estimable() {
        // Every histogram boundary value must estimate like its
        // neighbours — boundaries are data values, not gaps.
        let vals: Vec<Value> = (0..640).map(Value::Int).collect();
        let t = table_with(&vals, ColType::Int);
        let s = analyze(&t);
        let c = &s.columns[0];
        for b in &c.buckets {
            let f = c.eq_fraction(Some(&b.upper), s.rows);
            assert!(f > 0.0, "boundary {:?} vanished", b.upper);
            assert!(
                f <= 2.0 / 640.0 + 1e-9,
                "boundary {:?} inflated: {f}",
                b.upper
            );
        }
    }

    #[test]
    fn prefix_fanout_counts_dewey_descendants() {
        // A 2-level tree: root 0x01, children 0x01.0x01 .. 0x01.0x04.
        let vals = vec![
            Value::Bytes(vec![1]),
            Value::Bytes(vec![1, 1]),
            Value::Bytes(vec![1, 2]),
            Value::Bytes(vec![1, 3]),
            Value::Bytes(vec![1, 4]),
        ];
        let t = table_with(&vals, ColType::Bytes);
        let s = analyze(&t);
        let f = s.columns[0].prefix_fanout.expect("bytes column");
        // 4 (ancestor, descendant) pairs over 5 nodes.
        assert!((f - 0.8).abs() < 1e-9, "{f}");
        // Flat siblings: no prefix pairs at all.
        let flat = table_with(
            &[
                Value::Bytes(vec![1]),
                Value::Bytes(vec![2]),
                Value::Bytes(vec![3]),
            ],
            ColType::Bytes,
        );
        let s = analyze(&flat);
        assert_eq!(s.columns[0].prefix_fanout, Some(0.0));
    }

    #[test]
    fn lookup_invalidates_on_mutation() {
        let mut t = table_with(&[Value::Int(1)], ColType::Int);
        assert!(lookup(&t).is_none(), "nothing analyzed yet");
        analyze(&t);
        assert!(lookup(&t).is_some());
        t.insert(vec![Value::Int(2)]).expect("insert");
        assert!(lookup(&t).is_none(), "version bump must invalidate");
        let s = analyze(&t);
        assert_eq!(s.rows, 2);
        t.create_index("ix", &["v"]).expect("index");
        assert!(lookup(&t).is_none(), "index build must invalidate too");
    }

    #[test]
    fn empty_and_single_row_tables() {
        let empty = table_with(&[], ColType::Int);
        let s = analyze(&empty);
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns[0].buckets.len(), 0);
        assert_eq!(s.columns[0].eq_fraction(Some(&Value::Int(1)), s.rows), 0.0);
        assert_eq!(s.columns[0].range_fraction(None, None, s.rows), 0.0);

        let one = table_with(&[Value::Int(7)], ColType::Int);
        let s = analyze(&one);
        assert_eq!(s.rows, 1);
        let c = &s.columns[0];
        assert_eq!(c.buckets.len(), 1);
        assert!((c.eq_fraction(Some(&Value::Int(7)), s.rows) - 1.0).abs() < 1e-9);
        assert_eq!(c.eq_fraction(Some(&Value::Int(8)), s.rows), 0.0);
    }

    #[test]
    fn analyze_db_covers_every_table() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("a", &[("x", ColType::Int)]))
            .expect("create");
        db.create_table(TableSchema::new("b", &[("y", ColType::Str)]))
            .expect("create");
        assert_eq!(analyze_db(&db), 2);
        assert!(lookup(db.table("a").expect("a")).is_some());
        assert!(lookup(db.table("b").expect("b")).is_some());
    }
}
