//! SQL values and column types.

use std::cmp::Ordering;
use std::fmt;

/// A column's declared type. All columns are nullable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    Int,
    Float,
    Str,
    /// Binary strings — used for `dewey_pos` columns, compared
    /// lexicographically byte by byte (paper §4.2).
    Bytes,
    Bool,
}

/// A runtime SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Bytes(Vec<u8>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The declared type this value inhabits, if not NULL.
    pub fn col_type(&self) -> Option<ColType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ColType::Bool),
            Value::Int(_) => Some(ColType::Int),
            Value::Float(_) => Some(ColType::Float),
            Value::Str(_) => Some(ColType::Str),
            Value::Bytes(_) => Some(ColType::Bytes),
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Total order over all values, used by B-tree index keys and `ORDER
    /// BY`. Cross-type order: Null < Bool < numeric (Int/Float unified) <
    /// Str < Bytes. Floats use IEEE total ordering so NaN is well placed.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Bytes(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

// Equality/ordering delegate to the total order so `Value` can be a B-tree
// key. SQL's 3-valued comparison semantics live in the executor, not here.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bytes(b) => {
                write!(f, "x'")?;
                for byte in b {
                    write!(f, "{byte:02X}")?;
                }
                write!(f, "'")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_cross_type() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(2.5),
            Value::Int(3),
            Value::Str("a".into()),
            Value::Bytes(vec![0x00]),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn numeric_unification() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
    }

    #[test]
    fn bytes_lexicographic() {
        // The core property the Dewey structural joins rely on.
        assert!(Value::Bytes(vec![0, 0, 1]) < Value::Bytes(vec![0, 0, 1, 0, 0, 1]));
        assert!(Value::Bytes(vec![0, 0, 1, 0xFF]) > Value::Bytes(vec![0, 0, 1, 0, 0, 2]));
        assert!(Value::Bytes(vec![0, 0, 2]) > Value::Bytes(vec![0, 0, 1, 0xFF]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Value::Bytes(vec![0xAB, 0x01]).to_string(), "x'AB01'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn nan_is_orderable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert!(nan > Value::Float(f64::INFINITY));
    }
}
