//! The database catalog: a named collection of tables.

use std::collections::BTreeMap;

use crate::table::{StoreError, Table, TableSchema};

/// An in-memory database instance.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Create an empty table. Fails if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), StoreError> {
        let name = schema.name.clone();
        if self.tables.contains_key(&name) {
            return Err(StoreError(format!("table `{name}` already exists")));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Table lookup that reports a useful error.
    pub fn require(&self, name: &str) -> Result<&Table, StoreError> {
        self.table(name)
            .ok_or_else(|| StoreError(format!("no such table `{name}`")))
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rows across all tables (used for reporting database
    /// sizes in the experiment harness).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColType, Value};

    #[test]
    fn catalog_basics() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", &[("id", ColType::Int)]))
            .expect("create");
        assert!(db.create_table(TableSchema::new("t", &[])).is_err());
        db.table_mut("t")
            .expect("t")
            .insert(vec![Value::Int(1)])
            .expect("insert");
        assert_eq!(db.require("t").expect("t").len(), 1);
        assert!(db.require("missing").is_err());
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.table_names().collect::<Vec<_>>(), vec!["t"]);
    }
}
