//! Tables: schemas, rows, and secondary B-tree indexes.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::value::{ColType, Value};

/// Position of a row within its table.
pub type RowId = usize;

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
}

/// Table schema: ordered column list.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    pub fn new(name: &str, columns: &[(&str, ColType)]) -> TableSchema {
        TableSchema {
            name: name.to_string(),
            columns: columns
                .iter()
                .map(|(n, t)| Column {
                    name: n.to_string(),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// A B-tree index over one or more columns. Maps composite keys to the
/// rows holding them. Rows with a NULL in any key column are excluded
/// (matching how RDBMS B-trees are used for equality/range lookups).
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    pub key_cols: Vec<usize>,
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl Index {
    fn key_of(&self, row: &[Value]) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(self.key_cols.len());
        for &c in &self.key_cols {
            if row[c].is_null() {
                return None;
            }
            key.push(row[c].clone());
        }
        Some(key)
    }

    fn insert_row(&mut self, rid: RowId, row: &[Value]) {
        if let Some(key) = self.key_of(row) {
            self.map.entry(key).or_default().push(rid);
        }
    }

    /// Rows whose full key equals `key`.
    pub fn get(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Rows whose key is within the given bounds (composite keys compare
    /// lexicographically). Used for `BETWEEN` on `dewey_pos`. Bounds are
    /// borrowed straight through to the B-tree — no per-probe key copies.
    pub fn range(
        &self,
        lo: Bound<&[Value]>,
        hi: Bound<&[Value]>,
    ) -> impl Iterator<Item = RowId> + '_ {
        self.map
            .range::<[Value], _>((lo, hi))
            .flat_map(|(_, rids)| rids.iter().copied())
    }

    /// Rows whose key starts with `prefix` (for composite indexes probed on
    /// a leading-column equality). The prefix is borrowed for the life of
    /// the iterator — no per-probe key copies.
    pub fn prefix<'a>(&'a self, prefix: &'a [Value]) -> impl Iterator<Item = RowId> + 'a {
        self.map
            .range::<[Value], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .flat_map(|(_, rids)| rids.iter().copied())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// All (key, rows) entries in key order. The sort-merge structural
    /// join materializes this once into a flat array and then advances a
    /// monotonic cursor over it instead of re-probing the B-tree.
    pub fn entries(&self) -> impl Iterator<Item = (&[Value], &[RowId])> {
        self.map
            .iter()
            .map(|(k, rids)| (k.as_slice(), rids.as_slice()))
    }
}

/// Process-wide source of table identities. Caches outside the store
/// (e.g. the executor's path-filter memo) key on `(uid, version)`:
/// `uid` distinguishes tables across `Database` instances and clones,
/// `version` advances on every mutation of one table's contents.
static NEXT_TABLE_UID: AtomicU64 = AtomicU64::new(1);

fn fresh_table_uid() -> u64 {
    NEXT_TABLE_UID.fetch_add(1, Relaxed)
}

/// A heap table plus its indexes.
#[derive(Debug)]
pub struct Table {
    pub schema: TableSchema,
    rows: Vec<Vec<Value>>,
    indexes: Vec<Index>,
    uid: u64,
    version: u64,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        // A clone is a distinct table as far as external caches are
        // concerned: give it a fresh identity so memo entries for the
        // original never alias onto the copy.
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            indexes: self.indexes.clone(),
            uid: fresh_table_uid(),
            version: 0,
        }
    }
}

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

impl Table {
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            uid: fresh_table_uid(),
            version: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Process-unique identity of this table instance (fresh per `new`
    /// and per `clone`). Stable across mutations; pair with
    /// [`Table::version`] to key external caches.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Mutation counter: bumped on every insert and index build, so
    /// `(uid, version)` identifies one immutable snapshot of contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn row(&self, rid: RowId) -> &[Value] {
        &self.rows[rid]
    }

    pub fn rows(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }

    /// Append a row, maintaining all indexes. The row must match the schema
    /// arity and column types (NULL allowed anywhere).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, StoreError> {
        if row.len() != self.schema.columns.len() {
            return Err(StoreError(format!(
                "table `{}`: expected {} columns, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.schema.columns) {
            if let Some(vt) = value.col_type() {
                let compatible =
                    vt == col.ty || matches!((vt, col.ty), (ColType::Int, ColType::Float));
                if !compatible {
                    return Err(StoreError(format!(
                        "table `{}`, column `{}`: type mismatch ({vt:?} into {:?})",
                        self.schema.name, col.name, col.ty
                    )));
                }
            }
        }
        let rid = self.rows.len();
        for idx in &mut self.indexes {
            idx.insert_row(rid, &row);
        }
        self.rows.push(row);
        self.version += 1;
        Ok(rid)
    }

    /// Create a B-tree index over the named columns (builds eagerly).
    pub fn create_index(&mut self, name: &str, cols: &[&str]) -> Result<(), StoreError> {
        let key_cols: Vec<usize> = cols
            .iter()
            .map(|c| {
                self.schema.col(c).ok_or_else(|| {
                    StoreError(format!("table `{}` has no column `{c}`", self.schema.name))
                })
            })
            .collect::<Result<_, _>>()?;
        let mut idx = Index {
            name: name.to_string(),
            key_cols,
            map: BTreeMap::new(),
        };
        for (rid, row) in self.rows.iter().enumerate() {
            idx.insert_row(rid, row);
        }
        self.indexes.push(idx);
        self.version += 1;
        Ok(())
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index whose leading key columns are exactly `cols` (in
    /// order), preferring the shortest such index.
    pub fn index_on(&self, cols: &[usize]) -> Option<&Index> {
        self.indexes
            .iter()
            .filter(|i| i.key_cols.len() >= cols.len() && i.key_cols[..cols.len()] == *cols)
            .min_by_key(|i| i.key_cols.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(TableSchema::new(
            "people",
            &[
                ("id", ColType::Int),
                ("name", ColType::Str),
                ("age", ColType::Int),
            ],
        ));
        for (id, name, age) in [
            (1, "ann", 30),
            (2, "bob", 25),
            (3, "cho", 30),
            (4, "dee", 41),
        ] {
            t.insert(vec![Value::Int(id), Value::from(name), Value::Int(age)])
                .expect("insert");
        }
        t
    }

    #[test]
    fn insert_and_scan() {
        let t = people();
        assert_eq!(t.len(), 4);
        assert_eq!(t.row(2)[1], Value::from("cho"));
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = people();
        assert!(t.insert(vec![Value::Int(9)]).is_err());
        assert!(t
            .insert(vec![Value::from("x"), Value::from("y"), Value::Int(1)])
            .is_err());
        assert!(t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .is_ok());
    }

    #[test]
    fn index_equality_lookup() {
        let mut t = people();
        t.create_index("people_age", &["age"]).expect("index");
        let idx = t.index_on(&[2]).expect("index on age");
        assert_eq!(idx.get(&[Value::Int(30)]), &[0, 2]);
        assert_eq!(idx.get(&[Value::Int(99)]), &[] as &[RowId]);
    }

    #[test]
    fn index_range_scan() {
        let mut t = people();
        t.create_index("people_age", &["age"]).expect("index");
        let idx = &t.indexes()[0];
        let got: Vec<RowId> = idx
            .range(
                Bound::Included(&[Value::Int(26)][..]),
                Bound::Included(&[Value::Int(40)][..]),
            )
            .collect();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn composite_index_prefix() {
        let mut t = people();
        t.create_index("people_age_name", &["age", "name"])
            .expect("index");
        let idx = &t.indexes()[0];
        let got: Vec<RowId> = idx.prefix(&[Value::Int(30)]).collect();
        assert_eq!(got, vec![0, 2]);
        // index_on with the leading column only still finds it
        assert!(t.index_on(&[2]).is_some());
        assert!(t.index_on(&[1]).is_none());
    }

    #[test]
    fn nulls_excluded_from_index() {
        let mut t = people();
        t.insert(vec![Value::Int(5), Value::Null, Value::Null])
            .expect("insert");
        t.create_index("people_age", &["age"]).expect("index");
        let idx = &t.indexes()[0];
        let total: usize = t.rows().filter(|(_, r)| !r[2].is_null()).count();
        let indexed: usize = idx.range(Bound::Unbounded, Bound::Unbounded).count();
        assert_eq!(indexed, total);
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = people();
        t.create_index("people_name", &["name"]).expect("index");
        t.insert(vec![Value::Int(6), Value::from("eve"), Value::Int(22)])
            .expect("insert");
        let idx = &t.indexes()[0];
        assert_eq!(idx.get(&[Value::from("eve")]), &[4]);
    }

    #[test]
    fn index_on_unknown_column_fails() {
        let mut t = people();
        assert!(t.create_index("x", &["nope"]).is_err());
    }

    #[test]
    fn version_tracks_mutations_and_uid_is_unique() {
        let mut t = people();
        let v0 = t.version();
        t.insert(vec![Value::Int(9), Value::from("zed"), Value::Int(50)])
            .expect("insert");
        assert!(t.version() > v0);
        let v1 = t.version();
        t.create_index("people_age", &["age"]).expect("index");
        assert!(t.version() > v1);

        let clone = t.clone();
        assert_ne!(clone.uid(), t.uid(), "clones must not alias cache keys");
        let other = Table::new(TableSchema::new("people", &[("id", ColType::Int)]));
        assert_ne!(other.uid(), t.uid());
    }

    #[test]
    fn entries_iterates_in_key_order() {
        let mut t = people();
        t.create_index("people_age", &["age"]).expect("index");
        let idx = &t.indexes()[0];
        let keys: Vec<i64> = idx
            .entries()
            .map(|(k, _)| match k[0] {
                Value::Int(v) => v,
                _ => panic!("expected int key"),
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let total: usize = idx.entries().map(|(_, rids)| rids.len()).sum();
        assert_eq!(total, t.len());
    }
}
