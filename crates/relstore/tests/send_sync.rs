//! Thread-safety audit: the relational store is plain owned data with no
//! interior mutability, so shared references to it may cross threads —
//! the property the partitioned executor and the concurrent query engine
//! are built on. These are compile-time assertions; if a field ever
//! introduces `Rc`/`RefCell`/raw pointers, this file stops compiling.

use relstore::{Database, Table, TableSchema, Value};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn store_types_are_send_and_sync() {
    assert_send_sync::<Database>();
    assert_send_sync::<Table>();
    assert_send_sync::<TableSchema>();
    assert_send_sync::<Value>();
}

#[test]
fn shared_table_reads_from_many_threads() {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t",
        &[
            ("id", relstore::ColType::Int),
            ("p", relstore::ColType::Str),
        ],
    ))
    .unwrap();
    {
        let t = db.table_mut("t").unwrap();
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::Str(format!("/a/b{i}"))])
                .unwrap();
        }
    }
    let db = std::sync::Arc::new(db);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                let t = db.table("t").unwrap();
                let sum: i64 = t.rows().filter_map(|(_, r)| r[0].as_int()).sum();
                assert_eq!(sum, (0..100).sum::<i64>());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
