//! Property tests: every index access path must return exactly the rows a
//! full scan with the equivalent predicate returns.

use std::ops::Bound;

use proptest::prelude::*;
use relstore::{ColType, Table, TableSchema, Value};

fn build_table(rows: &[(i64, Vec<u8>, Option<String>)]) -> Table {
    let mut t = Table::new(TableSchema::new(
        "t",
        &[
            ("k", ColType::Int),
            ("b", ColType::Bytes),
            ("s", ColType::Str),
        ],
    ));
    for (k, b, s) in rows {
        t.insert(vec![
            Value::Int(*k),
            Value::Bytes(b.clone()),
            s.clone().map(Value::Str).unwrap_or(Value::Null),
        ])
        .expect("insert");
    }
    t.create_index("t_k", &["k"]).expect("index");
    t.create_index("t_b_k", &["b", "k"]).expect("index");
    t.create_index("t_s", &["s"]).expect("index");
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn equality_lookup_matches_scan(
        rows in proptest::collection::vec(
            (0i64..20, proptest::collection::vec(0u8..4, 0..3),
             proptest::option::of("[ab]{0,2}")),
            0..40),
        probe in 0i64..20,
    ) {
        let t = build_table(&rows);
        let idx = t.index_on(&[0]).expect("k index");
        let mut via_index: Vec<usize> = idx.get(&[Value::Int(probe)]).to_vec();
        via_index.sort_unstable();
        let mut via_scan: Vec<usize> = t
            .rows()
            .filter(|(_, r)| r[0] == Value::Int(probe))
            .map(|(rid, _)| rid)
            .collect();
        via_scan.sort_unstable();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn range_scan_matches_filter(
        rows in proptest::collection::vec(
            (0i64..20, proptest::collection::vec(0u8..4, 0..3),
             proptest::option::of("[ab]{0,2}")),
            0..40),
        lo in proptest::collection::vec(0u8..4, 0..3),
        hi in proptest::collection::vec(0u8..4, 0..3),
    ) {
        prop_assume!(lo <= hi);
        let t = build_table(&rows);
        let idx = t.index_on(&[1]).expect("b index");
        let lo_k = [Value::Bytes(lo.clone())];
        let hi_k = [Value::Bytes({ let mut h = hi.clone(); h.push(0xFF); h })];
        let mut via_index: Vec<usize> = idx
            .range(Bound::Included(&lo_k[..]), Bound::Included(&hi_k[..]))
            .collect();
        via_index.sort_unstable();
        // The composite key range [lo .. hi‖FF] over (b, k) contains all
        // rows with lo <= b <= hi‖FF lexicographically on the composite;
        // verify against a scan using the same composite comparison.
        let mut via_scan: Vec<usize> = t
            .rows()
            .filter(|(_, r)| {
                let key = [r[1].clone(), r[0].clone()];
                key[..] >= lo_k[..] && {
                    // composite prefix comparison against [hi||FF]
                    match key[0].cmp_total(&hi_k[0]) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => true, // k vs nothing: shorter-or-equal
                        std::cmp::Ordering::Greater => false,
                    }
                }
            })
            .map(|(rid, _)| rid)
            .collect();
        via_scan.sort_unstable();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn prefix_scan_matches_filter(
        rows in proptest::collection::vec(
            (0i64..20, proptest::collection::vec(0u8..4, 0..3),
             proptest::option::of("[ab]{0,2}")),
            0..40),
        prefix in proptest::collection::vec(0u8..4, 0..2),
    ) {
        let t = build_table(&rows);
        let idx = t.index_on(&[1]).expect("b index");
        let mut via_index: Vec<usize> =
            idx.prefix(&[Value::Bytes(prefix.clone())]).collect();
        via_index.sort_unstable();
        let mut via_scan: Vec<usize> = t
            .rows()
            .filter(|(_, r)| r[1] == Value::Bytes(prefix.clone()))
            .map(|(rid, _)| rid)
            .collect();
        via_scan.sort_unstable();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn null_rows_never_appear_in_indexes(
        rows in proptest::collection::vec(
            (0i64..20, proptest::collection::vec(0u8..4, 0..3),
             proptest::option::of("[ab]{0,2}")),
            0..40),
    ) {
        let t = build_table(&rows);
        let idx = t.index_on(&[2]).expect("s index");
        let indexed: usize = idx.range(Bound::Unbounded, Bound::Unbounded).count();
        let non_null: usize = t.rows().filter(|(_, r)| !r[2].is_null()).count();
        prop_assert_eq!(indexed, non_null);
    }
}
