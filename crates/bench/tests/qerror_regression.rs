//! Regression guard for the statistics subsystem's reason to exist: on
//! the XMark and DBLP workloads, per-step cardinality estimates taken
//! from table statistics must beat the fixed `sel::*` selectivity
//! constants on median q-error. (The full-scale version of this check,
//! plus plan-change and wall-time gates, runs in the `plan_quality`
//! bench bin.)

use ppf_bench::{
    dblp_schema, generate_dblp, generate_xmark, xmark_queries, xmark_schema, DblpConfig,
    XMarkConfig,
};
use ppf_core::XmlDb;
use relstore::Database;
use sqlexec::{Executor, SelectStmt};

fn build(schema: &xmlschema::Schema, doc: &xmldom::Document) -> XmlDb {
    let mut db = XmlDb::new(schema).expect("schema db");
    db.set_path_marking(false);
    db.load(doc).expect("load");
    db.finalize().expect("indexes");
    db
}

/// Median per-step q-error of one statement, planned with statistics
/// consumption set to `stats_on`.
fn stmt_qerror(db: &Database, stmt: &SelectStmt, stats_on: bool) -> f64 {
    let prev = sqlexec::set_stats_enabled(stats_on);
    let exec = Executor::new(db);
    exec.run(stmt).expect("statement runs");
    let mut qs = Vec::new();
    for (plan, ops) in exec.profiled_steps() {
        for (step, op) in plan.steps.iter().zip(&ops) {
            if op.invocations > 0 {
                let act = op.rows_out as f64 / op.invocations as f64;
                qs.push(sqlexec::qerror(step.est_rows, act));
            }
        }
    }
    sqlexec::set_stats_enabled(prev);
    median(qs)
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn suite_medians(db: &XmlDb, queries: &[(&str, &str)]) -> (Vec<f64>, Vec<f64>) {
    // Prime once so regex survivor ratios are learned before the
    // measured runs, as they would be on any warmed-up engine.
    for (name, q) in queries {
        db.query(q).expect(name);
    }
    let mut on = Vec::new();
    let mut off = Vec::new();
    for (name, q) in queries {
        let Some(stmt) = db.translate(q).expect(name).stmt else {
            continue;
        };
        on.push(stmt_qerror(db.db(), &stmt, true));
        off.push(stmt_qerror(db.db(), &stmt, false));
    }
    (on, off)
}

#[test]
fn median_qerror_improves_with_stats() {
    let xmark = build(
        &xmark_schema(),
        &generate_xmark(XMarkConfig {
            scale: 0.05,
            seed: 42,
        }),
    );
    let dblp = build(
        &dblp_schema(),
        &generate_dblp(DblpConfig {
            scale: 0.05,
            seed: 7,
        }),
    );
    let (mut on, mut off) = suite_medians(&xmark, &xmark_queries());
    let dblp_queries = ppf_bench::dblp_queries();
    let (don, doff) = suite_medians(&dblp, &dblp_queries);
    on.extend(don);
    off.extend(doff);

    let m_on = median(on.clone());
    let m_off = median(off.clone());
    assert!(
        m_on < m_off,
        "stats did not improve median q-error: on {m_on:.3} vs off {m_off:.3}\n  on: {on:?}\n  off: {off:?}"
    );
}
