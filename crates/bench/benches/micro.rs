//! Microbenchmarks for the paper's two core mechanisms — lexicographic
//! binary Dewey comparisons (§4.2) and POSIX-ERE path filtering (§4.1) —
//! plus the observability layer's no-sink overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn dewey_micro(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let vectors: Vec<Vec<u32>> = (0..1024)
        .map(|_| {
            let depth = rng.gen_range(1..10);
            (0..depth).map(|_| rng.gen_range(1..500)).collect()
        })
        .collect();
    let encoded: Vec<Vec<u8>> = vectors
        .iter()
        .map(|v| shred::dewey::encode(v).expect("encodable"))
        .collect();

    c.bench_function("dewey_encode", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for v in &vectors {
                n += shred::dewey::encode(v).expect("encodable").len();
            }
            n
        })
    });
    c.bench_function("dewey_descendant_check", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for pair in encoded.windows(2) {
                if shred::dewey::is_descendant(&pair[1], &pair[0]) {
                    hits += 1;
                }
            }
            hits
        })
    });
    c.bench_function("dewey_following_check", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for pair in encoded.windows(2) {
                if shred::dewey::is_following(&pair[1], &pair[0]) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn regex_micro(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let segs = [
        "site",
        "regions",
        "item",
        "description",
        "parlist",
        "listitem",
        "text",
        "keyword",
    ];
    let paths: Vec<String> = (0..1024)
        .map(|_| {
            let depth = rng.gen_range(1..9);
            let mut p = String::new();
            for _ in 0..depth {
                p.push('/');
                p.push_str(segs[rng.gen_range(0..segs.len())]);
            }
            p
        })
        .collect();
    let re = regexlite::Regex::new("^/site(/[^/]+)*/listitem(/[^/]+)*/keyword$")
        .expect("pattern compiles");
    c.bench_function("regex_path_filter_1024", |b| {
        b.iter(|| paths.iter().filter(|p| re.is_match(p)).count())
    });
    let exact = regexlite::Regex::new("^/site/regions/item$").expect("pattern compiles");
    c.bench_function("regex_exact_path_1024", |b| {
        b.iter(|| paths.iter().filter(|p| exact.is_match(p)).count())
    });
}

/// The observability layer must cost nothing to speak of when no sink is
/// attached: building a five-phase trace in memory and bumping registry
/// counters are the only costs a traced query pays over a plain one.
fn obs_micro(c: &mut Criterion) {
    c.bench_function("obs_trace_five_phases_no_sink", |b| {
        b.iter(|| {
            let mut trace = obs::QueryTrace::new("//site//item");
            let root = trace.start("query");
            for phase in ["parse", "translate", "plan", "execute", "publish"] {
                let span = trace.start(phase);
                trace.counter(span, "rows_scanned", 1024);
                trace.counter(span, "index_probes", 64);
                trace.end(span);
            }
            trace.end(root);
            trace.spans().len()
        })
    });
    let reg = obs::Registry::global();
    c.bench_function("obs_registry_incr_and_observe", |b| {
        b.iter(|| {
            reg.incr("bench.queries", 1);
            reg.observe("bench.execute_ns", 123_456);
        })
    });
    // The profiler's overhead contract: a detached `record()` is one
    // relaxed atomic load and a predicted branch (the hot-path cost every
    // pool worker and chunk closure pays, always), and an attached one is
    // a thread-local ring append. `profile_smoke` gates the detached
    // number at <2% of a warm query.
    c.bench_function("profile_record_detached", |b| {
        assert!(!obs::profile::is_attached());
        b.iter(|| obs::profile::record(obs::profile::EventKind::ChunkStart, 128))
    });
    c.bench_function("profile_record_attached", |b| {
        assert!(obs::profile::attach(), "profiler already attached");
        b.iter(|| obs::profile::record(obs::profile::EventKind::ChunkStart, 128));
        obs::profile::detach();
    });
}

/// Index probes must not allocate once the executor's key scratch and
/// row-buffer pool are warm: `ExecStats::probe_allocs` counts every
/// acquisition that had to fall back to the heap, and a warmed-up
/// executor must keep it flat across thousands of probes.
fn index_probe_micro(c: &mut Criterion) {
    use relstore::{ColType, Database, TableSchema, Value};
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t",
        &[("id", ColType::Int), ("v", ColType::Int)],
    ))
    .expect("table");
    {
        let t = db.table_mut("t").expect("t");
        for i in 0..10_000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i * 7)])
                .expect("row");
        }
        t.create_index("t_id", &["id"]).expect("index");
    }
    let exec = sqlexec::Executor::new(&db);
    let stmt = sqlexec::parse_sql("select t.v from t where t.id = 4321").expect("sql");
    exec.run(&stmt).expect("warmup");
    let warm_allocs = exec.stats().probe_allocs;
    for _ in 0..1024 {
        exec.run(&stmt).expect("probe");
    }
    assert_eq!(
        exec.stats().probe_allocs,
        warm_allocs,
        "warm index probes must not allocate"
    );
    c.bench_function("index_eq_probe", |b| {
        b.iter(|| exec.run(&stmt).expect("probe").rows.len())
    });

    let range =
        sqlexec::parse_sql("select t.v from t where t.id between 4000 and 4100").expect("sql");
    c.bench_function("index_range_probe_100", |b| {
        b.iter(|| exec.run(&range).expect("range").rows.len())
    });
}

criterion_group!(
    benches,
    dewey_micro,
    regex_micro,
    obs_micro,
    index_probe_micro
);
criterion_main!(benches);
