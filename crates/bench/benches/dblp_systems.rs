//! Appendix C (DBLP table): QD1–QD5 across the systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppf_bench::{build_dblp, dblp_queries, run_query, System};

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

fn dblp(c: &mut Criterion) {
    let data = build_dblp(bench_scale(), 42);
    let mut group = c.benchmark_group("dblp");
    group.sample_size(10);
    for (name, q) in dblp_queries() {
        for system in System::ALL {
            if run_query(&data, system, q).is_err() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(system.label().replace(' ', "_"), name),
                &q,
                |b, q| b.iter(|| run_query(&data, system, q).expect("supported")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, dblp);
criterion_main!(benches);
