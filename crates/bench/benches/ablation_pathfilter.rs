//! §4.5 ablation: the U-P/F-P/I-P marking that omits provably redundant
//! `Paths` joins, on vs off. Queries over deep unique-path chains
//! (U-P-heavy) should gain the most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppf_bench::{generate_xmark, xmark_schema, XMarkConfig};
use ppf_core::XmlDb;

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

const QUERIES: &[(&str, &str)] = &[
    // U-P-heavy chains: every step has a unique root path.
    (
        "deep_chain",
        "/site/open_auctions/open_auction/interval/start",
    ),
    ("person_chain", "/site/people/person/address/city"),
    // Predicated U-P chain.
    (
        "pred_chain",
        "/site/people/person[address and (phone or homepage)]",
    ),
    // F-P/I-P queries keep their filters either way; the marking should
    // not hurt them.
    ("recursive", "//parlist/listitem//keyword"),
    ("wildcard", "/site/regions/*/item"),
];

fn ablation(c: &mut Criterion) {
    let doc = generate_xmark(XMarkConfig {
        scale: bench_scale(),
        seed: 42,
    });
    let mut on = XmlDb::new(&xmark_schema()).expect("db");
    on.load(&doc).expect("load");
    on.finalize().expect("indexes");
    let mut off = XmlDb::new(&xmark_schema()).expect("db");
    off.set_path_marking(false);
    off.load(&doc).expect("load");
    off.finalize().expect("indexes");

    let mut group = c.benchmark_group("ablation_pathfilter");
    group.sample_size(10);
    for (name, q) in QUERIES {
        // Sanity: identical results.
        assert_eq!(
            on.query(q).expect("on").ids(),
            off.query(q).expect("off").ids(),
            "marking changed results for {q}"
        );
        group.bench_with_input(BenchmarkId::new("marking_on", name), q, |b, q| {
            b.iter(|| on.query(q).expect("on").rows.rows.len())
        });
        group.bench_with_input(BenchmarkId::new("marking_off", name), q, |b, q| {
            b.iter(|| off.query(q).expect("off").rows.rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
