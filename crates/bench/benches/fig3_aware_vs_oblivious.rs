//! Figure 3: schema-aware vs schema-oblivious PPF-based processing.
//!
//! The paper's claim: apportioning XML content into several relations
//! beats the Edge-like central relation, most dramatically on queries
//! with structural joins (Q6, Q7, Q-A, QD2, QD5), because those become
//! self-joins of one large relation in the oblivious mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppf_bench::{build_dblp, build_xmark, dblp_queries, run_query, xmark_queries, System};

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

fn fig3(c: &mut Criterion) {
    let scale = bench_scale();
    let xmark = build_xmark(scale, 42);
    let mut group = c.benchmark_group("fig3_xmark");
    group.sample_size(10);
    for (name, q) in xmark_queries() {
        // Sanity: both mappings must agree before we time them.
        ppf_bench::check_agreement(&xmark, q).expect("mappings agree");
        group.bench_with_input(BenchmarkId::new("schema_aware", name), &q, |b, q| {
            b.iter(|| run_query(&xmark, System::Ppf, q).expect("ppf"))
        });
        group.bench_with_input(BenchmarkId::new("edge_like", name), &q, |b, q| {
            b.iter(|| run_query(&xmark, System::EdgePpf, q).expect("edge"))
        });
    }
    group.finish();
    drop(xmark);

    let dblp = build_dblp(scale, 42);
    let mut group = c.benchmark_group("fig3_dblp");
    group.sample_size(10);
    for (name, q) in dblp_queries() {
        ppf_bench::check_agreement(&dblp, q).expect("mappings agree");
        group.bench_with_input(BenchmarkId::new("schema_aware", name), &q, |b, q| {
            b.iter(|| run_query(&dblp, System::Ppf, q).expect("ppf"))
        });
        group.bench_with_input(BenchmarkId::new("edge_like", name), &q, |b, q| {
            b.iter(|| run_query(&dblp, System::EdgePpf, q).expect("edge"))
        });
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
