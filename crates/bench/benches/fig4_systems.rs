//! Figure 4 + Appendix C (XMark table): PPF vs the other systems on the
//! XPathMark query subset. Unsupported (system, query) pairs are skipped,
//! mirroring the paper's N/A cells for the commercial RDBMS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppf_bench::{build_xmark, run_query, xmark_queries, System};

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

fn fig4(c: &mut Criterion) {
    let data = build_xmark(bench_scale(), 42);
    let mut group = c.benchmark_group("fig4_xmark");
    group.sample_size(10);
    for (name, q) in xmark_queries() {
        for system in System::ALL {
            if run_query(&data, system, q).is_err() {
                continue; // N/A cell
            }
            group.bench_with_input(
                BenchmarkId::new(system.label().replace(' ', "_"), name),
                &q,
                |b, q| b.iter(|| run_query(&data, system, q).expect("supported")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
