//! §4.2 ablation: the paper argues single child/parent steps should join
//! on integer foreign keys rather than Dewey ranges ("foreign key and
//! primary key columns … are much smaller than dewey_pos columns, and
//! moreover equijoins perform generally better than theta-joins").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppf_bench::{generate_xmark, xmark_schema, XMarkConfig};
use ppf_core::XmlDb;

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

const QUERIES: &[(&str, &str)] = &[
    // Child chains broken by predicates, forcing per-PPF joins.
    (
        "bidder_ref",
        "/site/open_auctions/open_auction[@id='open_auction0']/bidder/personref",
    ),
    ("parent_step", "//personref/parent::bidder"),
    ("pred_child", "/site/people/person[profile]/watches/watch"),
];

fn ablation(c: &mut Criterion) {
    let doc = generate_xmark(XMarkConfig {
        scale: bench_scale(),
        seed: 42,
    });
    let mut fk = XmlDb::new(&xmark_schema()).expect("db");
    fk.load(&doc).expect("load");
    fk.finalize().expect("indexes");
    // The dewey-join variant needs the non-default option; build through
    // the translate options on a second instance.
    let mut dewey = XmlDb::new(&xmark_schema()).expect("db");
    dewey.set_fk_joins(false);
    dewey.load(&doc).expect("load");
    dewey.finalize().expect("indexes");

    let mut group = c.benchmark_group("ablation_fk_vs_dewey");
    group.sample_size(10);
    for (name, q) in QUERIES {
        assert_eq!(
            fk.query(q).expect("fk").ids(),
            dewey.query(q).expect("dewey").ids(),
            "join strategy changed results for {q}"
        );
        group.bench_with_input(BenchmarkId::new("fk_join", name), q, |b, q| {
            b.iter(|| fk.query(q).expect("fk").rows.rows.len())
        });
        group.bench_with_input(BenchmarkId::new("dewey_join", name), q, |b, q| {
            b.iter(|| dewey.query(q).expect("dewey").rows.rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
