//! Performance regression gate for the hot-path work: runs the fig4
//! (XMark) workload twice — once with every optimisation disabled (lazy
//! DFA off, sort-merge joins off, thread caches cleared per run) and
//! once with the defaults — and emits `BENCH_2.json` with per-query
//! timings and observability counters.
//!
//! Exit is non-zero when the optimised configuration fails its
//! invariants:
//!   * Pike-VM steps spent on path filtering must drop vs. the
//!     de-optimised run (the DFA answers those matches in O(bytes)),
//!     and vs. the committed baseline when one is present;
//!   * warm repeats must skip parse/translate/plan entirely.
//!
//! `--write-baseline` records the de-optimised measurements into
//! `crates/bench/baselines/perf_check_baseline.json` for future runs to
//! compare against.

use std::fmt::Write as _;
use std::time::Instant;

use ppf_bench::{generate_xmark, xmark_queries, xmark_schema, XMarkConfig};
use ppf_core::XmlDb;
use sqlexec::MergeMode;

const BASELINE_PATH: &str = "crates/bench/baselines/perf_check_baseline.json";
const OUTPUT_PATH: &str = "BENCH_2.json";

/// The `ablation_pathfilter` bench's query set (filter-heavy chains),
/// measured alongside fig4 so the hot-path gains on both workloads land
/// in one report.
const ABLATION_QUERIES: &[(&str, &str)] = &[
    (
        "deep_chain",
        "/site/open_auctions/open_auction/interval/start",
    ),
    ("person_chain", "/site/people/person/address/city"),
    (
        "pred_chain",
        "/site/people/person[address and (phone or homepage)]",
    ),
    ("recursive", "//parlist/listitem//keyword"),
    ("wildcard", "/site/regions/*/item"),
];

fn workload() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut qs: Vec<(&'static str, &'static str, &'static str)> = xmark_queries()
        .into_iter()
        .map(|(n, q)| ("fig4", n, q))
        .collect();
    qs.extend(ABLATION_QUERIES.iter().map(|&(n, q)| ("ablation", n, q)));
    qs
}

struct Measurement {
    group: &'static str,
    name: &'static str,
    query: &'static str,
    rows: usize,
    cold_ns: u64,
    warm_ns: u64,
    base_cold_ns: u64,
    vm_steps: u64,
    base_vm_steps: u64,
    dfa_matches: u64,
    dfa_fallbacks: u64,
    merge_probes: u64,
    path_memo_hits_warm: u64,
    warm_skips_frontend: bool,
}

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

fn build_db(doc: &xmldom::Document) -> XmlDb {
    let mut db = XmlDb::new(&xmark_schema()).expect("schema db");
    // The §4.5 marking statically removes most path filters from this
    // workload, leaving nothing for the filter hot path to do. This
    // gate measures that hot path, so — like the path-filter ablation —
    // it keeps every REGEXP_LIKE in the generated SQL.
    db.set_path_marking(false);
    db.load(doc).expect("load");
    db.finalize().expect("indexes");
    db
}

/// Separately-loaded stores per configuration, several per side so the
/// noisy one-shot cold measurement can take a min (the engine caches
/// plans per XPath per store, so a query's first run on each store is a
/// genuine cold run).
const COLD_ROUNDS: usize = 3;

fn measure(doc: &xmldom::Document) -> Vec<Measurement> {
    let base_dbs: Vec<XmlDb> = (0..COLD_ROUNDS).map(|_| build_db(doc)).collect();
    let opt_dbs: Vec<XmlDb> = (0..COLD_ROUNDS).map(|_| build_db(doc)).collect();
    let mut out = Vec::new();

    for (group, name, query) in workload() {
        // De-optimised: no lazy DFA, no merge joins, no compiled-regex
        // cache or path-filter memo (compile per evaluation — the
        // original engine behaviour), thread caches cleared.
        regexlite::set_dfa_enabled(false);
        sqlexec::set_merge_mode(MergeMode::ForceOff);
        let prev = sqlexec::set_filter_caches_enabled(false);
        let mut base_cold_ns = u64::MAX;
        let mut base_rows = 0;
        let mut base_steps = 0;
        for db in &base_dbs {
            sqlexec::clear_filter_caches();
            let t0 = Instant::now();
            let r = db.query(query).expect(name);
            let ns = t0.elapsed().as_nanos() as u64;
            if ns < base_cold_ns {
                base_cold_ns = ns;
                base_steps = r.engine.vm_steps;
            }
            base_rows = r.rows.rows.len();
        }
        sqlexec::set_filter_caches_enabled(prev);

        // Optimised defaults, measured cold (first run of this XPath on
        // each store, thread caches cleared) and warm (best of 3).
        regexlite::set_dfa_enabled(true);
        sqlexec::set_merge_mode(MergeMode::Auto);
        let mut cold_ns = u64::MAX;
        let mut cold = None;
        for db in &opt_dbs {
            sqlexec::clear_filter_caches();
            let t0 = Instant::now();
            let r = db.query(query).expect(name);
            let ns = t0.elapsed().as_nanos() as u64;
            if ns < cold_ns {
                cold_ns = ns;
                cold = Some(r);
            }
        }
        let cold = cold.expect("at least one cold round");

        let mut warm_ns = u64::MAX;
        let mut warm = cold.engine;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = opt_dbs[0].query(query).expect(name);
            warm_ns = warm_ns.min(t0.elapsed().as_nanos() as u64);
            warm = r.engine;
        }

        assert_eq!(base_rows, cold.rows.rows.len(), "{name}");
        out.push(Measurement {
            group,
            name,
            query,
            rows: cold.rows.rows.len(),
            cold_ns,
            warm_ns,
            base_cold_ns,
            vm_steps: cold.engine.vm_steps,
            base_vm_steps: base_steps,
            dfa_matches: cold.engine.dfa_matches,
            dfa_fallbacks: cold.engine.dfa_fallbacks,
            merge_probes: cold.engine.merge_probes,
            path_memo_hits_warm: warm.path_memo_hits,
            warm_skips_frontend: warm.plan_cache_hits == 1
                && warm.parse_ns == 0
                && warm.translate_ns == 0
                && warm.plan_ns == 0,
        });
    }
    out
}

fn render_json(scale: f64, ms: &[Measurement]) -> String {
    let mut s = String::new();
    let total_steps: u64 = ms.iter().map(|m| m.vm_steps).sum();
    let total_base_steps: u64 = ms.iter().map(|m| m.base_vm_steps).sum();
    let twice = |group: &str| {
        ms.iter()
            .filter(|m| m.group == group && m.base_cold_ns >= 2 * m.cold_ns)
            .count()
    };
    let count = |group: &str| ms.iter().filter(|m| m.group == group).count();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"bench\": \"perf_check\",").unwrap();
    writeln!(s, "  \"scale\": {scale},").unwrap();
    writeln!(s, "  \"path_marking\": false,").unwrap();
    writeln!(s, "  \"totals\": {{").unwrap();
    writeln!(s, "    \"queries\": {},", ms.len()).unwrap();
    writeln!(s, "    \"vm_steps\": {total_steps},").unwrap();
    writeln!(s, "    \"base_vm_steps\": {total_base_steps},").unwrap();
    writeln!(s, "    \"fig4_queries\": {},", count("fig4")).unwrap();
    writeln!(s, "    \"fig4_at_least_2x_cold\": {},", twice("fig4")).unwrap();
    writeln!(s, "    \"ablation_queries\": {},", count("ablation")).unwrap();
    writeln!(
        s,
        "    \"ablation_at_least_2x_cold\": {}",
        twice("ablation")
    )
    .unwrap();
    writeln!(s, "  }},").unwrap();
    writeln!(s, "  \"queries\": [").unwrap();
    for (i, m) in ms.iter().enumerate() {
        let speedup = m.base_cold_ns as f64 / m.cold_ns.max(1) as f64;
        writeln!(s, "    {{").unwrap();
        writeln!(s, "      \"group\": \"{}\",", m.group).unwrap();
        writeln!(s, "      \"name\": \"{}\",", m.name).unwrap();
        writeln!(s, "      \"query\": \"{}\",", m.query.replace('\"', "\\\"")).unwrap();
        writeln!(s, "      \"rows\": {},", m.rows).unwrap();
        writeln!(s, "      \"cold_ns\": {},", m.cold_ns).unwrap();
        writeln!(s, "      \"warm_ns\": {},", m.warm_ns).unwrap();
        writeln!(s, "      \"base_cold_ns\": {},", m.base_cold_ns).unwrap();
        writeln!(s, "      \"speedup_cold\": {speedup:.3},").unwrap();
        writeln!(s, "      \"vm_steps\": {},", m.vm_steps).unwrap();
        writeln!(s, "      \"base_vm_steps\": {},", m.base_vm_steps).unwrap();
        writeln!(s, "      \"dfa_matches\": {},", m.dfa_matches).unwrap();
        writeln!(s, "      \"dfa_fallbacks\": {},", m.dfa_fallbacks).unwrap();
        writeln!(s, "      \"merge_probes\": {},", m.merge_probes).unwrap();
        writeln!(
            s,
            "      \"path_memo_hits_warm\": {},",
            m.path_memo_hits_warm
        )
        .unwrap();
        writeln!(
            s,
            "      \"warm_skips_frontend\": {}",
            m.warm_skips_frontend
        )
        .unwrap();
        writeln!(s, "    }}{}", if i + 1 < ms.len() { "," } else { "" }).unwrap();
    }
    writeln!(s, "  ]").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Minimal extraction of `"key": <int>` totals from the baseline JSON —
/// enough to compare without a JSON parser dependency.
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let scale = bench_scale();
    let doc = generate_xmark(XMarkConfig { scale, seed: 42 });
    let ms = measure(&doc);

    let json = render_json(scale, &ms);
    std::fs::write(OUTPUT_PATH, &json).expect("write BENCH_2.json");

    let total_steps: u64 = ms.iter().map(|m| m.vm_steps).sum();
    let total_base_steps: u64 = ms.iter().map(|m| m.base_vm_steps).sum();
    println!("perf_check: scale={scale} queries={}", ms.len());
    println!("  pike vm_steps: optimised={total_steps} de-optimised={total_base_steps}");
    for group in ["fig4", "ablation"] {
        let n = ms.iter().filter(|m| m.group == group).count();
        let twice = ms
            .iter()
            .filter(|m| m.group == group && m.base_cold_ns >= 2 * m.cold_ns)
            .count();
        println!("  {group}: cold >=2x speedup on {twice}/{n} queries");
    }
    for m in &ms {
        println!(
            "  {:<12} cold {:>9}ns warm {:>9}ns base {:>9}ns steps {:>6} (base {:>6}) dfa {:>5}",
            m.name,
            m.cold_ns,
            m.warm_ns,
            m.base_cold_ns,
            m.vm_steps,
            m.base_vm_steps,
            m.dfa_matches
        );
    }

    if write_baseline {
        std::fs::create_dir_all("crates/bench/baselines").expect("baseline dir");
        std::fs::write(BASELINE_PATH, &json).expect("write baseline");
        println!("baseline written to {BASELINE_PATH}");
        return;
    }

    let mut failures = Vec::new();
    if total_base_steps > 0 && total_steps >= total_base_steps {
        failures.push(format!(
            "pike vm_steps did not drop: optimised {total_steps} >= de-optimised {total_base_steps}"
        ));
    }
    for m in &ms {
        if !m.warm_skips_frontend {
            failures.push(format!(
                "{}: warm repeat did not skip parse/translate/plan",
                m.name
            ));
        }
    }
    if let Ok(baseline) = std::fs::read_to_string(BASELINE_PATH) {
        let base_scale = extract_f64(&baseline, "scale");
        if base_scale == Some(scale) {
            if let Some(committed) = extract_u64(&baseline, "base_vm_steps") {
                if committed > 0 && total_steps >= committed {
                    failures.push(format!(
                        "pike vm_steps did not drop vs committed baseline: {total_steps} >= {committed}"
                    ));
                }
            }
        } else {
            println!(
                "note: baseline scale {base_scale:?} != run scale {scale}; skipping baseline comparison"
            );
        }
    } else {
        println!("note: no committed baseline at {BASELINE_PATH}; skipping baseline comparison");
    }

    if failures.is_empty() {
        println!("perf_check: OK (BENCH_2.json written)");
    } else {
        for f in &failures {
            eprintln!("perf_check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
