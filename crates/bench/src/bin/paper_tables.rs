//! Regenerate the paper's result tables (Appendix C + Figures 3/4).
//!
//! ```text
//! cargo run --release -p ppf-bench --bin paper_tables [small_scale] [reps]
//! ```
//!
//! Produces three markdown tables: XMark small, XMark large (10× small —
//! the paper's 12 MB vs 113 MB ratio), and DBLP, with the per-query
//! cardinality and the median wall-clock per system. `N/A` marks queries
//! a system does not support (the commercial-proxy baseline supports only
//! Q23/Q24/QA, like the paper's commercial RDBMS).

use ppf_bench::{
    build_dblp, build_xmark, dblp_queries, run_query, run_query_counted, time_query, xmark_queries,
    BenchData, System,
};

fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

fn table(title: &str, data: &BenchData, queries: &[(&str, &str)], reps: usize) {
    println!("\n## {title}");
    println!(
        "(document: {} elements, {} total rows in the schema-aware store)\n",
        data.doc.element_count(),
        data.ppf.db().total_rows(),
    );
    print!("| query | # nodes |");
    for s in System::ALL {
        print!(" {} |", s.label());
    }
    println!();
    print!("|---|---|");
    for _ in System::ALL {
        print!("---|");
    }
    println!();
    for (name, q) in queries {
        let nodes = run_query(data, System::Native, q)
            .map(|n| n.to_string())
            .unwrap_or_else(|_| "?".to_string());
        print!("| {name} | {nodes} |");
        for s in System::ALL {
            match time_query(data, s, q, reps) {
                Ok((_, d)) => print!(" {} |", fmt_duration(d)),
                Err(_) => print!(" N/A |"),
            }
        }
        println!();
    }
    counter_table(data, queries);
}

/// Companion table: the operator counters behind the PPF timings, so the
/// tables explain the wall-clock (how many rows were touched, how many
/// path-filter candidates survived) rather than just reporting it.
fn counter_table(data: &BenchData, queries: &[(&str, &str)]) {
    println!("\n### PPF operator counters (schema-aware vs Edge-like)\n");
    println!(
        "| query | system | rows scanned | index probes | path filters | \
         candidates → survivors | VM steps | par tasks/chunks (threads) |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for (name, q) in queries {
        for s in [System::Ppf, System::EdgePpf] {
            match run_query_counted(data, s, q) {
                Ok(c) => println!(
                    "| {name} | {} | {} | {} | {} | {} → {} | {} | {}/{} ({}) |",
                    s.label(),
                    c.rows_scanned,
                    c.index_probes,
                    c.path_filters,
                    c.path_candidates,
                    c.path_survivors,
                    c.vm_steps,
                    c.par_tasks,
                    c.par_chunks,
                    c.pool_threads,
                ),
                Err(_) => println!("| {name} | {} | N/A | | | | | |", s.label()),
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small_scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let large_scale = small_scale * 10.0;

    eprintln!("building XMark small (scale {small_scale})...");
    let small = build_xmark(small_scale, 42);
    table(
        &format!("XMark small (scale {small_scale})"),
        &small,
        &xmark_queries(),
        reps,
    );
    drop(small);

    eprintln!("building XMark large (scale {large_scale})...");
    let large = build_xmark(large_scale, 42);
    table(
        &format!("XMark large (scale {large_scale})"),
        &large,
        &xmark_queries(),
        reps,
    );
    drop(large);

    eprintln!("building DBLP (scale {})...", small_scale);
    let dblp = build_dblp(small_scale, 42);
    table(
        &format!("DBLP (scale {small_scale})"),
        &dblp,
        &dblp_queries(),
        reps,
    );
}
