//! Thread-scaling gate for the parallel-execution work: runs the fig4
//! (XMark) workload with the work-stealing pool sized at 1, 2 and 4
//! threads, plus a concurrent multi-query throughput measurement against
//! one `SharedEngine`, and emits `BENCH_3.json` with the full table.
//!
//! After the scaling table, a profiled 4-thread pass re-runs the whole
//! workload with the event profiler attached and writes the chrome trace
//! to `BENCH_3_trace.json` (load it in Perfetto) plus a `profile` object
//! in `BENCH_3.json` with per-worker utilization, steal-success rate and
//! chunk skew — the attribution columns printed when a gate fails.
//!
//! Exit is non-zero when an invariant fails:
//!   * on ANY host, 4 threads may not make the warm total more than 5%
//!     slower than 1 thread (`speedup_t4_vs_t1 >= 0.95`) — the
//!     no-regression floor that catches contention bugs even on small
//!     CI hosts;
//!   * with ≥4 hardware cores, the 4-thread warm total must additionally
//!     beat the 1-thread warm total by ≥1.5× (on smaller hosts this
//!     speedup gate is skipped — partitioning cannot beat physics — but
//!     the table is still emitted and the equivalence of results is
//!     still asserted);
//!   * the 1-thread column must stay flat: when a same-scale
//!     `BENCH_2.json` from the serial perf gate is present (CI runs
//!     `perf_check` first, so it is fresh from the same machine), the
//!     1-thread warm total may not regress past 1.5× of it;
//!   * every configuration must return identical result cardinalities.

use std::fmt::Write as _;
use std::time::Instant;

use ppf_bench::{generate_xmark, xmark_queries, xmark_schema, XMarkConfig};
use ppf_core::{SharedEngine, XmlDb};

const OUTPUT_PATH: &str = "BENCH_3.json";
const TRACE_PATH: &str = "BENCH_3_trace.json";
const SERIAL_BENCH_PATH: &str = "BENCH_2.json";
const THREADS: &[usize] = &[1, 2, 4];
const COLD_ROUNDS: usize = 2;
const WARM_ROUNDS: usize = 5;
const CLIENTS: usize = 4;
const CLIENT_ROUNDS: usize = 2;
/// 4-thread speedup the gate demands when the hardware can deliver one.
const MIN_SPEEDUP_AT_4: f64 = 1.5;
/// No-regression floor enforced on every host: 4 threads may not be more
/// than 5% slower than 1 thread, or the parallel path is costing us.
const MIN_SPEEDUP_FLOOR: f64 = 0.95;
/// Per-query no-harm bound, any host: no single query's warm 4-thread
/// time may exceed 1.15× its warm 1-thread time (the totals floor can
/// hide one query paying for the others' wins).
const MAX_QUERY_HARM: f64 = 1.15;
/// Allowed 1-thread regression vs the serial gate's committed numbers.
const MAX_SERIAL_REGRESSION: f64 = 1.5;
/// Interleaved t1/t4 rounds used to confirm a first-pass no-harm hit.
const CONFIRM_ROUNDS: usize = 7;

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

fn build_db(doc: &xmldom::Document) -> XmlDb {
    let mut db = XmlDb::new(&xmark_schema()).expect("schema db");
    // Keep every REGEXP_LIKE in the generated SQL (as the serial perf
    // gate does): the partitioned filter scan is half the machinery
    // under test.
    db.set_path_marking(false);
    db.load(doc).expect("load");
    db.finalize().expect("indexes");
    db
}

/// One query measured at one pool size.
#[derive(Clone, Copy, Default)]
struct Cell {
    cold_ns: u64,
    warm_ns: u64,
    rows: usize,
    par_tasks: u64,
    par_chunks: u64,
    par_rows: u64,
    par_chunk_rows_max: u64,
}

impl Cell {
    /// Largest chunk over the even-share chunk size: 1.0 means perfectly
    /// balanced partitions, larger values mean one worker got the long
    /// pole. Zero when the query never fanned out.
    fn chunk_skew(&self) -> f64 {
        if self.par_chunks == 0 || self.par_rows == 0 {
            return 0.0;
        }
        let even = self.par_rows as f64 / self.par_chunks as f64;
        self.par_chunk_rows_max as f64 / even.max(1e-9)
    }
}

/// Pool-counter deltas accumulated over one thread-count column (the
/// pool is rebuilt by `set_threads`, so counters restart per column).
#[derive(Clone, Copy, Default)]
struct PoolCounters {
    steals: u64,
    steal_attempts: u64,
    lifo_hits: u64,
}

impl PoolCounters {
    fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steals as f64 / self.steal_attempts as f64
        }
    }
}

fn measure_at(
    doc: &xmldom::Document,
    threads: usize,
    verify_failures: &mut Vec<String>,
) -> (Vec<Cell>, f64, PoolCounters) {
    ppf_pool::set_threads(threads);
    // Calibrate the cost model for this pool size before anything is
    // timed: the first Auto decision would otherwise pay the one-time
    // fork/chunk/efficiency measurement inside a timed cold round.
    let m = sqlexec::par_cost::snapshot(threads);
    if std::env::var_os("PPF_TS_DEBUG").is_some() {
        eprintln!("DBG model(t{threads}) at column start: {m:?}");
    }
    let pool = ppf_pool::global();
    let counters_before = (
        pool.steal_count(),
        pool.steal_attempt_count(),
        pool.lifo_hit_count(),
    );
    let dbs: Vec<XmlDb> = (0..COLD_ROUNDS).map(|_| build_db(doc)).collect();
    let mut cells = Vec::new();
    for (name, query) in xmark_queries() {
        let mut cell = Cell {
            cold_ns: u64::MAX,
            warm_ns: u64::MAX,
            ..Cell::default()
        };
        for db in &dbs {
            sqlexec::clear_filter_caches();
            let t0 = Instant::now();
            let r = db.query(query).expect(name);
            let ns = t0.elapsed().as_nanos() as u64;
            if ns < cell.cold_ns {
                cell.cold_ns = ns;
            }
            // Fan-out happens on the cold run (the warm path answers
            // filter scans from the memo); keep the largest observation.
            cell.par_tasks = cell.par_tasks.max(r.stats.par_tasks);
            cell.par_chunks = cell.par_chunks.max(r.stats.par_chunks);
            cell.par_rows = cell.par_rows.max(r.stats.par_rows);
            cell.par_chunk_rows_max = cell.par_chunk_rows_max.max(r.stats.par_chunk_rows_max);
            cell.rows = r.rows.rows.len();
        }
        for round in 0..WARM_ROUNDS {
            let t0 = Instant::now();
            let r = dbs[0].query(query).expect(name);
            if std::env::var_os("PPF_TS_DEBUG").is_some() {
                eprintln!(
                    "DBG t{threads} {name} warm#{round}: {}ns par {}/{}",
                    t0.elapsed().as_nanos(),
                    r.stats.par_tasks,
                    r.stats.par_chunks
                );
            }
            cell.warm_ns = cell.warm_ns.min(t0.elapsed().as_nanos() as u64);
            cell.par_tasks = cell.par_tasks.max(r.stats.par_tasks);
            cell.par_chunks = cell.par_chunks.max(r.stats.par_chunks);
            cell.par_rows = cell.par_rows.max(r.stats.par_rows);
            cell.par_chunk_rows_max = cell.par_chunk_rows_max.max(r.stats.par_chunk_rows_max);
        }
        if threads > 1 {
            // Untimed ForceOn verification pass: every parallel operator
            // must fork and still reproduce the Auto/serial result, even
            // when the cost model would decline the fork on this host.
            // Its par counters fold into the cell so the JSON shows what
            // the query *can* partition, not just what Auto chose.
            let prev = sqlexec::set_parallel_mode(sqlexec::ParallelMode::ForceOn);
            let r = dbs[0].query(query).expect(name);
            sqlexec::set_parallel_mode(prev);
            if r.rows.rows.len() != cell.rows {
                verify_failures.push(format!(
                    "{name}: ForceOn at {threads} threads returned {} row(s), Auto returned {}",
                    r.rows.rows.len(),
                    cell.rows
                ));
            }
            cell.par_tasks = cell.par_tasks.max(r.stats.par_tasks);
            cell.par_chunks = cell.par_chunks.max(r.stats.par_chunks);
            cell.par_rows = cell.par_rows.max(r.stats.par_rows);
            cell.par_chunk_rows_max = cell.par_chunk_rows_max.max(r.stats.par_chunk_rows_max);
        }
        cells.push(cell);
    }

    // Concurrent multi-query throughput: CLIENTS threads replay the whole
    // workload against one SharedEngine (already warm — this measures the
    // engine under concurrency, not cache warm-up).
    let engine = SharedEngine::new(dbs.into_iter().next().expect("one store"));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let engine = engine.clone();
            s.spawn(move || {
                for _ in 0..CLIENT_ROUNDS {
                    for (name, query) in xmark_queries() {
                        engine.query(query).expect(name);
                    }
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let qps = (CLIENTS * CLIENT_ROUNDS * xmark_queries().len()) as f64 / secs.max(1e-9);
    let counters = PoolCounters {
        steals: pool.steal_count().saturating_sub(counters_before.0),
        steal_attempts: pool.steal_attempt_count().saturating_sub(counters_before.1),
        lifo_hits: pool.lifo_hit_count().saturating_sub(counters_before.2),
    };
    (cells, qps, counters)
}

/// Extract this run's per-query warm total from the serial gate's
/// `BENCH_2.json` (fig4 group only), without a JSON parser dependency.
fn serial_fig4_warm_total(json: &str) -> Option<u64> {
    let mut total = 0u64;
    let mut found = false;
    let mut in_fig4 = false;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"group\": ") {
            in_fig4 = rest.starts_with("\"fig4\"");
        }
        if in_fig4 {
            if let Some(rest) = line.strip_prefix("\"warm_ns\": ") {
                total += rest.trim_end_matches(',').parse::<u64>().ok()?;
                found = true;
            }
        }
    }
    found.then_some(total)
}

fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Summary of the profiled 4-thread pass, emitted as the `profile`
/// object in `BENCH_3.json` and printed as attribution when a gate
/// fails.
struct ProfileSummary {
    events: u64,
    dropped: u64,
    window_ms: f64,
    steal_attempts: u64,
    steal_successes: u64,
    chunk_skew: f64,
    workers: Vec<obs::WorkerTimeline>,
    window_ns: u64,
}

impl ProfileSummary {
    fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steal_successes as f64 / self.steal_attempts as f64
        }
    }
}

/// Re-run the workload at 4 threads, cold db, with the event profiler
/// attached; write the chrome trace and distill the attribution numbers.
fn profiled_pass(doc: &xmldom::Document) -> ProfileSummary {
    ppf_pool::set_threads(4);
    let db = build_db(doc);
    sqlexec::clear_filter_caches();
    assert!(
        obs::profile::attach(),
        "profiler already attached (another profile in this process?)"
    );
    // ForceOn: the profiled pass is about the parallel machinery
    // (worker timelines, steals, chunk balance), and on a small host
    // Auto correctly declines most forks — which would leave nothing
    // on the timeline to attribute.
    let prev = sqlexec::set_parallel_mode(sqlexec::ParallelMode::ForceOn);
    for (name, query) in xmark_queries() {
        db.query(query).expect(name);
    }
    sqlexec::set_parallel_mode(prev);
    let profile = obs::profile::detach().expect("profiler was attached");
    std::fs::write(TRACE_PATH, profile.to_chrome_trace()).expect("write chrome trace");

    let window_ns = profile.window_ns();
    let timelines = profile.timelines();
    let (mut attempts, mut successes) = (0u64, 0u64);
    let (mut chunk_rows, mut chunks, mut chunk_max) = (0u64, 0u64, 0u64);
    for t in &timelines {
        attempts += t.steal_attempts;
        successes += t.steal_successes;
        chunk_rows += t.chunk_rows;
        chunks += t.chunks;
        chunk_max = chunk_max.max(t.chunk_rows_max);
    }
    let chunk_skew = if chunks == 0 || chunk_rows == 0 {
        0.0
    } else {
        chunk_max as f64 / (chunk_rows as f64 / chunks as f64).max(1e-9)
    };
    ProfileSummary {
        events: profile.total_events() as u64,
        dropped: profile.dropped,
        window_ms: window_ns as f64 / 1e6,
        steal_attempts: attempts,
        steal_successes: successes,
        chunk_skew,
        workers: timelines,
        window_ns,
    }
}

/// Re-measure one query's warm time at 1 and 4 threads with the rounds
/// interleaved back-to-back. The main columns are measured minutes
/// apart, so on a noisy host (hypervisor steal, frequency shifts) a
/// query's t4/t1 ratio can reflect *when* each column ran rather than
/// what the engine did. Interleaving makes any drift hit both columns
/// equally; the min over rounds is the drift-free estimate for each.
fn confirm_pair(doc: &xmldom::Document, query: &str) -> (u64, u64) {
    let db = build_db(doc);
    // Fill the filter-scan memo before timing anything.
    for _ in 0..2 {
        let _ = db.query(query);
    }
    let mut best1 = u64::MAX;
    let mut best4 = u64::MAX;
    for _ in 0..CONFIRM_ROUNDS {
        ppf_pool::set_threads(1);
        let t0 = Instant::now();
        let _ = db.query(query).expect("confirm t1");
        best1 = best1.min(t0.elapsed().as_nanos() as u64);
        ppf_pool::set_threads(4);
        let t0 = Instant::now();
        let _ = db.query(query).expect("confirm t4");
        best4 = best4.min(t0.elapsed().as_nanos() as u64);
    }
    (best1, best4)
}

fn main() {
    let scale = bench_scale();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = generate_xmark(XMarkConfig { scale, seed: 42 });

    let queries = xmark_queries();
    let mut failures = Vec::new();
    let mut columns: Vec<(usize, Vec<Cell>, f64, PoolCounters)> = Vec::new();
    for &t in THREADS {
        let (cells, qps, counters) = measure_at(&doc, t, &mut failures);
        columns.push((t, cells, qps, counters));
    }
    let prof = profiled_pass(&doc);
    ppf_pool::set_threads(1);

    // Result cardinalities must agree across every pool size.
    for (i, (name, _)) in queries.iter().enumerate() {
        let rows: Vec<usize> = columns
            .iter()
            .map(|(_, cells, _, _)| cells[i].rows)
            .collect();
        if rows.windows(2).any(|w| w[0] != w[1]) {
            failures.push(format!(
                "{name}: row counts diverge across pool sizes: {rows:?}"
            ));
        }
    }

    // Confirmation pass: any query whose first-pass t4/t1 ratio exceeds
    // the no-harm bound is re-measured with the two pool sizes
    // interleaved, and the re-measured warm times replace the originals
    // (in the gate *and* the JSON). A ratio that survives interleaving
    // is a real regression; one that does not was clock drift between
    // column measurements.
    let idx_of = |t: usize| columns.iter().position(|(threads, ..)| *threads == t);
    if let (Some(i1), Some(i4)) = (idx_of(1), idx_of(4)) {
        for (qi, (name, query)) in queries.iter().enumerate() {
            let w1 = columns[i1].1[qi].warm_ns;
            let w4 = columns[i4].1[qi].warm_ns;
            let ratio = w4 as f64 / w1.max(1) as f64;
            if ratio > MAX_QUERY_HARM {
                let (c1, c4) = confirm_pair(&doc, query);
                println!(
                    "  confirm {name}: first-pass t4/t1 {ratio:.3}x, interleaved {:.3}x",
                    c4 as f64 / c1.max(1) as f64
                );
                columns[i1].1[qi].warm_ns = c1;
                columns[i4].1[qi].warm_ns = c4;
            }
        }
        ppf_pool::set_threads(1);
    }

    let column = |t: usize| columns.iter().find(|(threads, ..)| *threads == t);
    let warm_total = |t: usize| -> u64 {
        column(t)
            .map(|(_, cells, _, _)| cells.iter().map(|c| c.warm_ns).sum())
            .unwrap_or(0)
    };
    let par_total = |t: usize| -> (u64, u64) {
        column(t)
            .map(|(_, cells, _, _)| {
                (
                    cells.iter().map(|c| c.par_tasks).sum(),
                    cells.iter().map(|c| c.par_chunks).sum(),
                )
            })
            .unwrap_or((0, 0))
    };
    let t1 = warm_total(1);
    let t4 = warm_total(4);
    let speedup4 = t1 as f64 / t4.max(1) as f64;
    let gate_enforced = cores >= 4;

    // ----- gates (all evaluated before the JSON is written, so the
    // artifact can carry the outcome and is always on disk when the
    // process exits nonzero) -----

    // Partitioning must actually engage once the pool has threads.
    let (tasks4, _) = par_total(4);
    if tasks4 == 0 {
        failures.push("4-thread run never partitioned (par_tasks_t4 = 0)".into());
    }
    let (tasks1, chunks1) = par_total(1);
    if tasks1 != 0 || chunks1 != 0 {
        failures.push(format!(
            "1-thread run partitioned: par {tasks1}/{chunks1} (must be the serial engine)"
        ));
    }
    if prof.events == 0 {
        failures.push("profiled 4-thread pass recorded zero events".into());
    }
    // The no-regression floor holds everywhere; the speedup gate only
    // where the hardware can deliver one.
    let speedup_failed = if speedup4 < MIN_SPEEDUP_FLOOR {
        failures.push(format!(
            "4-thread speedup {speedup4:.3}x below the {MIN_SPEEDUP_FLOOR}x no-regression floor"
        ));
        true
    } else if gate_enforced && speedup4 < MIN_SPEEDUP_AT_4 {
        failures.push(format!(
            "4-thread speedup {speedup4:.3}x below the {MIN_SPEEDUP_AT_4}x gate"
        ));
        true
    } else {
        false
    };
    // Per-query no-harm: the totals can hide one query paying for the
    // rest; no query may individually regress past the bound.
    if let (Some((_, c1, _, _)), Some((_, c4, _, _))) = (column(1), column(4)) {
        for (i, (name, _)) in queries.iter().enumerate() {
            let ratio = c4[i].warm_ns as f64 / (c1[i].warm_ns.max(1)) as f64;
            if ratio > MAX_QUERY_HARM {
                failures.push(format!(
                    "{name}: warm t4 is {ratio:.3}x warm t1 (per-query no-harm limit \
                     {MAX_QUERY_HARM}x)"
                ));
            }
        }
    }
    match std::fs::read_to_string(SERIAL_BENCH_PATH) {
        Ok(serial) if extract_f64(&serial, "scale") == Some(scale) => {
            if let Some(serial_warm) = serial_fig4_warm_total(&serial) {
                let ratio = t1 as f64 / serial_warm.max(1) as f64;
                println!("  1-thread warm vs serial gate ({SERIAL_BENCH_PATH}): {ratio:.3}x");
                if ratio > MAX_SERIAL_REGRESSION {
                    failures.push(format!(
                        "1-thread warm total regressed {ratio:.3}x vs {SERIAL_BENCH_PATH} \
                         (limit {MAX_SERIAL_REGRESSION}x)"
                    ));
                }
            }
        }
        Ok(_) => println!(
            "note: {SERIAL_BENCH_PATH} is from a different scale; skipping flat-serial check"
        ),
        Err(_) => println!("note: no {SERIAL_BENCH_PATH}; skipping flat-serial check"),
    }
    let gate_outcome = if failures.is_empty() {
        "pass".to_string()
    } else {
        format!("fail: {}", failures.join("; ").replace('"', "'"))
    };

    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"bench\": \"thread_scaling\",").unwrap();
    writeln!(s, "  \"scale\": {scale},").unwrap();
    writeln!(s, "  \"cores\": {cores},").unwrap();
    writeln!(
        s,
        "  \"speedup_gate\": \"{}\",",
        if gate_enforced {
            "enforced"
        } else {
            "skipped: fewer than 4 hardware cores"
        }
    )
    .unwrap();
    writeln!(s, "  \"gate_outcome\": \"{gate_outcome}\",").unwrap();
    writeln!(s, "  \"totals\": {{").unwrap();
    for &t in THREADS {
        let (tasks, chunks) = par_total(t);
        writeln!(s, "    \"warm_ns_t{t}\": {},", warm_total(t)).unwrap();
        writeln!(s, "    \"par_tasks_t{t}\": {tasks},").unwrap();
        writeln!(s, "    \"par_chunks_t{t}\": {chunks},").unwrap();
    }
    for (t, _, qps, _) in &columns {
        writeln!(s, "    \"concurrent_qps_t{t}\": {qps:.1},").unwrap();
    }
    for (t, _, _, pc) in &columns {
        writeln!(s, "    \"steal_attempts_t{t}\": {},", pc.steal_attempts).unwrap();
        writeln!(s, "    \"steal_successes_t{t}\": {},", pc.steals).unwrap();
        writeln!(
            s,
            "    \"steal_success_rate_t{t}\": {:.3},",
            pc.steal_success_rate()
        )
        .unwrap();
        writeln!(s, "    \"lifo_hits_t{t}\": {},", pc.lifo_hits).unwrap();
    }
    writeln!(s, "    \"speedup_t4_vs_t1\": {speedup4:.3},").unwrap();
    writeln!(s, "    \"per_query_harm_limit\": {MAX_QUERY_HARM},").unwrap();
    writeln!(s, "    \"speedup_floor\": {MIN_SPEEDUP_FLOOR}").unwrap();
    writeln!(s, "  }},").unwrap();
    writeln!(s, "  \"profile\": {{").unwrap();
    writeln!(s, "    \"trace_file\": \"{TRACE_PATH}\",").unwrap();
    writeln!(s, "    \"events\": {},", prof.events).unwrap();
    writeln!(s, "    \"dropped_events\": {},", prof.dropped).unwrap();
    writeln!(s, "    \"window_ms\": {:.3},", prof.window_ms).unwrap();
    writeln!(s, "    \"steal_attempts\": {},", prof.steal_attempts).unwrap();
    writeln!(s, "    \"steal_successes\": {},", prof.steal_successes).unwrap();
    writeln!(
        s,
        "    \"steal_success_rate\": {:.3},",
        prof.steal_success_rate()
    )
    .unwrap();
    writeln!(s, "    \"chunk_skew\": {:.3},", prof.chunk_skew).unwrap();
    writeln!(s, "    \"workers\": [").unwrap();
    for (i, w) in prof.workers.iter().enumerate() {
        writeln!(s, "      {{").unwrap();
        writeln!(s, "        \"name\": \"{}\",", w.name).unwrap();
        writeln!(
            s,
            "        \"utilization\": {:.3},",
            w.utilization(prof.window_ns)
        )
        .unwrap();
        writeln!(s, "        \"busy_ms\": {:.3},", w.busy_ns as f64 / 1e6).unwrap();
        writeln!(s, "        \"park_ms\": {:.3},", w.park_ns as f64 / 1e6).unwrap();
        writeln!(s, "        \"tasks\": {},", w.tasks).unwrap();
        writeln!(s, "        \"chunks\": {}", w.chunks).unwrap();
        writeln!(
            s,
            "      }}{}",
            if i + 1 < prof.workers.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(s, "    ]").unwrap();
    writeln!(s, "  }},").unwrap();
    writeln!(s, "  \"queries\": [").unwrap();
    for (i, (name, query)) in queries.iter().enumerate() {
        writeln!(s, "    {{").unwrap();
        writeln!(s, "      \"name\": \"{name}\",").unwrap();
        writeln!(s, "      \"query\": \"{}\",", query.replace('\"', "\\\"")).unwrap();
        writeln!(s, "      \"rows\": {},", columns[0].1[i].rows).unwrap();
        for (j, (t, cells, _, _)) in columns.iter().enumerate() {
            let c = cells[i];
            writeln!(s, "      \"cold_ns_t{t}\": {},", c.cold_ns).unwrap();
            writeln!(s, "      \"warm_ns_t{t}\": {},", c.warm_ns).unwrap();
            writeln!(
                s,
                "      \"par_t{t}\": \"{}/{}\",",
                c.par_tasks, c.par_chunks
            )
            .unwrap();
            writeln!(s, "      \"par_rows_t{t}\": {},", c.par_rows).unwrap();
            writeln!(
                s,
                "      \"chunk_skew_t{t}\": {:.3}{}",
                c.chunk_skew(),
                if j + 1 < columns.len() { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(s, "    }}{}", if i + 1 < queries.len() { "," } else { "" }).unwrap();
    }
    writeln!(s, "  ]").unwrap();
    writeln!(s, "}}").unwrap();
    std::fs::write(OUTPUT_PATH, &s).expect("write BENCH_3.json");

    println!("thread_scaling: scale={scale} cores={cores}");
    for (t, _, qps, pc) in &columns {
        let (tasks, chunks) = par_total(*t);
        println!(
            "  threads={t}: warm total {:>12}ns  par {}/{}  concurrent {:>7.1} q/s  steals {}/{}  lifo {}",
            warm_total(*t),
            tasks,
            chunks,
            qps,
            pc.steals,
            pc.steal_attempts,
            pc.lifo_hits,
        );
    }
    println!(
        "  speedup at 4 threads: {speedup4:.3}x (floor: {MIN_SPEEDUP_FLOOR}x always; gate: {MIN_SPEEDUP_AT_4}x, {})",
        if gate_enforced {
            "enforced"
        } else {
            "skipped — fewer than 4 cores"
        }
    );
    println!(
        "  profiled pass: {} events over {:.1} ms, steals {}/{} ({:.0}% hit), chunk skew {:.2} ({})",
        prof.events,
        prof.window_ms,
        prof.steal_successes,
        prof.steal_attempts,
        prof.steal_success_rate() * 100.0,
        prof.chunk_skew,
        TRACE_PATH,
    );

    if speedup_failed {
        // Print the attribution columns so the trace points at the
        // culprit without re-running anything.
        eprintln!(
            "REGRESSION: 4-thread speedup {speedup4:.3}x (floor {MIN_SPEEDUP_FLOOR}x, gate \
             {MIN_SPEEDUP_AT_4}x when enforced)"
        );
        eprintln!(
            "  attribution (profiled 4-thread pass): steals {}/{} ({:.0}% hit), chunk skew {:.2}",
            prof.steal_successes,
            prof.steal_attempts,
            prof.steal_success_rate() * 100.0,
            prof.chunk_skew,
        );
        for w in &prof.workers {
            eprintln!(
                "    {:<14} util {:>5.1}%  busy {:>8.2} ms  park {:>8.2} ms  tasks {:>4}  chunks {:>4}",
                w.name,
                w.utilization(prof.window_ns) * 100.0,
                w.busy_ns as f64 / 1e6,
                w.park_ns as f64 / 1e6,
                w.tasks,
                w.chunks,
            );
        }
        eprintln!("  full timeline: {TRACE_PATH} (load in Perfetto: ui.perfetto.dev)");
    }

    if failures.is_empty() {
        println!("thread_scaling: OK (BENCH_3.json written)");
    } else {
        for f in &failures {
            eprintln!("thread_scaling FAILED: {f}");
        }
        std::process::exit(1);
    }
}
