//! Plan-quality gate for statistics-driven costing: runs the fig4
//! (XMark), ablation, and DBLP workloads twice — once with table
//! statistics consumed by the planner (the default) and once falling
//! back to the fixed `sel::*` selectivity constants — and emits
//! `BENCH_4.json` with per-query estimated rows, actual rows, per-step
//! q-error medians, whether the chosen plan changed, and wall times.
//!
//! Exit is non-zero when statistics fail to pay for themselves:
//!   * the suite's median q-error with stats on must be lower than with
//!     the fixed constants;
//!   * at least one query must pick a different plan (join order or
//!     access path) because of statistics;
//!   * no fig4/ablation query may run >10% slower warm than its
//!     committed `BENCH_2.json` baseline (compared only when that
//!     baseline was produced at the same scale).

use std::fmt::Write as _;
use std::time::Instant;

use ppf_bench::{
    dblp_queries, dblp_schema, generate_dblp, generate_xmark, xmark_queries, xmark_schema,
    DblpConfig, XMarkConfig,
};
use ppf_core::XmlDb;
use relstore::Database;
use sqlexec::{Executor, SelectStmt};

const BENCH2_PATH: &str = "BENCH_2.json";
const OUTPUT_PATH: &str = "BENCH_4.json";

/// Same filter-heavy chains as `perf_check`, so the warm-time gate
/// covers the identical query set.
const ABLATION_QUERIES: &[(&str, &str)] = &[
    (
        "deep_chain",
        "/site/open_auctions/open_auction/interval/start",
    ),
    ("person_chain", "/site/people/person/address/city"),
    (
        "pred_chain",
        "/site/people/person[address and (phone or homepage)]",
    ),
    ("recursive", "//parlist/listitem//keyword"),
    ("wildcard", "/site/regions/*/item"),
];

fn bench_scale() -> f64 {
    std::env::var("PPF_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

/// Mirror `perf_check`'s store build (path marking off keeps every
/// REGEXP_LIKE in the SQL, which is also what exercises the learned
/// regex selectivities).
fn build_db(schema: &xmlschema::Schema, doc: &xmldom::Document) -> XmlDb {
    let mut db = XmlDb::new(schema).expect("schema db");
    db.set_path_marking(false);
    db.load(doc).expect("load");
    db.finalize().expect("indexes");
    db
}

const COLD_ROUNDS: usize = 3;
// Warm times gate against BENCH_2's min-of-3; a deeper min keeps
// sub-100µs queries from tripping the 10% bound on scheduler noise.
const WARM_ROUNDS: usize = 20;

struct QMeasure {
    group: &'static str,
    name: &'static str,
    query: &'static str,
    rows: usize,
    est_rows_on: f64,
    est_rows_off: f64,
    qerr_on: f64,
    qerr_off: f64,
    plan_changed: bool,
    cold_on_ns: u64,
    warm_on_ns: u64,
    warm_off_ns: u64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Execute `stmt` with per-step counters and return (median per-step
/// q-error, whole-query estimated rows, actual result rows), with
/// statistics consumption toggled to `stats_on` for planning.
fn qerror_probe(db: &Database, stmt: &SelectStmt, stats_on: bool) -> (f64, f64, usize) {
    let prev = sqlexec::set_stats_enabled(stats_on);
    let exec = Executor::new(db);
    let result = exec.run(stmt).expect("statement runs");
    let mut qs = Vec::new();
    for (plan, ops) in exec.profiled_steps() {
        for (step, op) in plan.steps.iter().zip(&ops) {
            if op.invocations > 0 {
                let act = op.rows_out as f64 / op.invocations as f64;
                qs.push(sqlexec::qerror(step.est_rows, act));
            }
        }
    }
    // Whole-query estimate: per-branch product of step cardinalities.
    let est: f64 = stmt
        .branches
        .iter()
        .map(|b| {
            exec.cached_plan(b)
                .map(|p| p.steps.iter().map(|s| s.est_rows).product::<f64>())
                .unwrap_or(0.0)
        })
        .sum();
    sqlexec::set_stats_enabled(prev);
    (median(qs), est, result.rows.len())
}

/// The physical plan as a comparable signature: the EXPLAIN rendering
/// with the (always-different) estimate columns stripped, so two
/// signatures differ exactly when join order, access paths, or filter
/// placement differ.
fn plan_sig(db: &Database, stmt: &SelectStmt, stats_on: bool) -> String {
    let prev = sqlexec::set_stats_enabled(stats_on);
    let txt = sqlexec::explain_stmt(db, stmt).expect("explain");
    sqlexec::set_stats_enabled(prev);
    txt.lines()
        .map(|l| l.split(" (est ").next().unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Cold (min over separately-built stores) and warm (best of
/// `WARM_ROUNDS` repeats on the first store) wall times via the engine,
/// with statistics toggled for the whole store lifetime — the engine
/// freezes each XPath's plan on first execution.
fn time_side(dbs: &[XmlDb], query: &str, stats_on: bool) -> (u64, u64) {
    let prev = sqlexec::set_stats_enabled(stats_on);
    let mut cold_ns = u64::MAX;
    for db in dbs {
        sqlexec::clear_filter_caches();
        let t0 = Instant::now();
        db.query(query).expect("query");
        cold_ns = cold_ns.min(t0.elapsed().as_nanos() as u64);
    }
    let mut warm_ns = u64::MAX;
    for _ in 0..WARM_ROUNDS {
        let t0 = Instant::now();
        dbs[0].query(query).expect("query");
        warm_ns = warm_ns.min(t0.elapsed().as_nanos() as u64);
    }
    sqlexec::set_stats_enabled(prev);
    (cold_ns, warm_ns)
}

fn measure_suite(
    dbs_on: &[XmlDb],
    dbs_off: &[XmlDb],
    queries: &[(&'static str, &'static str, &'static str)],
) -> Vec<QMeasure> {
    let mut out = Vec::new();
    for &(group, name, query) in queries {
        let (cold_on_ns, warm_on_ns) = time_side(dbs_on, query, true);
        let (_, warm_off_ns) = time_side(dbs_off, query, false);

        let stmt = dbs_on[0].translate(query).expect(name).stmt;
        let (qerr_on, qerr_off, est_on, est_off, rows, plan_changed) = match &stmt {
            Some(stmt) => {
                let db = dbs_on[0].db();
                let (qerr_on, est_on, rows) = qerror_probe(db, stmt, true);
                let (qerr_off, est_off, rows_off) = qerror_probe(db, stmt, false);
                assert_eq!(rows, rows_off, "{name}: stats changed the result");
                let changed = plan_sig(db, stmt, true) != plan_sig(db, stmt, false);
                (qerr_on, qerr_off, est_on, est_off, rows, changed)
            }
            // Statically-empty translation: nothing to estimate.
            None => (1.0, 1.0, 0.0, 0.0, 0, false),
        };

        out.push(QMeasure {
            group,
            name,
            query,
            rows,
            est_rows_on: est_on,
            est_rows_off: est_off,
            qerr_on,
            qerr_off,
            plan_changed,
            cold_on_ns,
            warm_on_ns,
            warm_off_ns,
        });
    }
    out
}

fn render_json(scale: f64, ms: &[QMeasure], median_on: f64, median_off: f64) -> String {
    let changed = ms.iter().filter(|m| m.plan_changed).count();
    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"bench\": \"plan_quality\",").unwrap();
    writeln!(s, "  \"scale\": {scale},").unwrap();
    writeln!(s, "  \"path_marking\": false,").unwrap();
    writeln!(s, "  \"totals\": {{").unwrap();
    writeln!(s, "    \"queries\": {},", ms.len()).unwrap();
    writeln!(s, "    \"median_qerror_stats_on\": {median_on:.3},").unwrap();
    writeln!(s, "    \"median_qerror_stats_off\": {median_off:.3},").unwrap();
    writeln!(s, "    \"plans_changed\": {changed}").unwrap();
    writeln!(s, "  }},").unwrap();
    writeln!(s, "  \"queries\": [").unwrap();
    for (i, m) in ms.iter().enumerate() {
        writeln!(s, "    {{").unwrap();
        writeln!(s, "      \"group\": \"{}\",", m.group).unwrap();
        writeln!(s, "      \"name\": \"{}\",", m.name).unwrap();
        writeln!(s, "      \"query\": \"{}\",", m.query.replace('\"', "\\\"")).unwrap();
        writeln!(s, "      \"rows\": {},", m.rows).unwrap();
        writeln!(s, "      \"est_rows_stats_on\": {:.2},", m.est_rows_on).unwrap();
        writeln!(s, "      \"est_rows_stats_off\": {:.2},", m.est_rows_off).unwrap();
        writeln!(s, "      \"qerror_median_stats_on\": {:.3},", m.qerr_on).unwrap();
        writeln!(s, "      \"qerror_median_stats_off\": {:.3},", m.qerr_off).unwrap();
        writeln!(s, "      \"plan_changed\": {},", m.plan_changed).unwrap();
        writeln!(s, "      \"cold_ns\": {},", m.cold_on_ns).unwrap();
        writeln!(s, "      \"warm_ns\": {},", m.warm_on_ns).unwrap();
        writeln!(s, "      \"warm_stats_off_ns\": {}", m.warm_off_ns).unwrap();
        writeln!(s, "    }}{}", if i + 1 < ms.len() { "," } else { "" }).unwrap();
    }
    writeln!(s, "  ]").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Minimal `"key": <number>` extraction, as in `perf_check` — no JSON
/// parser dependency.
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The committed BENCH_2 warm time for a query, by name.
fn baseline_warm_ns(bench2: &str, name: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{name}\",");
    let at = bench2.find(&needle)?;
    extract_u64(&bench2[at..], "warm_ns")
}

fn main() {
    let scale = bench_scale();
    let xmark_doc = generate_xmark(XMarkConfig { scale, seed: 42 });
    let dblp_doc = generate_dblp(DblpConfig {
        scale: 0.05,
        seed: 7,
    });

    let mut xmark_qs: Vec<(&'static str, &'static str, &'static str)> = xmark_queries()
        .into_iter()
        .map(|(n, q)| ("fig4", n, q))
        .collect();
    xmark_qs.extend(ABLATION_QUERIES.iter().map(|&(n, q)| ("ablation", n, q)));
    let dblp_qs: Vec<(&'static str, &'static str, &'static str)> = dblp_queries()
        .into_iter()
        .map(|(n, q)| ("dblp", n, q))
        .collect();

    let xmark_schema = xmark_schema();
    let xmark_on: Vec<XmlDb> = (0..COLD_ROUNDS)
        .map(|_| build_db(&xmark_schema, &xmark_doc))
        .collect();
    let xmark_off: Vec<XmlDb> = (0..COLD_ROUNDS)
        .map(|_| build_db(&xmark_schema, &xmark_doc))
        .collect();
    let dblp_schema = dblp_schema();
    let dblp_on: Vec<XmlDb> = (0..COLD_ROUNDS)
        .map(|_| build_db(&dblp_schema, &dblp_doc))
        .collect();
    let dblp_off: Vec<XmlDb> = (0..COLD_ROUNDS)
        .map(|_| build_db(&dblp_schema, &dblp_doc))
        .collect();

    let mut ms = measure_suite(&xmark_on, &xmark_off, &xmark_qs);
    ms.extend(measure_suite(&dblp_on, &dblp_off, &dblp_qs));

    let median_on = median(ms.iter().map(|m| m.qerr_on).collect());
    let median_off = median(ms.iter().map(|m| m.qerr_off).collect());

    let mut failures = Vec::new();
    if median_on >= median_off {
        failures.push(format!(
            "median q-error did not improve with stats: on {median_on:.3} >= off {median_off:.3}"
        ));
    }
    if !ms.iter().any(|m| m.plan_changed) {
        failures.push("no query changed plan because of statistics".to_string());
    }
    match std::fs::read_to_string(BENCH2_PATH) {
        Ok(bench2) if extract_f64(&bench2, "scale") == Some(scale) => {
            for m in ms.iter_mut().filter(|m| m.group != "dblp") {
                let Some(base) = baseline_warm_ns(&bench2, m.name) else {
                    println!("note: no BENCH_2 warm baseline for {}", m.name);
                    continue;
                };
                let bound = 1.10 * base as f64;
                // Sub-millisecond warm times swing >10% with scheduler
                // state alone; before failing, re-measure to separate a
                // real regression from a noisy first sample.
                for _ in 0..3 {
                    if (m.warm_on_ns as f64) <= bound {
                        break;
                    }
                    let (_, again) = time_side(&xmark_on, m.query, true);
                    m.warm_on_ns = m.warm_on_ns.min(again);
                }
                if m.warm_on_ns as f64 > bound {
                    failures.push(format!(
                        "{}: warm {}ns is >10% over the BENCH_2 baseline {}ns",
                        m.name, m.warm_on_ns, base
                    ));
                }
            }
        }
        Ok(_) => println!("note: BENCH_2.json scale differs; skipping warm-time comparison"),
        Err(_) => println!("note: no {BENCH2_PATH}; skipping warm-time comparison"),
    }

    let json = render_json(scale, &ms, median_on, median_off);
    std::fs::write(OUTPUT_PATH, &json).expect("write BENCH_4.json");

    println!("plan_quality: scale={scale} queries={}", ms.len());
    println!("  median q-error: stats on {median_on:.3} / stats off {median_off:.3}");
    println!(
        "  plans changed by stats: {}/{}",
        ms.iter().filter(|m| m.plan_changed).count(),
        ms.len()
    );
    for m in &ms {
        println!(
            "  {:<12} q_on {:>7.2} q_off {:>7.2} est {:>9.1} act {:>6} {} warm {:>9}ns",
            m.name,
            m.qerr_on,
            m.qerr_off,
            m.est_rows_on,
            m.rows,
            if m.plan_changed { "PLAN*" } else { "     " },
            m.warm_on_ns,
        );
    }

    if failures.is_empty() {
        println!("plan_quality: OK (BENCH_4.json written)");
    } else {
        for f in &failures {
            eprintln!("plan_quality FAILED: {f}");
        }
        std::process::exit(1);
    }
}
