//! CI profiling smoke gate: a profiled XMark run must produce worker and
//! chunk events and a parseable chrome trace, and the profiler's
//! *detached* hot path must stay under 2% of a warm query — the
//! always-on cost every query pays for having the hooks compiled in.
//!
//! Exit is non-zero on any failure. No artifacts are required; the
//! trace is parsed in-process.

use std::hint::black_box;
use std::time::Instant;

use obs::profile::{self, EventKind};
use ppf_bench::{generate_xmark, xmark_queries, xmark_schema, XMarkConfig};
use ppf_core::XmlDb;

/// Detached-overhead ceiling, as a fraction of a warm query.
const MAX_OVERHEAD: f64 = 0.02;
/// Calls used to time the detached `record()` fast path.
const CALIBRATION_CALLS: u64 = 5_000_000;

fn main() {
    let mut failures: Vec<String> = Vec::new();

    ppf_pool::set_threads(4);
    let doc = generate_xmark(XMarkConfig {
        scale: 0.02,
        seed: 42,
    });
    let mut db = XmlDb::new(&xmark_schema()).expect("schema db");
    db.set_path_marking(false); // keep the partitioned filter scans live
    db.load(&doc).expect("load");
    db.finalize().expect("indexes");
    // Force the parallel pipeline so chunk events appear even at smoke
    // scale, where the row-count heuristic would stay serial.
    sqlexec::set_parallel_mode(sqlexec::ParallelMode::ForceOn);
    sqlexec::clear_filter_caches();

    // Warm every query once, then time the warm workload — the
    // denominator of the overhead contract.
    for (name, query) in xmark_queries() {
        db.query(query).expect(name);
    }
    let t0 = Instant::now();
    for (name, query) in xmark_queries() {
        db.query(query).expect(name);
    }
    let warm_workload_ns = t0.elapsed().as_nanos() as u64;
    let queries_run = xmark_queries().len() as u64;

    // Profiled pass: same warm workload with the profiler attached.
    assert!(profile::attach(), "profiler already attached");
    for (name, query) in xmark_queries() {
        db.query(query).expect(name);
    }
    let prof = profile::detach().expect("attached above");

    let timelines = prof.timelines();
    let worker_events: u64 = timelines
        .iter()
        .filter(|t| t.name.starts_with("ppf-pool-"))
        .map(|t| t.events)
        .sum();
    let chunk_events: u64 = timelines.iter().map(|t| t.chunks).sum();
    println!(
        "profile_smoke: {} events ({} on pool workers), {} chunk spans, {} lanes",
        prof.total_events(),
        worker_events,
        chunk_events,
        timelines.len(),
    );
    if prof.total_events() == 0 {
        failures.push("profiled run recorded zero events".into());
    }
    if worker_events == 0 {
        failures.push("no events on any ppf-pool-* worker lane".into());
    }
    if chunk_events == 0 {
        failures.push("no chunk-execution spans recorded".into());
    }

    // The chrome trace must be valid JSON with the trace_event shape.
    let trace = prof.to_chrome_trace();
    match obs::json::parse(&trace) {
        Ok(doc) => {
            let n = doc
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .map_or(0, |a| a.len());
            println!("profile_smoke: chrome trace parses ({n} trace events)");
            if n == 0 {
                failures.push("chrome trace has no traceEvents".into());
            }
        }
        Err(e) => failures.push(format!("chrome trace is not parseable JSON: {e}")),
    }

    // Detached overhead: time the fast path the hooks always pay, then
    // scale by how many record() calls one profiled query makes.
    assert!(!profile::is_attached());
    let t0 = Instant::now();
    for i in 0..CALIBRATION_CALLS {
        profile::record(black_box(EventKind::ChunkStart), black_box(i));
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / CALIBRATION_CALLS as f64;
    let events_per_query = prof.total_events() as f64 / queries_run as f64;
    let warm_query_ns = warm_workload_ns as f64 / queries_run as f64;
    let overhead = events_per_query * per_call_ns / warm_query_ns.max(1.0);
    println!(
        "profile_smoke: detached record() {per_call_ns:.2} ns/call, \
         {events_per_query:.0} events/query, warm query {:.0} ns \
         => overhead {:.3}% (gate {:.0}%)",
        warm_query_ns,
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
    );
    if overhead >= MAX_OVERHEAD {
        failures.push(format!(
            "detached profiler overhead {:.3}% breaches the {:.0}% gate",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }

    if failures.is_empty() {
        println!("profile_smoke: OK");
    } else {
        for f in &failures {
            eprintln!("profile_smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}
