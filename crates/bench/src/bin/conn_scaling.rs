//! Connection-scaling gate for the event-driven server core: holds 100,
//! 1 000 and 10 000 idle connections against the sync
//! (thread-per-connection) and async (event-loop) cores of a real
//! `ppfd` process, recording the server's resident thread count and
//! probe-query p99 latency at each tier, and emits `BENCH_5.json` with
//! the full table.
//!
//! The server runs as a child process (`ppfd` from the same target
//! directory), for two reasons. First, fd budget: this environment caps
//! `RLIMIT_NOFILE` at a hard 20 000 even for root, and 10 000
//! in-process connections would need two fds each; split across two
//! processes each side fits. Second, measurement hygiene: reading
//! `/proc/<ppfd>/status` counts only the server's threads — the bench's
//! own client machinery cannot pollute the number being gated.
//!
//! The sync core's tier ladder is capped (default 1 000,
//! `PPF_SYNC_TIER_CAP` overrides): past a few thousand connections its
//! per-connection threads — each waking on a 50 ms read tick — starve
//! the accept loop of CPU and the herd stops growing at all. That
//! cliff is the scaling wall this bench documents; the async core runs
//! the full ladder.
//!
//! Exit is non-zero when an invariant fails:
//!   * the async core must hold the largest tier with no more than
//!     `event_threads + 8` resident threads over its idle baseline —
//!     connections are rows in the loops' maps, not stacks;
//!   * the sync core must demonstrate the contrast: at least half the
//!     largest tier's connections show up as threads (it is, by design,
//!     thread-per-connection);
//!   * at the 100-connection tier the async core's probe p99 may not
//!     regress more than 10% (plus a 500µs absolute slack for scheduler
//!     jitter) against the sync core's — measured as the best of
//!     several rounds so one noisy round cannot fail the gate.
//!
//! `PPF_CONN_TIERS=100,1000` overrides the tier list for quick local
//! runs; the committed artifact must come from the full list.

use std::fmt::Write as _;
use std::io::BufRead;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppf_server::{Client, ServerConfig, Verb};

const OUTPUT_PATH: &str = "BENCH_5.json";
const DEFAULT_TIERS: &[usize] = &[100, 1_000, 10_000];
/// Probe requests per latency round.
const PROBE_REQUESTS: usize = 200;
/// Latency rounds at the gated tier; the best p99 of these is compared.
const GATE_ROUNDS: usize = 3;
/// Allowed async/sync p99 ratio at the smallest tier...
const MAX_P99_RATIO: f64 = 1.10;
/// ...plus this absolute slack, so microsecond-scale jitter on an idle
/// server cannot fail the gate on ratio alone.
const P99_SLACK_US: f64 = 500.0;
/// Resident-thread allowance for the async core over its baseline:
/// event loops + the metrics thread + transient query workers.
const ASYNC_THREAD_SLACK: usize = 8;
/// Connections opened per batch before waiting for the server to adopt
/// them — paces the client against accept/spawn throughput.
const CONNECT_BATCH: usize = 256;
/// The probe query: one row against the generated XMark document.
const PROBE_QUERY: &str = "/site";
/// Largest tier the sync core is asked to hold (see module docs).
const SYNC_TIER_CAP: usize = 1_000;

fn tiers() -> Vec<usize> {
    match std::env::var("PPF_CONN_TIERS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => DEFAULT_TIERS.to_vec(),
    }
}

/// Raise this process's soft `RLIMIT_NOFILE` to its hard limit. Plain
/// libc symbols, no crate dependency — the same pattern `ppfd` uses for
/// `signal`. Returns the resulting soft limit.
#[cfg(unix)]
fn raise_nofile() -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut cur = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut cur) != 0 {
            return 0;
        }
        if cur.cur < cur.max {
            let lim = RLimit {
                cur: cur.max,
                max: cur.max,
            };
            if setrlimit(RLIMIT_NOFILE, &lim) == 0 {
                return cur.max;
            }
        }
        cur.cur
    }
}

#[cfg(not(unix))]
fn raise_nofile() -> u64 {
    u64::MAX
}

/// Resident thread count of the server process.
#[cfg(target_os = "linux")]
fn server_threads(pid: u32) -> usize {
    std::fs::read_to_string(format!("/proc/{pid}/status"))
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

#[cfg(not(target_os = "linux"))]
fn server_threads(_pid: u32) -> usize {
    0
}

struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Launch `ppfd` (from this binary's own target directory) on an
/// ephemeral port and wait for its readiness line.
fn spawn_server(sync: bool) -> Result<Server, String> {
    let ppfd = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("ppfd")))
        .filter(|p| p.exists())
        .ok_or("ppfd not found next to conn_scaling — build the workspace bins first")?;
    let mut cmd = Command::new(ppfd);
    cmd.args([
        "--xmark",
        "0.001",
        "--listen",
        "127.0.0.1:0",
        // The herd must not be reaped mid-bench.
        "--idle-ms",
        "3600000",
    ]);
    if sync {
        cmd.arg("--sync-conns");
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().map_err(|e| format!("spawn ppfd: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { return };
            if let Some(addr) = line.strip_prefix("ppfd listening on ") {
                let _ = tx.send(addr.trim().to_string());
                // Keep draining so the child never blocks on a full pipe.
            }
        }
    });
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(addr) => Ok(Server { child, addr }),
        Err(_) => {
            let _ = child.kill();
            Err("ppfd did not announce readiness within 60s".into())
        }
    }
}

/// Poll the server's health view until it counts `want` live conns.
fn wait_active(probe: &mut Client, want: usize, deadline: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        let body = probe
            .request("adopt-wait", Verb::Health, &[], "")
            .map_err(|e| format!("health probe failed: {e}"))?
            .result
            .map_err(|(k, m)| format!("health rejected ({}): {m}", k.as_str()))?;
        let live: usize = body
            .lines()
            .find_map(|l| l.strip_prefix("active_conns: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if live >= want {
            return Ok(());
        }
        if t0.elapsed() > deadline {
            return Err(format!(
                "server adopted only {live}/{want} connections in {deadline:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Grow the idle herd to `target` connections, pacing against adoption.
fn grow_herd(
    herd: &mut Vec<TcpStream>,
    addr: &str,
    target: usize,
    probe: &mut Client,
) -> Result<(), String> {
    while herd.len() < target {
        let batch = CONNECT_BATCH.min(target - herd.len());
        for _ in 0..batch {
            let s = TcpStream::connect(addr)
                .map_err(|e| format!("idle conn {} failed: {e}", herd.len()))?;
            herd.push(s);
        }
        // +1: the probe client is a connection too.
        wait_active(probe, herd.len() + 1, Duration::from_secs(120))?;
    }
    Ok(())
}

/// One latency round: PROBE_REQUESTS sequential queries, p50/p99 in µs.
fn probe_latency(probe: &mut Client) -> Result<(f64, f64), String> {
    let mut lat_us: Vec<f64> = Vec::with_capacity(PROBE_REQUESTS);
    for n in 0..PROBE_REQUESTS {
        let t0 = Instant::now();
        let resp = probe
            .request(&format!("p{n}"), Verb::Query, &[], PROBE_QUERY)
            .map_err(|e| format!("probe query failed: {e}"))?;
        resp.result
            .map_err(|(k, m)| format!("probe rejected ({}): {m}", k.as_str()))?;
        lat_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |p: f64| lat_us[((lat_us.len() as f64 * p) as usize).min(lat_us.len() - 1)];
    Ok((pick(0.50), pick(0.99)))
}

/// What one core looked like at one tier.
struct TierRow {
    conns: usize,
    threads: usize,
    p50_us: f64,
    p99_us: f64,
}

struct CoreRun {
    core: &'static str,
    baseline_threads: usize,
    rows: Vec<TierRow>,
}

/// Run one core through every tier. The herd only grows between tiers;
/// connections are dropped (and the server drained) at the end.
fn run_core(sync: bool, tiers: &[usize]) -> Result<CoreRun, String> {
    let core = if sync { "sync" } else { "async" };
    let server = spawn_server(sync)?;
    let pid = server.child.id();
    let io = Duration::from_secs(30);
    let mut probe =
        Client::connect(&server.addr, io).map_err(|e| format!("probe connect failed: {e}"))?;
    // Warm the query path (plan caches, first worker spawn) before any
    // baseline or latency observation.
    probe
        .request("warm", Verb::Query, &[], PROBE_QUERY)
        .map_err(|e| format!("warm-up failed: {e}"))?
        .result
        .map_err(|(k, m)| format!("warm-up rejected ({}): {m}", k.as_str()))?;
    std::thread::sleep(Duration::from_millis(200));
    let baseline_threads = server_threads(pid);

    let mut herd: Vec<TcpStream> = Vec::new();
    let mut rows = Vec::new();
    for &tier in tiers {
        let t0 = Instant::now();
        grow_herd(&mut herd, &server.addr, tier, &mut probe)?;
        eprintln!(
            "  {core}: {tier} conns held after {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        // Gate tier gets the best of several rounds; larger tiers one
        // round each (recorded, not gated).
        let rounds = if tier == tiers[0] { GATE_ROUNDS } else { 1 };
        let (mut p50, mut p99) = (f64::MAX, f64::MAX);
        for _ in 0..rounds {
            let (a, b) = probe_latency(&mut probe)?;
            p50 = p50.min(a);
            p99 = p99.min(b);
        }
        // Query workers are per-request and short-lived; let the last
        // one retire before counting resident threads.
        std::thread::sleep(Duration::from_millis(300));
        rows.push(TierRow {
            conns: tier,
            threads: server_threads(pid),
            p50_us: p50,
            p99_us: p99,
        });
    }

    drop(herd);
    // Graceful drain; the Drop impl kills the child if this stalls.
    let _ = probe.request("drain", Verb::Shutdown, &[], "");
    drop(probe);
    let mut server = server;
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(60) {
        match server.child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) => std::thread::sleep(Duration::from_millis(100)),
            Err(_) => break,
        }
    }
    Ok(CoreRun {
        core,
        baseline_threads,
        rows,
    })
}

fn emit_core(s: &mut String, run: &CoreRun, last: bool) {
    writeln!(s, "  \"{}\": {{", run.core).unwrap();
    writeln!(s, "    \"baseline_threads\": {},", run.baseline_threads).unwrap();
    writeln!(s, "    \"tiers\": [").unwrap();
    for (i, r) in run.rows.iter().enumerate() {
        writeln!(
            s,
            "      {{ \"conns\": {}, \"threads\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1} }}{}",
            r.conns,
            r.threads,
            r.p50_us,
            r.p99_us,
            if i + 1 < run.rows.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(s, "    ]").unwrap();
    writeln!(s, "  }}{}", if last { "" } else { "," }).unwrap();
}

fn main() {
    let tiers = tiers();
    if tiers.is_empty() {
        eprintln!("conn_scaling: PPF_CONN_TIERS parsed to nothing");
        std::process::exit(1);
    }
    let max_tier = *tiers.iter().max().unwrap();
    // One client fd per connection, plus stdio/probe headroom. The
    // server pays its own fds in its own process.
    let nofile = raise_nofile();
    if nofile < (max_tier as u64) + 64 {
        eprintln!("conn_scaling: RLIMIT_NOFILE {nofile} too low for {max_tier} client conns");
        std::process::exit(1);
    }
    if !cfg!(target_os = "linux") {
        // Thread accounting reads /proc; without it the gates are
        // meaningless. Emit nothing rather than a vacuous pass.
        eprintln!("conn_scaling: skipped (needs /proc)");
        return;
    }

    let sync_cap: usize = std::env::var("PPF_SYNC_TIER_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SYNC_TIER_CAP);
    let sync_tiers: Vec<usize> = tiers.iter().copied().filter(|&t| t <= sync_cap).collect();
    if sync_tiers.is_empty() {
        eprintln!("conn_scaling: sync tier cap {sync_cap} leaves no sync tiers");
        std::process::exit(1);
    }

    eprintln!("conn_scaling: tiers {tiers:?} (sync capped at {sync_cap}), nofile {nofile}");
    let sync = match run_core(true, &sync_tiers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conn_scaling FAILED (sync core): {e}");
            std::process::exit(1);
        }
    };
    let async_ = match run_core(false, &tiers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conn_scaling FAILED (async core): {e}");
            std::process::exit(1);
        }
    };

    let event_threads = ServerConfig::default().event_threads;
    let mut failures: Vec<String> = Vec::new();

    // Gate 1: the async core holds the largest tier in O(event_threads)
    // resident threads.
    let async_last = async_.rows.last().unwrap();
    let async_delta = async_last.threads.saturating_sub(async_.baseline_threads);
    if async_delta > event_threads + ASYNC_THREAD_SLACK {
        failures.push(format!(
            "async core grew {async_delta} threads holding {} conns \
             (allowed: event_threads {event_threads} + {ASYNC_THREAD_SLACK})",
            async_last.conns
        ));
    }

    // Gate 2: the sync core really is thread-per-connection — the
    // contrast the table exists to show.
    let sync_last = sync.rows.last().unwrap();
    let sync_delta = sync_last.threads.saturating_sub(sync.baseline_threads);
    if sync_delta < sync_last.conns / 2 {
        failures.push(format!(
            "sync core grew only {sync_delta} threads for {} conns — \
             not thread-per-connection? (bench assumption broken)",
            sync_last.conns
        ));
    }

    // Gate 3: no p99 regression at the smallest tier.
    let (sync_p99, async_p99) = (sync.rows[0].p99_us, async_.rows[0].p99_us);
    let allowed = sync_p99 * MAX_P99_RATIO + P99_SLACK_US;
    if async_p99 > allowed {
        failures.push(format!(
            "async p99 {async_p99:.1}µs at {} conns exceeds sync {sync_p99:.1}µs \
             by more than {MAX_P99_RATIO}x + {P99_SLACK_US}µs",
            sync.rows[0].conns
        ));
    }

    let gate_outcome = if failures.is_empty() {
        "pass".to_string()
    } else {
        format!("fail: {}", failures.join("; ").replace('"', "'"))
    };

    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"bench\": \"conn_scaling\",").unwrap();
    writeln!(
        s,
        "  \"sync_tier_cap\": {sync_cap}, \
         \"sync_tier_cap_reason\": \"per-conn poll-tick threads starve the accept loop\","
    )
    .unwrap();
    writeln!(
        s,
        "  \"cores_hw\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    )
    .unwrap();
    writeln!(s, "  \"event_threads\": {event_threads},").unwrap();
    writeln!(s, "  \"gate_outcome\": \"{gate_outcome}\",").unwrap();
    writeln!(s, "  \"gates\": {{").unwrap();
    writeln!(
        s,
        "    \"async_thread_ceiling\": {},",
        event_threads + ASYNC_THREAD_SLACK
    )
    .unwrap();
    writeln!(s, "    \"async_thread_delta\": {async_delta},").unwrap();
    writeln!(s, "    \"sync_thread_delta\": {sync_delta},").unwrap();
    writeln!(s, "    \"p99_ratio_limit\": {MAX_P99_RATIO},").unwrap();
    writeln!(s, "    \"p99_slack_us\": {P99_SLACK_US},").unwrap();
    writeln!(
        s,
        "    \"p99_at_{}_sync_us\": {sync_p99:.1},",
        sync.rows[0].conns
    )
    .unwrap();
    writeln!(
        s,
        "    \"p99_at_{}_async_us\": {async_p99:.1}",
        async_.rows[0].conns
    )
    .unwrap();
    writeln!(s, "  }},").unwrap();
    emit_core(&mut s, &sync, false);
    emit_core(&mut s, &async_, true);
    writeln!(s, "}}").unwrap();
    std::fs::write(OUTPUT_PATH, &s).expect("write BENCH_5.json");

    println!("conn_scaling:");
    println!(
        "  {:>7} {:>14} {:>14} {:>12} {:>12}",
        "conns", "sync threads", "async threads", "sync p99", "async p99"
    );
    for b in &async_.rows {
        match sync.rows.iter().find(|a| a.conns == b.conns) {
            Some(a) => println!(
                "  {:>7} {:>14} {:>14} {:>9.1}µs {:>9.1}µs",
                a.conns, a.threads, b.threads, a.p99_us, b.p99_us
            ),
            None => println!(
                "  {:>7} {:>14} {:>14} {:>12} {:>9.1}µs",
                b.conns, "(capped)", b.threads, "-", b.p99_us
            ),
        }
    }
    println!(
        "  async thread delta at {} conns: {async_delta} (ceiling {}); sync: {sync_delta}",
        async_last.conns,
        event_threads + ASYNC_THREAD_SLACK
    );

    if failures.is_empty() {
        println!("conn_scaling: OK ({OUTPUT_PATH} written)");
    } else {
        for f in &failures {
            eprintln!("conn_scaling FAILED: {f}");
        }
        std::process::exit(1);
    }
}
