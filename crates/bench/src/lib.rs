//! `ppf-bench` — the experiment harness for the paper's evaluation (§5).
//!
//! Builds the five competing systems over the same generated documents:
//!
//! | harness name | paper name                         | implementation |
//! |--------------|------------------------------------|----------------|
//! | `Ppf`        | PPF (schema-aware)                 | `ppf_core::XmlDb` |
//! | `EdgePpf`    | Edge-like PPF (schema-oblivious)   | `ppf_core::EdgeDb` |
//! | `Native`     | MonetDB/XQuery (main-memory proxy) | `xpath::evaluate` |
//! | `Accel`      | XPath Accelerator                  | `accel::AccelDb` |
//! | `Naive`      | commercial RDBMS built-in XPath    | `accel::translate_naive` |
//!
//! The criterion benches and the `paper_tables` binary drive this module;
//! EXPERIMENTS.md records the outputs next to the paper's Appendix C.

use std::time::{Duration, Instant};

use accel::AccelDb;
use ppf_core::{EdgeDb, XmlDb};
use sqlexec::Executor;
use xmldom::Document;
use xmlschema::Schema;

pub use xmark::{
    dblp_queries, dblp_schema, generate_dblp, generate_xmark, xmark_queries, xmark_schema,
    DblpConfig, XMarkConfig,
};

/// All five systems loaded with the same document.
pub struct BenchData {
    pub doc: Document,
    pub schema: Schema,
    pub ppf: XmlDb,
    pub edge: EdgeDb,
    pub accel: AccelDb,
}

/// The competing systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Ppf,
    EdgePpf,
    Native,
    Accel,
    Naive,
}

impl System {
    pub const ALL: [System; 5] = [
        System::Ppf,
        System::EdgePpf,
        System::Native,
        System::Accel,
        System::Naive,
    ];

    /// Label used in the output tables (mirroring Appendix C's columns).
    pub fn label(self) -> &'static str {
        match self {
            System::Ppf => "PPF",
            System::EdgePpf => "Edge-like PPF",
            System::Native => "Native (MonetDB proxy)",
            System::Accel => "XPath Accel.",
            System::Naive => "Naive FK (commercial proxy)",
        }
    }
}

fn build(doc: Document, schema: Schema) -> BenchData {
    let mut ppf = XmlDb::new(&schema).expect("schema db");
    ppf.load(&doc).expect("ppf load");
    ppf.finalize().expect("ppf indexes");

    let mut edge = EdgeDb::new();
    edge.load(&doc).expect("edge load");
    edge.finalize().expect("edge indexes");

    let mut accel = AccelDb::new();
    accel.load(&doc).expect("accel load");
    accel.finalize().expect("accel indexes");

    BenchData {
        doc,
        schema,
        ppf,
        edge,
        accel,
    }
}

/// Build all systems over an XMark-like document.
pub fn build_xmark(scale: f64, seed: u64) -> BenchData {
    build(generate_xmark(XMarkConfig { scale, seed }), xmark_schema())
}

/// Build all systems over a DBLP-like document.
pub fn build_dblp(scale: f64, seed: u64) -> BenchData {
    build(generate_dblp(DblpConfig { scale, seed }), dblp_schema())
}

/// Run a query on a system; returns the result cardinality, or `Err` when
/// the system does not support the query (expected for `Naive` on most).
pub fn run_query(data: &BenchData, system: System, query: &str) -> Result<usize, String> {
    match system {
        System::Ppf => data
            .ppf
            .query(query)
            .map(|r| r.rows.rows.len())
            .map_err(|e| e.to_string()),
        System::EdgePpf => data
            .edge
            .query(query)
            .map(|r| r.rows.rows.len())
            .map_err(|e| e.to_string()),
        System::Native => {
            let expr = xpath::parse_xpath(query).map_err(|e| e.to_string())?;
            xpath::evaluate(&data.doc, &expr)
                .map(|items| items.len())
                .map_err(|e| e.to_string())
        }
        System::Accel => data
            .accel
            .query(query)
            .map(|r| r.rows.rows.len())
            .map_err(|e| e.to_string()),
        System::Naive => {
            let expr = xpath::parse_xpath(query).map_err(|e| e.to_string())?;
            let stmt = accel::translate_naive(&data.schema, &expr).map_err(|e| e.to_string())?;
            let exec = Executor::new(data.ppf.db());
            exec.run(&stmt)
                .map(|rs| rs.rows.len())
                .map_err(|e| e.to_string())
        }
    }
}

/// Operator counters attached to one measured query, so the harness can
/// report *why* a system is fast or slow (fewer rows scanned, fewer index
/// probes, fewer surviving path-filter candidates), not just wall-clock.
/// Counters a system does not expose stay zero (`Native` has none; the
/// `Accel`/`Naive` proxies have executor counters but no PPF pipeline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Result cardinality.
    pub rows: usize,
    pub rows_scanned: u64,
    pub index_probes: u64,
    pub predicate_evals: u64,
    /// `REGEXP_LIKE` path filters in the generated statement.
    pub path_filters: u64,
    /// `Paths` rows fetched as path-filter candidates.
    pub path_candidates: u64,
    /// `Paths` rows surviving their step's filters.
    pub path_survivors: u64,
    /// Pike-VM matches run by the path filters.
    pub vm_match_calls: u64,
    pub vm_steps: u64,
    /// Parallel fan-outs (partitioned scans and branch pipelines).
    pub par_tasks: u64,
    /// Chunks executed across those fan-outs.
    pub par_chunks: u64,
    /// Work-stealing pool size when the query ran.
    pub pool_threads: u64,
}

impl QueryCounters {
    fn from_ppf(r: &ppf_core::QueryResult) -> QueryCounters {
        QueryCounters {
            rows: r.rows.rows.len(),
            rows_scanned: r.stats.rows_scanned,
            index_probes: r.stats.index_probes,
            predicate_evals: r.stats.predicate_evals,
            path_filters: r.engine.path_filters,
            path_candidates: r.engine.path_candidates,
            path_survivors: r.engine.path_survivors,
            vm_match_calls: r.engine.vm_match_calls,
            vm_steps: r.engine.vm_steps,
            par_tasks: r.stats.par_tasks,
            par_chunks: r.stats.par_chunks,
            pool_threads: r.engine.pool_threads,
        }
    }

    fn from_exec_stats(rows: usize, stats: sqlexec::ExecStats) -> QueryCounters {
        QueryCounters {
            rows,
            rows_scanned: stats.rows_scanned,
            index_probes: stats.index_probes,
            predicate_evals: stats.predicate_evals,
            ..QueryCounters::default()
        }
    }
}

/// Like [`run_query`], but returns the operator counters alongside the
/// cardinality.
pub fn run_query_counted(
    data: &BenchData,
    system: System,
    query: &str,
) -> Result<QueryCounters, String> {
    match system {
        System::Ppf => data
            .ppf
            .query(query)
            .map(|r| QueryCounters::from_ppf(&r))
            .map_err(|e| e.to_string()),
        System::EdgePpf => data
            .edge
            .query(query)
            .map(|r| QueryCounters::from_ppf(&r))
            .map_err(|e| e.to_string()),
        System::Native => run_query(data, system, query).map(|rows| QueryCounters {
            rows,
            ..QueryCounters::default()
        }),
        System::Accel => data
            .accel
            .query(query)
            .map(|r| QueryCounters::from_exec_stats(r.rows.rows.len(), r.stats))
            .map_err(|e| e.to_string()),
        System::Naive => {
            let expr = xpath::parse_xpath(query).map_err(|e| e.to_string())?;
            let stmt = accel::translate_naive(&data.schema, &expr).map_err(|e| e.to_string())?;
            let exec = Executor::new(data.ppf.db());
            let rs = exec.run(&stmt).map_err(|e| e.to_string())?;
            Ok(QueryCounters::from_exec_stats(rs.rows.len(), exec.stats()))
        }
    }
}

/// [`time_query`] with the counters of the measured runs attached (the
/// counters are identical across repetitions — execution is
/// deterministic — so the last run's are returned).
pub fn time_query_counted(
    data: &BenchData,
    system: System,
    query: &str,
    reps: usize,
) -> Result<(QueryCounters, Duration), String> {
    let mut times = Vec::with_capacity(reps);
    let mut counters = QueryCounters::default();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        counters = run_query_counted(data, system, query)?;
        times.push(t0.elapsed());
        if times.last().expect("just pushed") > &Duration::from_secs(3) {
            break;
        }
    }
    times.sort();
    Ok((counters, times[times.len() / 2]))
}

/// One timed measurement: median wall-clock of `reps` runs plus the
/// cardinality (the paper reports the average of 5 cold runs; medians are
/// steadier for in-memory reruns).
pub fn time_query(
    data: &BenchData,
    system: System,
    query: &str,
    reps: usize,
) -> Result<(usize, Duration), String> {
    let mut times = Vec::with_capacity(reps);
    let mut count = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        count = run_query(data, system, query)?;
        times.push(t0.elapsed());
        // Adaptive repetition: once a single run exceeds a few seconds,
        // more repetitions add nothing but wall-clock (the paper likewise
        // reports "~" for a cell that never finished).
        if times.last().expect("just pushed") > &Duration::from_secs(3) {
            break;
        }
    }
    times.sort();
    Ok((count, times[times.len() / 2]))
}

/// Per-query sanity check used by the harness and integration tests: the
/// SQL systems must agree with the native evaluator on cardinality.
pub fn check_agreement(data: &BenchData, query: &str) -> Result<usize, String> {
    let expected = run_query(data, System::Native, query)?;
    for system in [System::Ppf, System::EdgePpf] {
        let got = run_query(data, system, query)?;
        if got != expected {
            return Err(format!(
                "{} returned {got}, native returned {expected} for {query}",
                system.label()
            ));
        }
    }
    Ok(expected)
}
