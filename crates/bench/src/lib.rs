//! `ppf-bench` — the experiment harness for the paper's evaluation (§5).
//!
//! Builds the five competing systems over the same generated documents:
//!
//! | harness name | paper name                         | implementation |
//! |--------------|------------------------------------|----------------|
//! | `Ppf`        | PPF (schema-aware)                 | `ppf_core::XmlDb` |
//! | `EdgePpf`    | Edge-like PPF (schema-oblivious)   | `ppf_core::EdgeDb` |
//! | `Native`     | MonetDB/XQuery (main-memory proxy) | `xpath::evaluate` |
//! | `Accel`      | XPath Accelerator                  | `accel::AccelDb` |
//! | `Naive`      | commercial RDBMS built-in XPath    | `accel::translate_naive` |
//!
//! The criterion benches and the `paper_tables` binary drive this module;
//! EXPERIMENTS.md records the outputs next to the paper's Appendix C.

use std::time::{Duration, Instant};

use accel::AccelDb;
use ppf_core::{EdgeDb, XmlDb};
use sqlexec::Executor;
use xmldom::Document;
use xmlschema::Schema;

pub use xmark::{
    dblp_queries, dblp_schema, generate_dblp, generate_xmark, xmark_queries, xmark_schema,
    DblpConfig, XMarkConfig,
};

/// All five systems loaded with the same document.
pub struct BenchData {
    pub doc: Document,
    pub schema: Schema,
    pub ppf: XmlDb,
    pub edge: EdgeDb,
    pub accel: AccelDb,
}

/// The competing systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Ppf,
    EdgePpf,
    Native,
    Accel,
    Naive,
}

impl System {
    pub const ALL: [System; 5] = [
        System::Ppf,
        System::EdgePpf,
        System::Native,
        System::Accel,
        System::Naive,
    ];

    /// Label used in the output tables (mirroring Appendix C's columns).
    pub fn label(self) -> &'static str {
        match self {
            System::Ppf => "PPF",
            System::EdgePpf => "Edge-like PPF",
            System::Native => "Native (MonetDB proxy)",
            System::Accel => "XPath Accel.",
            System::Naive => "Naive FK (commercial proxy)",
        }
    }
}

fn build(doc: Document, schema: Schema) -> BenchData {
    let mut ppf = XmlDb::new(&schema).expect("schema db");
    ppf.load(&doc).expect("ppf load");
    ppf.finalize().expect("ppf indexes");

    let mut edge = EdgeDb::new();
    edge.load(&doc).expect("edge load");
    edge.finalize().expect("edge indexes");

    let mut accel = AccelDb::new();
    accel.load(&doc).expect("accel load");
    accel.finalize().expect("accel indexes");

    BenchData {
        doc,
        schema,
        ppf,
        edge,
        accel,
    }
}

/// Build all systems over an XMark-like document.
pub fn build_xmark(scale: f64, seed: u64) -> BenchData {
    build(
        generate_xmark(XMarkConfig { scale, seed }),
        xmark_schema(),
    )
}

/// Build all systems over a DBLP-like document.
pub fn build_dblp(scale: f64, seed: u64) -> BenchData {
    build(generate_dblp(DblpConfig { scale, seed }), dblp_schema())
}

/// Run a query on a system; returns the result cardinality, or `Err` when
/// the system does not support the query (expected for `Naive` on most).
pub fn run_query(data: &BenchData, system: System, query: &str) -> Result<usize, String> {
    match system {
        System::Ppf => data
            .ppf
            .query(query)
            .map(|r| r.rows.rows.len())
            .map_err(|e| e.to_string()),
        System::EdgePpf => data
            .edge
            .query(query)
            .map(|r| r.rows.rows.len())
            .map_err(|e| e.to_string()),
        System::Native => {
            let expr = xpath::parse_xpath(query).map_err(|e| e.to_string())?;
            xpath::evaluate(&data.doc, &expr)
                .map(|items| items.len())
                .map_err(|e| e.to_string())
        }
        System::Accel => data
            .accel
            .query(query)
            .map(|r| r.rows.rows.len())
            .map_err(|e| e.to_string()),
        System::Naive => {
            let expr = xpath::parse_xpath(query).map_err(|e| e.to_string())?;
            let stmt =
                accel::translate_naive(&data.schema, &expr).map_err(|e| e.to_string())?;
            let exec = Executor::new(data.ppf.db());
            exec.run(&stmt)
                .map(|rs| rs.rows.len())
                .map_err(|e| e.to_string())
        }
    }
}

/// One timed measurement: median wall-clock of `reps` runs plus the
/// cardinality (the paper reports the average of 5 cold runs; medians are
/// steadier for in-memory reruns).
pub fn time_query(
    data: &BenchData,
    system: System,
    query: &str,
    reps: usize,
) -> Result<(usize, Duration), String> {
    let mut times = Vec::with_capacity(reps);
    let mut count = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        count = run_query(data, system, query)?;
        times.push(t0.elapsed());
        // Adaptive repetition: once a single run exceeds a few seconds,
        // more repetitions add nothing but wall-clock (the paper likewise
        // reports "~" for a cell that never finished).
        if times.last().expect("just pushed") > &Duration::from_secs(3) {
            break;
        }
    }
    times.sort();
    Ok((count, times[times.len() / 2]))
}

/// Per-query sanity check used by the harness and integration tests: the
/// SQL systems must agree with the native evaluator on cardinality.
pub fn check_agreement(data: &BenchData, query: &str) -> Result<usize, String> {
    let expected = run_query(data, System::Native, query)?;
    for system in [System::Ppf, System::EdgePpf] {
        let got = run_query(data, system, query)?;
        if got != expected {
            return Err(format!(
                "{} returned {got}, native returned {expected} for {query}",
                system.label()
            ));
        }
    }
    Ok(expected)
}
