//! The accelerator and the naive baseline must agree with the native
//! evaluator on the query subsets they support.

use accel::AccelDb;
use sqlexec::Executor;
use xmldom::Document;
use xpath::{evaluate, parse_xpath, Item};

fn doc() -> Document {
    xmldom::parse(
        "<A x='4'>\
           <B><C><D x='1'>9</D></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
           <B><G><G/></G></B>\
         </A>",
    )
    .expect("xml")
}

const ACCEL_CORPUS: &[&str] = &[
    "/A",
    "/A/B",
    "/A/B/C",
    "/A/*",
    "//F",
    "//G",
    "/A//C",
    "//C/*/F",
    "/descendant-or-self::G",
    "//G//G",
    "//F/parent::E",
    "//F/ancestor::B",
    "//G/ancestor-or-self::G",
    "//D/following-sibling::E",
    "//G/preceding-sibling::C",
    "//D/following::F",
    "//G/preceding::F",
    "//E[F=1]",
    "//E[F=3]",
    "//D[@x=1]",
    "//B[C]",
    "//B[not(C)]",
    "/A/B[C and G]",
    "/A/B[C or G]",
    "//F[parent::E]",
    "//*[@x]",
    "//D | //F",
    "/A[@x=4]//C",
]; // (no count()/position(): outside the accelerator subset, like the paper's manual translations)

fn native_ids(d: &Document, loaded: &shred::LoadedDoc, q: &str) -> Vec<i64> {
    let expr = parse_xpath(q).expect("parse");
    let mut out: Vec<i64> = evaluate(d, &expr)
        .expect("native")
        .into_iter()
        .map(|i| match i {
            Item::Node(n) => loaded.element_ids[&n],
            Item::Attr(..) => panic!("element results only"),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn accelerator_matches_native() {
    let d = doc();
    let mut a = AccelDb::new();
    let loaded = a.load(&d).expect("load");
    a.finalize().expect("indexes");
    for q in ACCEL_CORPUS {
        let expected = native_ids(&d, &loaded, q);
        let r = a.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let mut got = r.ids();
        got.sort();
        assert_eq!(got, expected, "query {q}\nsql: {}", r.sql);
    }
}

#[test]
fn accelerator_join_count_grows_with_steps() {
    // The defining property of the baseline: one join per step.
    let a = AccelDb::new();
    let s1 = a.sql_for("/A").expect("sql");
    let s4 = a.sql_for("/A/B/C/D").expect("sql");
    assert_eq!(s1.matches("Accel").count(), 1, "sql: {s1}");
    assert_eq!(s4.matches("Accel").count(), 4, "sql: {s4}");
}

#[test]
fn naive_supports_only_child_paths() {
    let schema = xmlschema::figure1_schema();
    let ok = xpath::parse_xpath("/A/B/C").expect("parse");
    assert!(accel::translate_naive(&schema, &ok).is_ok());
    for q in ["//F", "/A/B/C//F", "/A/*", "//F/parent::E"] {
        let e = xpath::parse_xpath(q).expect("parse");
        assert!(
            accel::translate_naive(&schema, &e).is_err(),
            "{q} should be unsupported"
        );
    }
}

#[test]
fn naive_matches_native_on_its_subset() {
    let d = doc();
    let schema = xmlschema::figure1_schema();
    let mut store = shred::SchemaAwareStore::new(&schema).expect("store");
    let loaded = store.load(&d).expect("load");
    store.create_indexes().expect("indexes");
    for q in [
        "/A/B/C",
        "/A/B/C/D",
        "/A[@x=4]/B",
        "/A/B[C]",
        "/A/B[not(C)]",
        "/A/B[C/D]",
        "/A/B/C[D and not(E)]",
        "/A/B/C/E[F=2]",
        "/A/B/C/E[F=F]",
    ] {
        let expr = parse_xpath(q).expect("parse");
        let stmt = accel::translate_naive(&schema, &expr).unwrap_or_else(|e| panic!("{q}: {e}"));
        let exec = Executor::new(store.db());
        let rs = exec.run(&stmt).unwrap_or_else(|e| panic!("{q}: {e}"));
        let mut got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().expect("id")).collect();
        got.sort();
        let expected = native_ids(&d, &loaded, q);
        assert_eq!(got, expected, "query {q}");
    }
}
