//! XPath Accelerator storage (Grust's pre/post encoding, paper ref 2).
//!
//! One central `Accel` relation holds every element with its preorder
//! rank (`pre`), postorder rank (`post`), parent's preorder rank
//! (`par_pre`), subtree `size`, tree `level`, tag `name` and direct text
//! `value`. Attributes live in a separate `AccelAttrs` relation. The
//! structural axes become *window* predicates over (pre, post).

use std::collections::HashMap;

use relstore::{ColType, Database, TableSchema, Value};
use shred::schema_aware::{LoadedDoc, ShredError};
use xmldom::{Document, NodeId};

/// Central accelerator relation.
pub const ACCEL_TABLE: &str = "Accel";
/// Attribute side relation.
pub const ACCEL_ATTRS: &str = "AccelAttrs";

/// The schema-oblivious pre/post store.
pub struct AccelStore {
    db: Database,
    next_pre: i64,
    next_doc: i64,
    indexed: bool,
}

impl Default for AccelStore {
    fn default() -> Self {
        Self::new()
    }
}

impl AccelStore {
    pub fn new() -> AccelStore {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            ACCEL_TABLE,
            &[
                ("pre", ColType::Int),
                ("post", ColType::Int),
                ("par_pre", ColType::Int),
                ("size", ColType::Int),
                ("level", ColType::Int),
                ("doc_id", ColType::Int),
                ("name", ColType::Str),
                ("value", ColType::Str),
            ],
        ))
        .expect("fresh database");
        db.create_table(TableSchema::new(
            ACCEL_ATTRS,
            &[
                ("owner_pre", ColType::Int),
                ("name", ColType::Str),
                ("value", ColType::Str),
            ],
        ))
        .expect("fresh database");
        AccelStore {
            db,
            next_pre: 1,
            next_doc: 1,
            indexed: false,
        }
    }

    /// Load a document; element ids are the global `pre` ranks (document
    /// order, like the other stores).
    pub fn load(&mut self, doc: &Document) -> Result<LoadedDoc, ShredError> {
        let root = doc
            .document_element()
            .ok_or_else(|| ShredError("document has no element".into()))?;
        let doc_id = self.next_doc;
        self.next_doc += 1;

        // Assign pre/post/size/level in one traversal.
        let mut element_ids: HashMap<NodeId, i64> = HashMap::new();
        let mut post_counter: i64 = 1;
        let mut rows: Vec<(NodeId, i64, i64, i64, i64)> = Vec::new(); // (node, pre, post, size, level)

        fn walk(
            doc: &Document,
            n: NodeId,
            level: i64,
            next_pre: &mut i64,
            post: &mut i64,
            ids: &mut HashMap<NodeId, i64>,
            rows: &mut Vec<(NodeId, i64, i64, i64, i64)>,
        ) -> i64 {
            let pre = *next_pre;
            *next_pre += 1;
            ids.insert(n, pre);
            let mut size = 0;
            for c in doc.child_elements(n).collect::<Vec<_>>() {
                size += 1 + walk(doc, c, level + 1, next_pre, post, ids, rows);
            }
            let my_post = *post;
            *post += 1;
            rows.push((n, pre, my_post, size, level));
            size
        }
        walk(
            doc,
            root,
            1,
            &mut self.next_pre,
            &mut post_counter,
            &mut element_ids,
            &mut rows,
        );

        // Globalize post ranks per document by offsetting with the pre
        // base, preserving intra-document comparisons. Window predicates
        // compare within a document; the doc_id column scopes them.
        let base = element_ids[&root] - 1;
        for (n, pre, post, size, level) in rows {
            let par = doc
                .parent(n)
                .and_then(|p| element_ids.get(&p))
                .copied()
                .map(Value::Int)
                .unwrap_or(Value::Null);
            let text = doc.direct_text(n);
            self.db.table_mut(ACCEL_TABLE).expect("Accel").insert(vec![
                Value::Int(pre),
                Value::Int(post + base),
                par,
                Value::Int(size),
                Value::Int(level),
                Value::Int(doc_id),
                Value::Str(doc.name(n).expect("element").to_string()),
                if text.is_empty() {
                    Value::Null
                } else {
                    Value::Str(text)
                },
            ])?;
            for (aname, avalue) in doc.attributes(n) {
                self.db
                    .table_mut(ACCEL_ATTRS)
                    .expect("AccelAttrs")
                    .insert(vec![
                        Value::Int(pre),
                        Value::Str(aname.clone()),
                        Value::Str(avalue.clone()),
                    ])?;
            }
        }
        Ok(LoadedDoc {
            doc_id,
            element_ids,
        })
    }

    /// B-tree indexes: `pre` (PK), `par_pre`, `(name, pre)` and `post`.
    pub fn create_indexes(&mut self) -> Result<(), ShredError> {
        if self.indexed {
            return Ok(());
        }
        {
            let t = self.db.table_mut(ACCEL_TABLE).expect("Accel");
            t.create_index("accel_pre", &["pre"])?;
            t.create_index("accel_par", &["par_pre"])?;
            t.create_index("accel_name_pre", &["name", "pre"])?;
            t.create_index("accel_post", &["post"])?;
        }
        let a = self.db.table_mut(ACCEL_ATTRS).expect("AccelAttrs");
        a.create_index("accelattrs_owner", &["owner_pre"])?;
        a.create_index("accelattrs_name", &["name"])?;
        self.indexed = true;
        Ok(())
    }

    pub fn db(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_post_windows() {
        let mut s = AccelStore::new();
        let doc = xmldom::parse("<a><b><c/></b><d/></a>").expect("xml");
        let loaded = s.load(&doc).expect("load");
        s.create_indexes().expect("index");
        let t = s.db().table(ACCEL_TABLE).expect("Accel");
        assert_eq!(t.len(), 4);
        // find rows by name
        let row = |name: &str| -> Vec<i64> {
            t.rows()
                .find(|(_, r)| r[6] == Value::from(name))
                .map(|(_, r)| {
                    vec![
                        r[0].as_int().expect("pre"),
                        r[1].as_int().expect("post"),
                        r[3].as_int().expect("size"),
                        r[4].as_int().expect("level"),
                    ]
                })
                .expect("row")
        };
        let a = row("a");
        let b = row("b");
        let c = row("c");
        let d = row("d");
        // descendant windows: pre(desc) > pre(anc) && post(desc) < post(anc)
        assert!(b[0] > a[0] && b[1] < a[1]);
        assert!(c[0] > b[0] && c[1] < b[1]);
        assert!(d[0] > a[0] && d[1] < a[1]);
        // following: pre(d) > pre(c) && post(d) > post(c)
        assert!(d[0] > c[0] && d[1] > c[1]);
        // sizes
        assert_eq!(a[2], 3);
        assert_eq!(b[2], 1);
        assert_eq!(c[2], 0);
        // levels
        assert_eq!(a[3], 1);
        assert_eq!(c[3], 3);
        assert_eq!(loaded.element_ids.len(), 4);
    }

    #[test]
    fn ids_follow_document_order() {
        let mut s = AccelStore::new();
        let doc = xmldom::parse("<a><b><c/></b><d/></a>").expect("xml");
        let loaded = s.load(&doc).expect("load");
        let mut pairs: Vec<_> = loaded.element_ids.into_iter().collect();
        pairs.sort();
        for w in pairs.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn attributes_in_side_relation() {
        let mut s = AccelStore::new();
        let doc = xmldom::parse("<a id='x'><b k='v'/></a>").expect("xml");
        s.load(&doc).expect("load");
        assert_eq!(s.db().table(ACCEL_ATTRS).expect("attrs").len(), 2);
    }
}
