//! `accel` — the baseline systems of the paper's evaluation (§5):
//!
//! * [`AccelDb`] — our implementation of the **XPath Accelerator** (paper ref 2)
//!   over the same relational engine: pre/post window encoding, one
//!   self-join of the central relation per location step.
//! * [`translate_naive`] — the "built-in XPath of a commercial RDBMS"
//!   stand-in: conventional per-step foreign-key joins over the
//!   schema-aware relations, deliberately supporting only plain
//!   child-axis queries (the real system supported only 3 of the
//!   benchmark queries).

pub mod naive;
pub mod store;
pub mod translate;

use relstore::Database;
use sqlexec::{ExecStats, Executor, ResultSet};
use xmldom::Document;

pub use naive::{translate_naive, NaiveError};
pub use store::{AccelStore, ACCEL_ATTRS, ACCEL_TABLE};
pub use translate::{translate_accel, AccelError};

/// A loaded accelerator database plus query interface.
pub struct AccelDb {
    store: AccelStore,
}

impl Default for AccelDb {
    fn default() -> Self {
        Self::new()
    }
}

/// Query result for the accelerator (ids are `pre` ranks, document order).
#[derive(Debug, Clone)]
pub struct AccelResult {
    pub sql: String,
    pub rows: ResultSet,
    pub stats: ExecStats,
}

impl AccelResult {
    pub fn ids(&self) -> Vec<i64> {
        self.rows
            .rows
            .iter()
            .filter_map(|r| r.first().and_then(relstore::Value::as_int))
            .collect()
    }
}

impl AccelDb {
    pub fn new() -> AccelDb {
        AccelDb {
            store: AccelStore::new(),
        }
    }

    pub fn load(&mut self, doc: &Document) -> Result<shred::LoadedDoc, AccelError> {
        self.store.load(doc).map_err(|e| AccelError(e.to_string()))
    }

    pub fn load_xml(&mut self, xml: &str) -> Result<shred::LoadedDoc, AccelError> {
        let doc = xmldom::parse(xml).map_err(|e| AccelError(e.to_string()))?;
        self.load(&doc)
    }

    pub fn finalize(&mut self) -> Result<(), AccelError> {
        self.store
            .create_indexes()
            .map_err(|e| AccelError(e.to_string()))
    }

    pub fn db(&self) -> &Database {
        self.store.db()
    }

    pub fn sql_for(&self, xpath: &str) -> Result<String, AccelError> {
        let expr = xpath::parse_xpath(xpath).map_err(|e| AccelError(e.to_string()))?;
        Ok(sqlexec::render_stmt(&translate_accel(&expr)?))
    }

    pub fn query(&self, xpath: &str) -> Result<AccelResult, AccelError> {
        let expr = xpath::parse_xpath(xpath).map_err(|e| AccelError(e.to_string()))?;
        let stmt = translate_accel(&expr)?;
        let exec = Executor::new(self.db());
        let rows = exec.run(&stmt).map_err(|e| AccelError(e.to_string()))?;
        Ok(AccelResult {
            sql: sqlexec::render_stmt(&stmt),
            rows,
            stats: exec.stats(),
        })
    }
}
