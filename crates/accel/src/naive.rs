//! The "conventional" schema-aware XPath→SQL translation (paper §4.4's
//! foil, and the stand-in for the commercial RDBMS's built-in XPath of
//! §5): **one foreign-key join per child step**, no path index, no Dewey.
//!
//! Like the commercial system in the paper — which "supports only three
//! of the XPathMark queries" — this translator deliberately covers only
//! plain child-axis paths with value/existence predicates.

use sqlexec::{CmpOp, Expr as Sql, OrderKey, Projection, Select, SelectStmt, TableRef};
use xmlschema::Schema;
use xpath::{Axis, CompOp, Expr as XExpr, LocationPath, NodeTest};

use shred::naming::{attr_col, COL_DEWEY, COL_ID, COL_PAR, COL_TEXT};

/// Naive translation error (most queries are simply unsupported — that is
/// the point of this baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveError(pub String);

impl std::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "naive translation error: {}", self.0)
    }
}

impl std::error::Error for NaiveError {}

fn col(alias: &str, name: &str) -> Sql {
    Sql::column(alias, name)
}

/// Translate a child-axis-only XPath over the schema-aware relations.
pub fn translate_naive(schema: &Schema, expr: &XExpr) -> Result<SelectStmt, NaiveError> {
    let XExpr::Path(path) = expr else {
        return Err(NaiveError("only single paths are supported".into()));
    };
    if !path.absolute {
        return Err(NaiveError("only absolute paths are supported".into()));
    }
    let mut t = Naive { schema, seq: 0 };
    let (from, conjuncts, last, _last_rel) = t.chain(None, path)?;
    Ok(SelectStmt {
        branches: vec![Select {
            distinct: true,
            projections: vec![
                Projection {
                    expr: col(&last, COL_ID),
                    alias: Some("id".to_string()),
                },
                Projection {
                    expr: col(&last, COL_DEWEY),
                    alias: Some("dewey_pos".to_string()),
                },
            ],
            from,
            where_clause: conjuncts.into_iter().reduce(|a, c| a.and(c)),
        }],
        order_by: vec![OrderKey {
            expr: Sql::Column {
                qualifier: None,
                name: "dewey_pos".to_string(),
            },
            desc: false,
        }],
    })
}

struct Naive<'a> {
    schema: &'a Schema,
    seq: usize,
}

impl<'a> Naive<'a> {
    fn alias(&mut self, base: &str) -> String {
        self.seq += 1;
        if self.seq == 1 {
            base.to_string()
        } else {
            format!("{base}_{}", self.seq)
        }
    }

    /// FK-join chain; every step must be `child::name`.
    #[allow(clippy::type_complexity)]
    fn chain(
        &mut self,
        ctx: Option<(&str, &str)>, // (alias, relation)
        path: &LocationPath,
    ) -> Result<(Vec<TableRef>, Vec<Sql>, String, String), NaiveError> {
        let mut from = Vec::new();
        let mut conjuncts = Vec::new();
        let mut prev: Option<(String, String)> = ctx.map(|(a, r)| (a.to_string(), r.to_string()));
        for step in &path.steps {
            if step.axis != Axis::Child {
                return Err(NaiveError(format!(
                    "the `{}` axis is not supported by the built-in translator",
                    step.axis.name()
                )));
            }
            let NodeTest::Name(name) = &step.test else {
                return Err(NaiveError(
                    "wildcards are not supported by the built-in translator".into(),
                ));
            };
            // Schema check: the step must be a legal child.
            match &prev {
                Some((_, rel)) => {
                    if !self.schema.children_of(rel).iter().any(|c| c == name) {
                        return Err(NaiveError(format!("`{name}` cannot nest under `{rel}`")));
                    }
                }
                None => {
                    if self.schema.root() != name {
                        return Err(NaiveError(format!("`{name}` is not the document element")));
                    }
                }
            }
            let v = self.alias(name);
            from.push(TableRef::new(name, &v));
            if let Some((pa, _)) = &prev {
                conjuncts.push(Sql::eq(col(&v, COL_PAR), col(pa, COL_ID)));
            }
            for pred in &step.predicates {
                let c = self.predicate(&v, name, pred)?;
                conjuncts.push(c);
            }
            prev = Some((v, name.clone()));
        }
        let (alias, rel) = prev.ok_or_else(|| NaiveError("empty path".into()))?;
        Ok((from, conjuncts, alias, rel))
    }

    fn predicate(&mut self, v: &str, rel: &str, pred: &XExpr) -> Result<Sql, NaiveError> {
        match pred {
            XExpr::And(xs) => {
                let parts = xs
                    .iter()
                    .map(|x| self.predicate(v, rel, x))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(parts.into_iter().reduce(|a, c| a.and(c)).expect("nonempty"))
            }
            XExpr::Or(xs) => {
                let parts = xs
                    .iter()
                    .map(|x| self.predicate(v, rel, x))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(parts.into_iter().reduce(|a, c| a.or(c)).expect("nonempty"))
            }
            XExpr::Not(x) => Ok(Sql::Not(Box::new(self.predicate(v, rel, x)?))),
            XExpr::Path(p) => self.exists(v, rel, p, None),
            XExpr::Compare { op, lhs, rhs } => {
                let lit = |e: &XExpr| -> Option<relstore::Value> {
                    match e {
                        XExpr::Literal(s) => Some(relstore::Value::Str(s.clone())),
                        XExpr::Number(n) => Some(if n.fract() == 0.0 {
                            relstore::Value::Int(*n as i64)
                        } else {
                            relstore::Value::Float(*n)
                        }),
                        _ => None,
                    }
                };
                if let (XExpr::Path(p), Some(val)) = (lhs.as_ref(), lit(rhs)) {
                    return self.exists(v, rel, p, Some((to_sql_op(*op), val)));
                }
                if let (Some(val), XExpr::Path(p)) = (lit(lhs), rhs.as_ref()) {
                    return self.exists(v, rel, p, Some((to_sql_op(*op).flip(), val)));
                }
                if let (XExpr::Path(p1), XExpr::Path(p2)) = (lhs.as_ref(), rhs.as_ref()) {
                    return self.join_pred(v, rel, to_sql_op(*op), p1, p2);
                }
                Err(NaiveError("unsupported comparison".into()))
            }
            other => Err(NaiveError(format!("unsupported predicate `{other}`"))),
        }
    }

    fn exists(
        &mut self,
        v: &str,
        rel: &str,
        path: &LocationPath,
        value: Option<(CmpOp, relstore::Value)>,
    ) -> Result<Sql, NaiveError> {
        if path.absolute {
            return Err(NaiveError("absolute predicate paths unsupported".into()));
        }
        let mut steps = path.steps.clone();
        let attr = match steps.last() {
            Some(s) if s.axis == Axis::Attribute => steps.pop(),
            _ => None,
        };
        // Attribute directly on the predicated node.
        if steps.is_empty() {
            let Some(step) = attr else {
                return Err(NaiveError("empty predicate path".into()));
            };
            let NodeTest::Name(aname) = &step.test else {
                return Err(NaiveError("@* unsupported".into()));
            };
            let def = self
                .schema
                .def(rel)
                .ok_or_else(|| NaiveError(format!("unknown relation {rel}")))?;
            if !def.attributes.iter().any(|a| &a.name == aname) {
                return Ok(Sql::Literal(relstore::Value::Bool(false)));
            }
            let value_col = col(v, &attr_col(aname));
            return Ok(match value {
                None => Sql::IsNull {
                    expr: Box::new(value_col),
                    negated: true,
                },
                Some((op, val)) => Sql::Cmp {
                    op,
                    lhs: Box::new(value_col),
                    rhs: Box::new(Sql::Literal(val)),
                },
            });
        }
        let sub = LocationPath {
            absolute: false,
            steps,
        };
        let (from, mut conjuncts, last, last_rel) = self.chain(Some((v, rel)), &sub)?;
        match attr {
            Some(step) => {
                let NodeTest::Name(aname) = &step.test else {
                    return Err(NaiveError("@* unsupported".into()));
                };
                let def = self
                    .schema
                    .def(&last_rel)
                    .ok_or_else(|| NaiveError(format!("unknown relation {last_rel}")))?;
                if !def.attributes.iter().any(|a| &a.name == aname) {
                    return Ok(Sql::Literal(relstore::Value::Bool(false)));
                }
                let value_col = col(&last, &attr_col(aname));
                conjuncts.push(match value {
                    None => Sql::IsNull {
                        expr: Box::new(value_col),
                        negated: true,
                    },
                    Some((op, val)) => Sql::Cmp {
                        op,
                        lhs: Box::new(value_col),
                        rhs: Box::new(Sql::Literal(val)),
                    },
                });
            }
            None => {
                if let Some((op, val)) = value {
                    let def = self
                        .schema
                        .def(&last_rel)
                        .ok_or_else(|| NaiveError(format!("unknown relation {last_rel}")))?;
                    if def.text.is_none() {
                        return Ok(Sql::Literal(relstore::Value::Bool(false)));
                    }
                    conjuncts.push(Sql::Cmp {
                        op,
                        lhs: Box::new(col(&last, COL_TEXT)),
                        rhs: Box::new(Sql::Literal(val)),
                    });
                }
            }
        }
        Ok(Sql::Exists(Box::new(Select {
            distinct: false,
            projections: vec![Projection {
                expr: Sql::Literal(relstore::Value::Null),
                alias: None,
            }],
            from,
            where_clause: conjuncts.into_iter().reduce(|a, c| a.and(c)),
        })))
    }

    fn join_pred(
        &mut self,
        v: &str,
        rel: &str,
        op: CmpOp,
        p1: &LocationPath,
        p2: &LocationPath,
    ) -> Result<Sql, NaiveError> {
        let (f1, c1, a1, r1) = self.chain(Some((v, rel)), p1)?;
        let (f2, c2, a2, r2) = self.chain(Some((v, rel)), p2)?;
        for r in [&r1, &r2] {
            if self.schema.def(r).and_then(|d| d.text).is_none() {
                return Ok(Sql::Literal(relstore::Value::Bool(false)));
            }
        }
        let mut from = f1;
        from.extend(f2);
        let mut conjuncts = c1;
        conjuncts.extend(c2);
        conjuncts.push(Sql::Cmp {
            op,
            lhs: Box::new(col(&a1, COL_TEXT)),
            rhs: Box::new(col(&a2, COL_TEXT)),
        });
        Ok(Sql::Exists(Box::new(Select {
            distinct: false,
            projections: vec![Projection {
                expr: Sql::Literal(relstore::Value::Null),
                alias: None,
            }],
            from,
            where_clause: conjuncts.into_iter().reduce(|a, c| a.and(c)),
        })))
    }
}

fn to_sql_op(op: CompOp) -> CmpOp {
    match op {
        CompOp::Eq => CmpOp::Eq,
        CompOp::Ne => CmpOp::Ne,
        CompOp::Lt => CmpOp::Lt,
        CompOp::Le => CmpOp::Le,
        CompOp::Gt => CmpOp::Gt,
        CompOp::Ge => CmpOp::Ge,
    }
}
