//! XPath → SQL translation over the accelerator store: **one self-join of
//! the central relation per location step**, with the axes expressed as
//! pre/post window predicates ("staked-out query windows", paper ref 2).
//!
//! This is the baseline the paper compares PPF processing against: no
//! path index, no schema knowledge — the number of joins grows with the
//! number of steps.

use sqlexec::{CmpOp, Expr as Sql, OrderKey, Projection, Select, SelectStmt, TableRef};
use xpath::{Axis, CompOp, Expr as XExpr, LocationPath, NodeTest, Step};

use crate::store::{ACCEL_ATTRS, ACCEL_TABLE};

/// Translation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelError(pub String);

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "accelerator translation error: {}", self.0)
    }
}

impl std::error::Error for AccelError {}

fn col(alias: &str, name: &str) -> Sql {
    Sql::column(alias, name)
}

/// Translate an XPath expression to accelerator SQL.
pub fn translate_accel(expr: &XExpr) -> Result<SelectStmt, AccelError> {
    let paths: Vec<&LocationPath> = match expr {
        XExpr::Path(p) => vec![p],
        XExpr::Union(ps) => ps.iter().collect(),
        other => {
            return Err(AccelError(format!(
                "top-level expression must be a path, got `{other}`"
            )))
        }
    };
    let mut t = Translator { seq: 0 };
    let mut branches = Vec::new();
    for p in paths {
        if !p.absolute {
            return Err(AccelError("top-level paths must be absolute".into()));
        }
        let chain = t.chain(None, &p.steps)?;
        let last = chain
            .last_alias
            .clone()
            .ok_or_else(|| AccelError("empty path".into()))?;
        branches.push(Select {
            distinct: true,
            projections: vec![
                Projection {
                    expr: col(&last, "pre"),
                    alias: Some("id".to_string()),
                },
                Projection {
                    expr: col(&last, "pre"),
                    alias: Some("pre".to_string()),
                },
            ],
            from: chain.from,
            where_clause: chain.conjuncts.into_iter().reduce(|a, c| a.and(c)),
        });
    }
    Ok(SelectStmt {
        branches,
        order_by: vec![OrderKey {
            expr: Sql::Column {
                qualifier: None,
                name: "pre".to_string(),
            },
            desc: false,
        }],
    })
}

struct Chain {
    from: Vec<TableRef>,
    conjuncts: Vec<Sql>,
    last_alias: Option<String>,
}

struct Translator {
    seq: usize,
}

impl Translator {
    fn alias(&mut self) -> String {
        self.seq += 1;
        format!("v{}", self.seq)
    }

    /// Build the join chain for a step sequence starting from `ctx`
    /// (None = document root).
    fn chain(&mut self, ctx: Option<&str>, steps: &[Step]) -> Result<Chain, AccelError> {
        // Collapse the `//` desugaring (descendant-or-self::node() /
        // child::X) into a single descendant::X step — the standard
        // accelerator rewrite; otherwise every `//` would add a join
        // matching all rows.
        let mut steps_vec: Vec<Step> = Vec::with_capacity(steps.len());
        let mut iter = steps.iter().peekable();
        while let Some(s) = iter.next() {
            let is_dos_node = s.axis == Axis::DescendantOrSelf
                && s.test == NodeTest::AnyNode
                && s.predicates.is_empty();
            if is_dos_node {
                if let Some(next) = iter.peek() {
                    if next.axis == Axis::Child {
                        let mut merged = (*iter.next().expect("peeked")).clone();
                        merged.axis = Axis::Descendant;
                        steps_vec.push(merged);
                        continue;
                    }
                }
            }
            steps_vec.push(s.clone());
        }
        let steps = &steps_vec[..];

        let mut from = Vec::new();
        let mut conjuncts = Vec::new();
        let mut prev: Option<String> = ctx.map(|s| s.to_string());
        let mut at_root = ctx.is_none();

        for (i, step) in steps.iter().enumerate() {
            if step.axis == Axis::Attribute {
                return Err(AccelError(
                    "attribute steps are handled inside predicates only".into(),
                ));
            }
            if step.test == NodeTest::Text {
                // A final text() step selects the `value` column of the
                // previous alias.
                if i + 1 != steps.len() || step.axis != Axis::Child {
                    return Err(AccelError(
                        "text() only supported as a final plain step".into(),
                    ));
                }
                let p = prev
                    .clone()
                    .ok_or_else(|| AccelError("text() needs a context step".into()))?;
                conjuncts.push(Sql::IsNull {
                    expr: Box::new(col(&p, "value")),
                    negated: true,
                });
                continue;
            }
            let v = self.alias();
            from.push(TableRef::new(ACCEL_TABLE, &v));
            // Name test.
            if let NodeTest::Name(n) = &step.test {
                conjuncts.push(Sql::eq(col(&v, "name"), Sql::str(n)));
            }
            // Axis window.
            match (&prev, step.axis, at_root) {
                (None, Axis::Child, true) => {
                    // Document element(s): level 1.
                    conjuncts.push(Sql::eq(col(&v, "level"), Sql::int(1)));
                }
                (None, Axis::Descendant | Axis::DescendantOrSelf, true) => {
                    // anything (all nodes descend from the root)
                }
                (None, axis, _) => {
                    return Err(AccelError(format!(
                        "axis `{}` cannot start a path",
                        axis.name()
                    )))
                }
                (Some(p), axis, _) => {
                    self.axis_window(&mut conjuncts, p, &v, axis)?;
                }
            }
            at_root = false;
            // Predicates.
            for pred in &step.predicates {
                let c = self.predicate(&v, pred)?;
                conjuncts.push(c);
            }
            prev = Some(v);
        }
        Ok(Chain {
            from,
            conjuncts,
            last_alias: prev,
        })
    }

    fn axis_window(
        &mut self,
        conjuncts: &mut Vec<Sql>,
        p: &str,
        v: &str,
        axis: Axis,
    ) -> Result<(), AccelError> {
        match axis {
            Axis::Child => {
                conjuncts.push(Sql::eq(col(v, "par_pre"), col(p, "pre")));
            }
            Axis::Parent => {
                conjuncts.push(Sql::eq(col(v, "pre"), col(p, "par_pre")));
            }
            Axis::Descendant => {
                // "Staked-out query window": descendants of p are exactly
                // pre ∈ (p.pre, p.pre + p.size] — a closed interval the
                // pre-index can range-scan (the accelerator paper's own
                // shrink-wrapping optimization).
                conjuncts.push(Sql::cmp(CmpOp::Gt, col(v, "pre"), col(p, "pre")));
                conjuncts.push(Sql::cmp(
                    CmpOp::Le,
                    col(v, "pre"),
                    Sql::Arith {
                        op: sqlexec::ArithOp::Add,
                        lhs: Box::new(col(p, "pre")),
                        rhs: Box::new(col(p, "size")),
                    },
                ));
            }
            Axis::DescendantOrSelf => {
                conjuncts.push(Sql::cmp(CmpOp::Ge, col(v, "pre"), col(p, "pre")));
                conjuncts.push(Sql::cmp(
                    CmpOp::Le,
                    col(v, "pre"),
                    Sql::Arith {
                        op: sqlexec::ArithOp::Add,
                        lhs: Box::new(col(p, "pre")),
                        rhs: Box::new(col(p, "size")),
                    },
                ));
            }
            Axis::Ancestor => {
                conjuncts.push(Sql::cmp(CmpOp::Lt, col(v, "pre"), col(p, "pre")));
                conjuncts.push(Sql::cmp(CmpOp::Gt, col(v, "post"), col(p, "post")));
            }
            Axis::AncestorOrSelf => {
                conjuncts.push(Sql::cmp(CmpOp::Le, col(v, "pre"), col(p, "pre")));
                conjuncts.push(Sql::cmp(CmpOp::Ge, col(v, "post"), col(p, "post")));
            }
            Axis::SelfAxis => {
                conjuncts.push(Sql::eq(col(v, "pre"), col(p, "pre")));
            }
            Axis::Following => {
                conjuncts.push(Sql::cmp(CmpOp::Gt, col(v, "pre"), col(p, "pre")));
                conjuncts.push(Sql::cmp(CmpOp::Gt, col(v, "post"), col(p, "post")));
                conjuncts.push(Sql::eq(col(v, "doc_id"), col(p, "doc_id")));
            }
            Axis::Preceding => {
                conjuncts.push(Sql::cmp(CmpOp::Lt, col(v, "pre"), col(p, "pre")));
                conjuncts.push(Sql::cmp(CmpOp::Lt, col(v, "post"), col(p, "post")));
                conjuncts.push(Sql::eq(col(v, "doc_id"), col(p, "doc_id")));
            }
            Axis::FollowingSibling => {
                conjuncts.push(Sql::eq(col(v, "par_pre"), col(p, "par_pre")));
                conjuncts.push(Sql::cmp(CmpOp::Gt, col(v, "pre"), col(p, "pre")));
            }
            Axis::PrecedingSibling => {
                conjuncts.push(Sql::eq(col(v, "par_pre"), col(p, "par_pre")));
                conjuncts.push(Sql::cmp(CmpOp::Lt, col(v, "pre"), col(p, "pre")));
            }
            Axis::Attribute => return Err(AccelError("attribute axis in element position".into())),
        }
        Ok(())
    }

    /// Translate a predicate on alias `v`.
    fn predicate(&mut self, v: &str, pred: &XExpr) -> Result<Sql, AccelError> {
        match pred {
            XExpr::And(xs) => {
                let parts = xs
                    .iter()
                    .map(|x| self.predicate(v, x))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(parts
                    .into_iter()
                    .reduce(|a, c| a.and(c))
                    .expect("non-empty"))
            }
            XExpr::Or(xs) => {
                let parts = xs
                    .iter()
                    .map(|x| self.predicate(v, x))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(parts.into_iter().reduce(|a, c| a.or(c)).expect("non-empty"))
            }
            XExpr::Not(x) => Ok(Sql::Not(Box::new(self.predicate(v, x)?))),
            XExpr::Path(p) => self.path_exists(v, p, None),
            XExpr::Compare { op, lhs, rhs } => self.compare(v, *op, lhs, rhs),
            other => Err(AccelError(format!(
                "predicate `{other}` is outside the accelerator subset"
            ))),
        }
    }

    fn compare(
        &mut self,
        v: &str,
        op: CompOp,
        lhs: &XExpr,
        rhs: &XExpr,
    ) -> Result<Sql, AccelError> {
        let lit = |e: &XExpr| -> Option<relstore::Value> {
            match e {
                XExpr::Literal(s) => Some(relstore::Value::Str(s.clone())),
                XExpr::Number(n) => Some(if n.fract() == 0.0 {
                    relstore::Value::Int(*n as i64)
                } else {
                    relstore::Value::Float(*n)
                }),
                _ => None,
            }
        };
        if let (XExpr::Path(p), Some(val)) = (lhs, lit(rhs)) {
            return self.path_exists(v, p, Some((sql_op(op), val)));
        }
        if let (Some(val), XExpr::Path(p)) = (lit(lhs), rhs) {
            return self.path_exists(v, p, Some((sql_op(op).flip(), val)));
        }
        if let (XExpr::Path(p1), XExpr::Path(p2)) = (lhs, rhs) {
            return self.path_join(v, sql_op(op), p1, p2);
        }
        Err(AccelError(format!(
            "comparison `{lhs} {} {rhs}` is outside the accelerator subset",
            op.symbol()
        )))
    }

    /// EXISTS for a relative path from `v`, optionally comparing the final
    /// value.
    fn path_exists(
        &mut self,
        v: &str,
        path: &LocationPath,
        value: Option<(CmpOp, relstore::Value)>,
    ) -> Result<Sql, AccelError> {
        let mut steps = path.steps.clone();
        // Trailing attribute: value lives in the attrs relation.
        let attr = match steps.last() {
            Some(s) if s.axis == Axis::Attribute => steps.pop(),
            _ => None,
        };
        let text_step = match steps.last() {
            Some(s) if s.test == NodeTest::Text && s.axis == Axis::Child => steps.pop(),
            _ => None,
        };
        let ctx = if path.absolute { None } else { Some(v) };
        let chain = self.chain(ctx, &steps)?;
        let mut from = chain.from;
        let mut conjuncts = chain.conjuncts;
        let owner = chain.last_alias.unwrap_or_else(|| v.to_string());
        match attr {
            Some(step) => {
                let a = self.alias();
                from.push(TableRef::new(ACCEL_ATTRS, &a));
                conjuncts.push(Sql::eq(col(&a, "owner_pre"), col(&owner, "pre")));
                if let NodeTest::Name(n) = &step.test {
                    conjuncts.push(Sql::eq(col(&a, "name"), Sql::str(n)));
                }
                if let Some((op, val)) = value {
                    conjuncts.push(Sql::Cmp {
                        op,
                        lhs: Box::new(col(&a, "value")),
                        rhs: Box::new(Sql::Literal(val)),
                    });
                }
            }
            None => {
                let _ = text_step;
                if let Some((op, val)) = value {
                    conjuncts.push(Sql::Cmp {
                        op,
                        lhs: Box::new(col(&owner, "value")),
                        rhs: Box::new(Sql::Literal(val)),
                    });
                }
            }
        }
        if from.is_empty() {
            // Pure value predicate on the current node (e.g. `. = 'x'`).
            return Ok(conjuncts
                .into_iter()
                .reduce(|a, c| a.and(c))
                .unwrap_or(Sql::Literal(relstore::Value::Bool(true))));
        }
        Ok(Sql::Exists(Box::new(Select {
            distinct: false,
            projections: vec![Projection {
                expr: Sql::Literal(relstore::Value::Null),
                alias: None,
            }],
            from,
            where_clause: conjuncts.into_iter().reduce(|a, c| a.and(c)),
        })))
    }

    /// `[p1 <op> p2]` join predicate.
    fn path_join(
        &mut self,
        v: &str,
        op: CmpOp,
        p1: &LocationPath,
        p2: &LocationPath,
    ) -> Result<Sql, AccelError> {
        let mut sides = Vec::new();
        for p in [p1, p2] {
            let ctx = if p.absolute { None } else { Some(v) };
            let chain = self.chain(ctx, &p.steps)?;
            sides.push(chain);
        }
        let s2 = sides.pop().expect("two sides");
        let s1 = sides.pop().expect("two sides");
        let a1 = s1
            .last_alias
            .ok_or_else(|| AccelError("empty join path".into()))?;
        let a2 = s2
            .last_alias
            .ok_or_else(|| AccelError("empty join path".into()))?;
        let mut from = s1.from;
        from.extend(s2.from);
        let mut conjuncts = s1.conjuncts;
        conjuncts.extend(s2.conjuncts);
        conjuncts.push(Sql::Cmp {
            op,
            lhs: Box::new(col(&a1, "value")),
            rhs: Box::new(col(&a2, "value")),
        });
        Ok(Sql::Exists(Box::new(Select {
            distinct: false,
            projections: vec![Projection {
                expr: Sql::Literal(relstore::Value::Null),
                alias: None,
            }],
            from,
            where_clause: conjuncts.into_iter().reduce(|a, c| a.and(c)),
        })))
    }
}

fn sql_op(op: CompOp) -> CmpOp {
    match op {
        CompOp::Eq => CmpOp::Eq,
        CompOp::Ne => CmpOp::Ne,
        CompOp::Lt => CmpOp::Lt,
        CompOp::Le => CmpOp::Le,
        CompOp::Gt => CmpOp::Gt,
        CompOp::Ge => CmpOp::Ge,
    }
}
