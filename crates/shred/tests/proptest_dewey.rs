//! Property tests for the binary Dewey encoding: the paper's Lemma 1 and
//! Lemma 2 (Appendix A) must hold for arbitrary Dewey vectors, and the
//! encoding must preserve document order.

use proptest::prelude::*;
use shred::dewey;

/// Arbitrary Dewey vector with components across the full 3-byte range
/// (biased to include boundary values).
fn arb_vector() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        prop_oneof![
            4 => 1u32..6,
            1 => Just(1u32),
            1 => Just(dewey::MAX_COMPONENT),
            1 => Just(0xFFu32),
            1 => Just(0x100u32),
        ],
        1..6,
    )
}

/// Ground truth: is `b` a proper prefix of `a`? (i.e. a's node is a
/// descendant of b's node)
fn is_proper_prefix(b: &[u32], a: &[u32]) -> bool {
    b.len() < a.len() && a[..b.len()] == *b
}

/// Ground truth document order on Dewey vectors: lexicographic component
/// comparison, prefixes come first.
fn doc_order(a: &[u32], b: &[u32]) -> std::cmp::Ordering {
    a.cmp(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encoding_preserves_document_order(a in arb_vector(), b in arb_vector()) {
        let ea = dewey::encode(&a).expect("encode");
        let eb = dewey::encode(&b).expect("encode");
        prop_assert_eq!(ea.cmp(&eb), doc_order(&a, &b),
            "vectors {:?} vs {:?}", a, b);
    }

    #[test]
    fn lemma1_descendant_iff_prefix(a in arb_vector(), b in arb_vector()) {
        let ea = dewey::encode(&a).expect("encode");
        let eb = dewey::encode(&b).expect("encode");
        prop_assert_eq!(
            dewey::is_descendant(&ea, &eb),
            is_proper_prefix(&b, &a),
            "a={:?} b={:?}", a, b
        );
    }

    #[test]
    fn lemma2_following_iff_after_and_not_descendant(a in arb_vector(), b in arb_vector()) {
        let ea = dewey::encode(&a).expect("encode");
        let eb = dewey::encode(&b).expect("encode");
        let expected = doc_order(&a, &b) == std::cmp::Ordering::Greater
            && !is_proper_prefix(&b, &a);
        prop_assert_eq!(dewey::is_following(&ea, &eb), expected,
            "a={:?} b={:?}", a, b);
    }

    #[test]
    fn preceding_and_ancestor_are_duals(a in arb_vector(), b in arb_vector()) {
        let ea = dewey::encode(&a).expect("encode");
        let eb = dewey::encode(&b).expect("encode");
        prop_assert_eq!(
            dewey::is_preceding(&ea, &eb),
            dewey::is_following(&eb, &ea)
        );
        prop_assert_eq!(
            dewey::is_ancestor(&ea, &eb),
            dewey::is_descendant(&eb, &ea)
        );
    }

    #[test]
    fn axes_partition_distinct_nodes(a in arb_vector(), b in arb_vector()) {
        // For two distinct nodes, exactly one of: descendant, ancestor,
        // following, preceding.
        prop_assume!(a != b);
        let ea = dewey::encode(&a).expect("encode");
        let eb = dewey::encode(&b).expect("encode");
        let relations = [
            dewey::is_descendant(&ea, &eb),
            dewey::is_ancestor(&ea, &eb),
            dewey::is_following(&ea, &eb),
            dewey::is_preceding(&ea, &eb),
        ];
        prop_assert_eq!(relations.iter().filter(|&&r| r).count(), 1,
            "a={:?} b={:?} relations={:?}", a, b, relations);
    }

    #[test]
    fn roundtrip(a in arb_vector()) {
        let e = dewey::encode(&a).expect("encode");
        prop_assert_eq!(dewey::decode(&e), a);
    }
}

#[test]
fn dewey_matches_tree_axes_on_a_document() {
    // Cross-check against xmldom's tree: for every element pair, the
    // Dewey predicates must agree with the tree-derived relationships.
    let doc =
        xmldom::parse("<r><a><b/><b><c/><c/></b></a><a/><d><a><b/></a></d></r>").expect("xml");
    let elems: Vec<_> = doc.all_nodes().filter(|&n| doc.is_element(n)).collect();
    for &x in &elems {
        let dx = dewey::encode(&doc.dewey(x)).expect("encode");
        for &y in &elems {
            let dy = dewey::encode(&doc.dewey(y)).expect("encode");
            assert_eq!(
                dewey::is_descendant(&dx, &dy),
                doc.is_ancestor(y, x),
                "descendant mismatch for {x:?}/{y:?}"
            );
            let following = x > y && !doc.is_ancestor(y, x);
            assert_eq!(
                dewey::is_following(&dx, &dy),
                following,
                "following mismatch for {x:?}/{y:?}"
            );
        }
    }
}
