//! Schema-aware XML-to-relational shredding (paper §3).
//!
//! One relation per element definition (our schemas are DTD-style, so
//! element name ↔ relation is a bijection — see DESIGN.md). Every relation
//! carries the four descriptors of Figure 1(c): element id, parent id,
//! root-to-node path id and binary Dewey position; text content and
//! attributes are inlined as typed columns; root relations also carry a
//! `doc_id`.
//!
//! Indexes per §3.1: the `id` primary key, the parent foreign key, and a
//! composite `(dewey_pos, path_id)` index, all as B-trees.

use std::collections::HashMap;

use relstore::{ColType, Database, StoreError, TableSchema, Value};
use xmldom::{Document, NodeId};
use xmlschema::{Marking, Schema, ValueType};

use crate::dewey;
use crate::naming::*;

/// Mapping from schema value types to SQL column types.
fn col_type(v: ValueType) -> ColType {
    match v {
        ValueType::Text => ColType::Str,
        ValueType::Int => ColType::Int,
        ValueType::Float => ColType::Float,
    }
}

/// Parse a text value according to its declared type; falls back to NULL
/// when the content does not parse (dirty data stays queryable as text in
/// `Text` columns; typed columns are strict).
fn typed_value(raw: &str, ty: ValueType) -> Value {
    let trimmed = raw.trim();
    match ty {
        ValueType::Text => {
            if raw.is_empty() {
                Value::Null
            } else {
                Value::Str(raw.to_string())
            }
        }
        ValueType::Int => trimmed
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        ValueType::Float => trimmed
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or(Value::Null),
    }
}

/// Error raised by loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShredError(pub String);

impl std::fmt::Display for ShredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shredding error: {}", self.0)
    }
}

impl std::error::Error for ShredError {}

impl From<StoreError> for ShredError {
    fn from(e: StoreError) -> Self {
        ShredError(e.to_string())
    }
}

/// One loaded document: its assigned id and the tree-node → element-id map
/// (used by the equivalence tests to compare SQL results against the
/// native evaluator).
#[derive(Debug, Clone)]
pub struct LoadedDoc {
    pub doc_id: i64,
    pub element_ids: HashMap<NodeId, i64>,
}

/// A schema-aware shredded store.
pub struct SchemaAwareStore {
    db: Database,
    schema: Schema,
    marking: Marking,
    path_ids: HashMap<String, i64>,
    next_id: i64,
    next_doc: i64,
    indexed: bool,
}

impl SchemaAwareStore {
    /// Create the relational structures for a schema (empty tables).
    pub fn new(schema: &Schema) -> Result<SchemaAwareStore, ShredError> {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            PATHS_TABLE,
            &[(PATHS_ID, ColType::Int), (PATHS_PATH, ColType::Str)],
        ))?;
        for name in schema.names() {
            let def = schema.def(name).expect("listed name");
            let mut cols: Vec<(String, ColType)> = vec![
                (COL_ID.to_string(), ColType::Int),
                (COL_PAR.to_string(), ColType::Int),
                (COL_PATH.to_string(), ColType::Int),
                (COL_DEWEY.to_string(), ColType::Bytes),
            ];
            if name == schema.root() {
                cols.push((COL_DOC.to_string(), ColType::Int));
            }
            if let Some(t) = def.text {
                cols.push((COL_TEXT.to_string(), col_type(t)));
            }
            for attr in &def.attributes {
                cols.push((attr_col(&attr.name), col_type(attr.ty)));
            }
            let col_refs: Vec<(&str, ColType)> =
                cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            db.create_table(TableSchema::new(name, &col_refs))?;
        }
        Ok(SchemaAwareStore {
            db,
            marking: Marking::analyze(schema),
            schema: schema.clone(),
            path_ids: HashMap::new(),
            next_id: 1,
            next_doc: 1,
            indexed: false,
        })
    }

    /// Load one document. The document must validate against the schema.
    pub fn load(&mut self, doc: &Document) -> Result<LoadedDoc, ShredError> {
        // relstore maintains indexes on insert, so loading after
        // `create_indexes` is allowed — bulk loads are just faster before.
        self.schema
            .validate(doc)
            .map_err(|e| ShredError(e.to_string()))?;
        let doc_id = self.next_doc;
        self.next_doc += 1;
        let mut element_ids = HashMap::new();

        let root = doc.document_element().expect("validated document");
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let name = doc.name(n).expect("element").to_string();
            let def = self.schema.def(&name).expect("validated").clone();
            let id = self.next_id;
            self.next_id += 1;
            element_ids.insert(n, id);

            let par = doc
                .parent(n)
                .and_then(|p| element_ids.get(&p))
                .copied()
                .map(Value::Int)
                .unwrap_or(Value::Null);
            let path_id = self.intern_path(&doc.path_string(n))?;
            // Dewey: prepend the document id so structural joins cannot
            // match across documents (see DESIGN.md).
            let mut vector = vec![doc_id as u32];
            vector.extend(doc.dewey(n));
            let dewey = dewey::encode(&vector).map_err(|e| ShredError(e.to_string()))?;

            let mut row = vec![
                Value::Int(id),
                par,
                Value::Int(path_id),
                Value::Bytes(dewey),
            ];
            if name == self.schema.root() {
                row.push(Value::Int(doc_id));
            }
            if let Some(t) = def.text {
                row.push(typed_value(&doc.direct_text(n), t));
            }
            for attr in &def.attributes {
                let v = doc
                    .attribute(n, &attr.name)
                    .map(|raw| typed_value(raw, attr.ty))
                    .unwrap_or(Value::Null);
                row.push(v);
            }
            self.db
                .table_mut(&name)
                .expect("created in new()")
                .insert(row)?;

            // Push children in reverse so ids follow document order.
            for c in doc.child_elements(n).collect::<Vec<_>>().into_iter().rev() {
                stack.push(c);
            }
        }
        Ok(LoadedDoc {
            doc_id,
            element_ids,
        })
    }

    fn intern_path(&mut self, path: &str) -> Result<i64, ShredError> {
        if let Some(&id) = self.path_ids.get(path) {
            return Ok(id);
        }
        let id = self.path_ids.len() as i64 + 1;
        self.path_ids.insert(path.to_string(), id);
        self.db
            .table_mut(PATHS_TABLE)
            .expect("created in new()")
            .insert(vec![Value::Int(id), Value::Str(path.to_string())])?;
        Ok(id)
    }

    /// Create the §3.1 indexes. Call once after bulk loading.
    pub fn create_indexes(&mut self) -> Result<(), ShredError> {
        if self.indexed {
            return Ok(());
        }
        let names: Vec<String> = self.schema.names().map(|s| s.to_string()).collect();
        for name in names {
            let t = self.db.table_mut(&name).expect("mapping relation");
            t.create_index(&format!("{name}_id"), &[COL_ID])?;
            t.create_index(&format!("{name}_par"), &[COL_PAR])?;
            // path_id is a foreign-key column (into Paths), so it gets an
            // index per §3.1's "one index for each foreign-key column".
            t.create_index(&format!("{name}_pathid"), &[COL_PATH])?;
            t.create_index(&format!("{name}_dewey_path"), &[COL_DEWEY, COL_PATH])?;
        }
        let p = self.db.table_mut(PATHS_TABLE).expect("Paths");
        p.create_index("paths_id", &[PATHS_ID])?;
        self.indexed = true;
        Ok(())
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The §4.5 U-P/F-P/I-P marking for this schema.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Number of distinct root-to-node paths seen so far.
    pub fn path_count(&self) -> usize {
        self.path_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlschema::figure1_schema;

    fn figure1_doc() -> Document {
        xmldom::parse(
            "<A x='4'>\
               <B><C><D x='1'>9</D></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
               <B><G><G/></G></B>\
             </A>",
        )
        .expect("xml")
    }

    #[test]
    fn creates_relation_per_definition() {
        let store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        let names: Vec<&str> = store.db().table_names().collect();
        assert_eq!(names, vec!["A", "B", "C", "D", "E", "F", "G", "Paths"]);
        // Root relation has doc_id.
        let a = store.db().table("A").expect("A");
        assert!(a.schema.col(COL_DOC).is_some());
        assert!(a.schema.col(&attr_col("x")).is_some());
        let b = store.db().table("B").expect("B");
        assert!(b.schema.col(COL_DOC).is_none());
    }

    #[test]
    fn loads_figure1_document() {
        let mut store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        let loaded = store.load(&figure1_doc()).expect("load");
        store.create_indexes().expect("index");
        assert_eq!(loaded.element_ids.len(), 12);
        assert_eq!(store.db().table("A").expect("A").len(), 1);
        assert_eq!(store.db().table("B").expect("B").len(), 2);
        assert_eq!(store.db().table("F").expect("F").len(), 2);
        assert_eq!(store.db().table("G").expect("G").len(), 3);
        // Distinct paths: /A, /A/B, /A/B/C, /A/B/C/D, /A/B/C/E, /A/B/C/E/F,
        // /A/B/G, /A/B/G/G, /A/B/G/G/G? No — G under B, G under G.
        assert!(store.path_count() >= 7);
    }

    #[test]
    fn element_ids_are_document_ordered() {
        let mut store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        let doc = figure1_doc();
        let loaded = store.load(&doc).expect("load");
        let mut pairs: Vec<(NodeId, i64)> = loaded.element_ids.into_iter().collect();
        pairs.sort();
        for w in pairs.windows(2) {
            assert!(w[0].1 < w[1].1, "ids must follow document order");
        }
    }

    #[test]
    fn typed_columns() {
        let mut store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        store.load(&figure1_doc()).expect("load");
        let f = store.db().table("F").expect("F");
        let texts: Vec<Value> = f.rows().map(|(_, r)| r[4].clone()).collect();
        assert_eq!(texts, vec![Value::Int(1), Value::Int(2)]);
        let d = store.db().table("D").expect("D");
        let (_, row) = d.rows().next().expect("one D");
        assert_eq!(row[d.schema.col("text").expect("text")], Value::Int(9));
        assert_eq!(
            row[d.schema.col(&attr_col("x")).expect("attr_x")],
            Value::Int(1)
        );
    }

    #[test]
    fn dewey_positions_prefix_doc_id() {
        let mut store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        store.load(&figure1_doc()).expect("load");
        store.load(&figure1_doc()).expect("load 2");
        let a = store.db().table("A").expect("A");
        let deweys: Vec<Vec<u32>> = a
            .rows()
            .map(|(_, r)| dewey::decode(r[3].as_bytes().expect("bytes")))
            .collect();
        assert_eq!(deweys, vec![vec![1, 1], vec![2, 1]]);
    }

    #[test]
    fn paths_are_interned_once() {
        let mut store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        store.load(&figure1_doc()).expect("load");
        let before = store.path_count();
        store.load(&figure1_doc()).expect("load 2");
        assert_eq!(store.path_count(), before);
    }

    #[test]
    fn rejects_invalid_documents() {
        let mut store = SchemaAwareStore::new(&figure1_schema()).expect("store");
        let bad = xmldom::parse("<A><X/></A>").expect("xml");
        assert!(store.load(&bad).is_err());
    }
}
