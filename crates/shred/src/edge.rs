//! Schema-oblivious Edge-like shredding (paper §5.1).
//!
//! All element nodes go into one central `Edge` relation; attributes go
//! into a separate `Attrs` relation (the paper's footnote 3 picks this
//! option). The same descriptors (id, parent id, path id, Dewey position)
//! are kept, so the PPF translation applies — every structural join just
//! becomes a *self*-join of the big central relation, which is exactly the
//! effect the schema-aware comparison in Figure 3 measures.

use std::collections::HashMap;

use relstore::{ColType, Database, TableSchema, Value};
use xmldom::Document;

use crate::dewey;
use crate::naming::*;
use crate::schema_aware::{LoadedDoc, ShredError};

/// A schema-oblivious (Edge-like) shredded store.
pub struct EdgeStore {
    db: Database,
    path_ids: HashMap<String, i64>,
    next_id: i64,
    next_doc: i64,
    indexed: bool,
}

impl Default for EdgeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeStore {
    pub fn new() -> EdgeStore {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            PATHS_TABLE,
            &[(PATHS_ID, ColType::Int), (PATHS_PATH, ColType::Str)],
        ))
        .expect("fresh database");
        db.create_table(TableSchema::new(
            EDGE_TABLE,
            &[
                (COL_ID, ColType::Int),
                (COL_PAR, ColType::Int),
                (COL_PATH, ColType::Int),
                (COL_DEWEY, ColType::Bytes),
                (COL_DOC, ColType::Int),
                (EDGE_NAME, ColType::Str),
                (COL_TEXT, ColType::Str),
            ],
        ))
        .expect("fresh database");
        db.create_table(TableSchema::new(
            ATTR_TABLE,
            &[
                (COL_ID, ColType::Int),
                (ATTR_OWNER, ColType::Int),
                (ATTR_NAME, ColType::Str),
                (ATTR_VALUE, ColType::Str),
            ],
        ))
        .expect("fresh database");
        EdgeStore {
            db,
            path_ids: HashMap::new(),
            next_id: 1,
            next_doc: 1,
            indexed: false,
        }
    }

    /// Load a document (no schema required — the mapping is oblivious).
    pub fn load(&mut self, doc: &Document) -> Result<LoadedDoc, ShredError> {
        let root = doc
            .document_element()
            .ok_or_else(|| ShredError("document has no element".into()))?;
        let doc_id = self.next_doc;
        self.next_doc += 1;
        let mut element_ids = HashMap::new();

        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let id = self.next_id;
            self.next_id += 1;
            element_ids.insert(n, id);

            let par = doc
                .parent(n)
                .and_then(|p| element_ids.get(&p))
                .copied()
                .map(Value::Int)
                .unwrap_or(Value::Null);
            let path_id = self.intern_path(&doc.path_string(n))?;
            let mut vector = vec![doc_id as u32];
            vector.extend(doc.dewey(n));
            let bytes = dewey::encode(&vector).map_err(|e| ShredError(e.to_string()))?;
            let text = doc.direct_text(n);
            self.db.table_mut(EDGE_TABLE).expect("Edge").insert(vec![
                Value::Int(id),
                par,
                Value::Int(path_id),
                Value::Bytes(bytes),
                Value::Int(doc_id),
                Value::Str(doc.name(n).expect("element").to_string()),
                if text.is_empty() {
                    Value::Null
                } else {
                    Value::Str(text)
                },
            ])?;

            for (aname, avalue) in doc.attributes(n) {
                let aid = self.next_id;
                self.next_id += 1;
                self.db.table_mut(ATTR_TABLE).expect("Attrs").insert(vec![
                    Value::Int(aid),
                    Value::Int(id),
                    Value::Str(aname.clone()),
                    Value::Str(avalue.clone()),
                ])?;
            }

            for c in doc.child_elements(n).collect::<Vec<_>>().into_iter().rev() {
                stack.push(c);
            }
        }
        Ok(LoadedDoc {
            doc_id,
            element_ids,
        })
    }

    fn intern_path(&mut self, path: &str) -> Result<i64, ShredError> {
        if let Some(&id) = self.path_ids.get(path) {
            return Ok(id);
        }
        let id = self.path_ids.len() as i64 + 1;
        self.path_ids.insert(path.to_string(), id);
        self.db
            .table_mut(PATHS_TABLE)
            .expect("Paths")
            .insert(vec![Value::Int(id), Value::Str(path.to_string())])?;
        Ok(id)
    }

    /// Create the same index set as the schema-aware store (§3.1), plus a
    /// name index (Edge-mapping queries constantly filter on the label).
    pub fn create_indexes(&mut self) -> Result<(), ShredError> {
        if self.indexed {
            return Ok(());
        }
        {
            let e = self.db.table_mut(EDGE_TABLE).expect("Edge");
            e.create_index("edge_id", &[COL_ID])?;
            e.create_index("edge_par", &[COL_PAR])?;
            e.create_index("edge_dewey_path", &[COL_DEWEY, COL_PATH])?;
            e.create_index("edge_name", &[EDGE_NAME])?;
            e.create_index("edge_path", &[COL_PATH])?;
        }
        {
            let a = self.db.table_mut(ATTR_TABLE).expect("Attrs");
            a.create_index("attrs_owner", &[ATTR_OWNER])?;
            a.create_index("attrs_name", &[ATTR_NAME])?;
        }
        let p = self.db.table_mut(PATHS_TABLE).expect("Paths");
        p.create_index("paths_id", &[PATHS_ID])?;
        self.indexed = true;
        Ok(())
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn path_count(&self) -> usize {
        self.path_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_into_central_relation() {
        let mut store = EdgeStore::new();
        let doc = xmldom::parse("<a x='1'><b>t</b><b/><c y='2' z='3'/></a>").expect("xml");
        let loaded = store.load(&doc).expect("load");
        store.create_indexes().expect("index");
        assert_eq!(store.db().table(EDGE_TABLE).expect("Edge").len(), 4);
        assert_eq!(store.db().table(ATTR_TABLE).expect("Attrs").len(), 3);
        assert_eq!(loaded.element_ids.len(), 4);
        assert_eq!(store.path_count(), 3); // /a, /a/b, /a/c
    }

    #[test]
    fn attrs_reference_their_owner() {
        let mut store = EdgeStore::new();
        let doc = xmldom::parse("<a><b k='v'/></a>").expect("xml");
        store.load(&doc).expect("load");
        let edge = store.db().table(EDGE_TABLE).expect("Edge");
        let b_row = edge
            .rows()
            .find(|(_, r)| r[5] == Value::from("b"))
            .expect("b row");
        let b_id = b_row.1[0].clone();
        let attrs = store.db().table(ATTR_TABLE).expect("Attrs");
        let (_, a_row) = attrs.rows().next().expect("one attr");
        assert_eq!(a_row[1], b_id);
        assert_eq!(a_row[2], Value::from("k"));
        assert_eq!(a_row[3], Value::from("v"));
    }

    #[test]
    fn ids_unique_across_elements_and_attrs() {
        let mut store = EdgeStore::new();
        let doc = xmldom::parse("<a x='1' y='2'><b z='3'/></a>").expect("xml");
        store.load(&doc).expect("load");
        let mut ids: Vec<i64> = store
            .db()
            .table(EDGE_TABLE)
            .expect("Edge")
            .rows()
            .map(|(_, r)| r[0].as_int().expect("int"))
            .chain(
                store
                    .db()
                    .table(ATTR_TABLE)
                    .expect("Attrs")
                    .rows()
                    .map(|(_, r)| r[0].as_int().expect("int")),
            )
            .collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn multiple_documents_get_distinct_doc_ids() {
        let mut store = EdgeStore::new();
        let doc = xmldom::parse("<a/>").expect("xml");
        let l1 = store.load(&doc).expect("load 1");
        let l2 = store.load(&doc).expect("load 2");
        assert_ne!(l1.doc_id, l2.doc_id);
    }
}
