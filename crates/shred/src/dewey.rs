//! Binary Dewey encoding (paper §4.2).
//!
//! A Dewey position is a vector of sibling ordinals along the root-to-node
//! path. It is stored as a binary string of **3-byte components with the
//! leading bit zero**, so each component ranges 0..=0x7FFFFF. With this
//! representation, plain *lexicographic* byte comparison decides every
//! XPath structural relationship:
//!
//! * **Lemma 1**: `n2` is a descendant of `n1` ⇔
//!   `d(n2) > d(n1) && d(n2) < d(n1) || 0xFF`
//! * **Lemma 2**: `n2` follows `n1` (document order, not a descendant) ⇔
//!   `d(n2) > d(n1) || 0xFF`
//!
//! Both lemmas hold because appending `0xFF` produces a string strictly
//! greater than every extension of `d(n1)` by valid components (whose
//! first byte is ≤ 0x7F) yet smaller than any different following sibling.

/// Largest encodable component value (23 bits).
pub const MAX_COMPONENT: u32 = 0x7F_FF_FF;

/// The byte appended to form the descendant-interval upper bound.
pub const UPPER_SENTINEL: u8 = 0xFF;

/// Encoding error: a component exceeds 23 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeweyError(pub u32);

impl std::fmt::Display for DeweyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dewey component {} exceeds the 3-byte limit {MAX_COMPONENT}",
            self.0
        )
    }
}

impl std::error::Error for DeweyError {}

/// Encode a Dewey vector into its binary string.
pub fn encode(vector: &[u32]) -> Result<Vec<u8>, DeweyError> {
    let mut out = Vec::with_capacity(vector.len() * 3);
    for &c in vector {
        if c > MAX_COMPONENT {
            return Err(DeweyError(c));
        }
        out.push((c >> 16) as u8);
        out.push((c >> 8) as u8);
        out.push(c as u8);
    }
    Ok(out)
}

/// Decode a binary string back into the Dewey vector. Panics on length not
/// divisible by 3 (encodings are produced only by [`encode`]).
pub fn decode(bytes: &[u8]) -> Vec<u32> {
    assert!(
        bytes.len().is_multiple_of(3),
        "dewey binary string length must be a multiple of 3"
    );
    bytes
        .chunks_exact(3)
        .map(|c| ((c[0] as u32) << 16) | ((c[1] as u32) << 8) | c[2] as u32)
        .collect()
}

/// The upper bound `d || 0xFF` of the descendant interval of `d`.
pub fn upper_bound(dewey: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(dewey.len() + 1);
    out.extend_from_slice(dewey);
    out.push(UPPER_SENTINEL);
    out
}

/// Lemma 1: is the node encoded `d2` a (proper) descendant of `d1`?
pub fn is_descendant(d2: &[u8], d1: &[u8]) -> bool {
    d2 > d1 && d2 < upper_bound(d1).as_slice()
}

/// Lemma 2: is the node encoded `d2` a *following* node of `d1`
/// (after it in document order and not its descendant)?
pub fn is_following(d2: &[u8], d1: &[u8]) -> bool {
    d2 > upper_bound(d1).as_slice()
}

/// Is `d2` a preceding node of `d1` (before it in document order and not
/// its ancestor)?
pub fn is_preceding(d2: &[u8], d1: &[u8]) -> bool {
    is_following(d1, d2)
}

/// Is `d2` a (proper) ancestor of `d1`?
pub fn is_ancestor(d2: &[u8], d1: &[u8]) -> bool {
    is_descendant(d1, d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: &[u32]) -> Vec<u8> {
        encode(v).expect("encodable")
    }

    #[test]
    fn encoding_shape() {
        assert_eq!(enc(&[1]), vec![0, 0, 1]);
        assert_eq!(enc(&[1, 2]), vec![0, 0, 1, 0, 0, 2]);
        assert_eq!(enc(&[MAX_COMPONENT]), vec![0x7F, 0xFF, 0xFF]);
        assert!(encode(&[MAX_COMPONENT + 1]).is_err());
    }

    #[test]
    fn decode_roundtrip() {
        for v in [vec![], vec![1], vec![1, 2, 3], vec![0x7F_FF_FF, 255, 256]] {
            assert_eq!(decode(&enc(&v)), v);
        }
    }

    #[test]
    fn lemma1_descendant_examples() {
        // Figure 1: 1.1.2.1 is a descendant of 1.1 but not of 1.2.
        let d_11 = enc(&[1, 1]);
        let d_12 = enc(&[1, 2]);
        let d_1121 = enc(&[1, 1, 2, 1]);
        assert!(is_descendant(&d_1121, &d_11));
        assert!(!is_descendant(&d_1121, &d_12));
        assert!(!is_descendant(&d_11, &d_11), "not a descendant of itself");
        assert!(!is_descendant(&d_11, &d_1121));
    }

    #[test]
    fn lemma2_following_examples() {
        let d_113 = enc(&[1, 1, 3]);
        let d_1121 = enc(&[1, 1, 2, 1]);
        let d_12 = enc(&[1, 2]);
        assert!(is_following(&d_113, &d_1121));
        assert!(is_following(&d_12, &d_1121));
        assert!(!is_following(&d_1121, &d_113));
        // A descendant is NOT following.
        let d_11 = enc(&[1, 1]);
        assert!(!is_following(&d_1121, &d_11));
    }

    #[test]
    fn sentinel_vs_max_component() {
        // The trickiest case: a component of 0x7FFFFF starts with byte
        // 0x7F < 0xFF, so even the largest child stays below the bound.
        let d = enc(&[1]);
        let child_max = enc(&[1, MAX_COMPONENT]);
        assert!(is_descendant(&child_max, &d));
        let next_sibling = enc(&[2]);
        assert!(is_following(&next_sibling, &d));
    }
}
