//! `shred` — XML-to-relational loading: binary Dewey codec, the
//! schema-aware mapping of paper §3, and the schema-oblivious Edge-like
//! mapping of §5.1.
//!
//! Both mappings keep the same four element descriptors (id, parent id,
//! path id, binary Dewey position) and a shared `Paths` relation, so the
//! PPF translator can target either; the difference — many small typed
//! relations vs one big central relation — is exactly what the paper's
//! Figure 3 experiment compares.
//!
//! # Example
//! ```
//! use shred::SchemaAwareStore;
//! let schema = xmlschema::parse_schema("root a\na = b*\nb : int").unwrap();
//! let doc = xmldom::parse("<a><b>1</b><b>2</b></a>").unwrap();
//! let mut store = SchemaAwareStore::new(&schema).unwrap();
//! store.load(&doc).unwrap();
//! store.create_indexes().unwrap();
//! assert_eq!(store.db().table("b").unwrap().len(), 2);
//! ```

pub mod dewey;
pub mod edge;
pub mod naming;
pub mod schema_aware;

pub use edge::EdgeStore;
pub use schema_aware::{LoadedDoc, SchemaAwareStore, ShredError};
