//! Shared naming conventions between the shredders and the translators.
//!
//! Keeping these in one place means the PPF translator, the baselines and
//! the loaders can never drift apart on column names.

/// The relation holding root-to-node paths (§3.1).
pub const PATHS_TABLE: &str = "Paths";
/// `Paths` primary key column.
pub const PATHS_ID: &str = "id";
/// `Paths` path-string column.
pub const PATHS_PATH: &str = "path";

/// Element-id primary key column on every mapping relation.
pub const COL_ID: &str = "id";
/// Parent element id (the paper's parent-descriptor; used for the
/// foreign-key joins of child/parent axes and the `par_id` equality of the
/// sibling axes).
pub const COL_PAR: &str = "par_id";
/// Foreign key into `Paths`.
pub const COL_PATH: &str = "path_id";
/// Binary Dewey position.
pub const COL_DEWEY: &str = "dewey_pos";
/// Document id (root relations, and every Edge row).
pub const COL_DOC: &str = "doc_id";
/// Text content column.
pub const COL_TEXT: &str = "text";

/// Column name for an attribute. Attributes get an `attr_` prefix because
/// names like `id` would collide with the descriptor columns (the paper
/// writes `A.x` for `@x`; we write `A.attr_x` — a pure renaming).
pub fn attr_col(attr: &str) -> String {
    format!("attr_{attr}")
}

/// The central element relation of the Edge-like mapping (§5.1).
pub const EDGE_TABLE: &str = "Edge";
/// Element-name column of the Edge relation.
pub const EDGE_NAME: &str = "name";
/// The attribute relation of the Edge-like mapping (footnote 3: attributes
/// are stored "as tuples in a separate relation dedicated for attribute
/// storage").
pub const ATTR_TABLE: &str = "Attrs";
/// Owner element id in the attribute relation.
pub const ATTR_OWNER: &str = "elem_id";
/// Attribute name / value columns.
pub const ATTR_NAME: &str = "name";
pub const ATTR_VALUE: &str = "value";
