//! Evaluator tests on the paper's Figure 1 document and XMark-shaped
//! snippets.

use xmldom::Document;
use xpath::{evaluate, parse_xpath, string_value, Item};

/// The paper's Figure 1(b) document, with text values making the examples
/// from §4 checkable ('/A/\*[C//F=2]' etc.).
fn figure1() -> Document {
    xmldom::parse(
        "<A x='4'>\
           <B><C><D/></C><C><E><F>1</F><F>2</F></E></C><G/></B>\
           <B><G><G/></G></B>\
         </A>",
    )
    .expect("valid xml")
}

fn names(doc: &Document, items: &[Item]) -> Vec<String> {
    items
        .iter()
        .map(|&i| match i {
            Item::Node(n) => doc
                .name(n)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "#text".into()),
            Item::Attr(..) => "@".into(),
        })
        .collect()
}

fn run(doc: &Document, q: &str) -> Vec<Item> {
    let e = parse_xpath(q).expect("parse");
    evaluate(doc, &e).expect("evaluate")
}

#[test]
fn child_and_wildcard_steps() {
    let doc = figure1();
    assert_eq!(run(&doc, "/A/B").len(), 2);
    assert_eq!(run(&doc, "/A/*").len(), 2);
    assert_eq!(names(&doc, &run(&doc, "/A/B/*")), vec!["C", "C", "G", "G"]);
}

#[test]
fn descendant_axis() {
    let doc = figure1();
    assert_eq!(run(&doc, "//F").len(), 2);
    assert_eq!(run(&doc, "//G").len(), 3);
    assert_eq!(run(&doc, "/A//C").len(), 2);
    // descendant-or-self with explicit axis
    assert_eq!(run(&doc, "/descendant-or-self::G").len(), 3);
}

#[test]
fn paper_intro_example() {
    // '/A/*[C//F=2]' from §2.1: children of A with a child C having a
    // descendant F = 2. Only the first B qualifies.
    let doc = figure1();
    let hits = run(&doc, "/A/*[C//F=2]");
    assert_eq!(hits.len(), 1);
    let Item::Node(b) = hits[0] else {
        panic!("element expected")
    };
    assert_eq!(doc.dewey(b), vec![1, 1]);
}

#[test]
fn paper_section42_example() {
    // '/A[@x=4]//C' from §4.2.
    let doc = figure1();
    assert_eq!(run(&doc, "/A[@x=4]//C").len(), 2);
    assert_eq!(run(&doc, "/A[@x=5]//C").len(), 0);
}

#[test]
fn backward_axes() {
    let doc = figure1();
    // //F/parent::E
    assert_eq!(names(&doc, &run(&doc, "//F/parent::E")), vec!["E"]);
    // //F/parent::D is empty
    assert!(run(&doc, "//F/parent::D").is_empty());
    // //F/ancestor::B: both F's are under the first B
    assert_eq!(run(&doc, "//F/ancestor::B").len(), 1);
    // ancestor-or-self
    assert_eq!(run(&doc, "//G/ancestor-or-self::G").len(), 3);
}

#[test]
fn sibling_axes() {
    let doc = figure1();
    // First C's following siblings: C and G.
    assert_eq!(
        names(&doc, &run(&doc, "/A/B/C[1]/following-sibling::*")),
        vec!["C", "G"]
    );
    assert_eq!(
        names(&doc, &run(&doc, "/A/B/G/preceding-sibling::*")),
        vec!["C", "C"]
    );
}

#[test]
fn following_and_preceding() {
    let doc = figure1();
    // F's (both in first B subtree) are followed by: G (first B's), second
    // B, its G, its nested G.
    let f_following = run(&doc, "//F[1]/following::*");
    assert_eq!(names(&doc, &f_following), vec!["F", "G", "B", "G", "G"]);
    // preceding of the last G (nested): everything before it except
    // ancestors.
    let hits = run(&doc, "//G[not(G)]/preceding::F");
    assert_eq!(hits.len(), 2);
}

#[test]
fn predicates_with_backward_paths() {
    // QD4 shape: //i[parent::*/parent::sub/ancestor::article]
    let doc = xmldom::parse(
        "<dblp><article><title><sub><sup><i>x</i></sup></sub></title></article>\
         <inproceedings><title><sup><i>y</i></sup></title></inproceedings></dblp>",
    )
    .expect("xml");
    let hits = run(&doc, "//i[parent::*/parent::sub/ancestor::article]");
    assert_eq!(hits.len(), 1);
    let Item::Node(n) = hits[0] else {
        panic!("node")
    };
    assert_eq!(doc.string_value(n), "x");
}

#[test]
fn positional_predicates() {
    let doc = figure1();
    assert_eq!(run(&doc, "/A/B[1]/C").len(), 2);
    assert_eq!(run(&doc, "/A/B[2]/C").len(), 0);
    assert_eq!(run(&doc, "/A/B[position()=last()]/G").len(), 1);
    // Reverse axis positions count nearest-first.
    assert_eq!(
        names(&doc, &run(&doc, "/A/B/G/preceding-sibling::*[1]")),
        vec!["C"]
    );
}

#[test]
fn count_and_contains() {
    let doc = figure1();
    assert_eq!(run(&doc, "/A/B[count(C) = 2]").len(), 1);
    assert_eq!(run(&doc, "/A/B[count(C) = 0]").len(), 1);
    // contains() converts a node-set via its string-value: for E that is
    // the concatenated text "12".
    assert_eq!(run(&doc, "//E[contains(., '2')]").len(), 1);
    // contains(F, ...) uses the FIRST F ("1") per XPath 1.0 coercion.
    assert_eq!(run(&doc, "//E[contains(F, '2')]").len(), 0);
    assert_eq!(run(&doc, "//E[contains(F, '1')]").len(), 1);
}

#[test]
fn text_nodes() {
    let doc = figure1();
    let texts = run(&doc, "//F/text()");
    assert_eq!(texts.len(), 2);
    let vals: Vec<String> = texts.iter().map(|&t| string_value(&doc, t)).collect();
    assert_eq!(vals, vec!["1", "2"]);
}

#[test]
fn attributes_as_results_and_tests() {
    let doc = figure1();
    let attrs = run(&doc, "/A/@x");
    assert_eq!(attrs.len(), 1);
    assert_eq!(string_value(&doc, attrs[0]), "4");
    assert_eq!(run(&doc, "//*[@x]").len(), 1);
    assert_eq!(run(&doc, "/A/@*").len(), 1);
}

#[test]
fn union_results_in_document_order() {
    let doc = figure1();
    let hits = run(&doc, "//F | //D | //G");
    // Document order: D, F, F, G, G, G
    assert_eq!(names(&doc, &hits), vec!["D", "F", "F", "G", "G", "G"]);
}

#[test]
fn join_predicate_between_paths() {
    // Q-A shape: open_auction[bidder/date = interval/start]
    let doc = xmldom::parse(
        "<site><open_auctions>\
           <open_auction><bidder><date>01/01/2000</date></bidder>\
             <interval><start>01/01/2000</start></interval></open_auction>\
           <open_auction><bidder><date>02/02/2000</date></bidder>\
             <interval><start>03/03/2000</start></interval></open_auction>\
         </open_auctions></site>",
    )
    .expect("xml");
    let hits = run(
        &doc,
        "/site/open_auctions/open_auction[bidder/date = interval/start]",
    );
    assert_eq!(hits.len(), 1);
}

#[test]
fn numeric_comparisons_on_text() {
    let doc = xmldom::parse(
        "<dblp><inproceedings><year>1993</year></inproceedings>\
         <inproceedings><year>1995</year></inproceedings></dblp>",
    )
    .expect("xml");
    assert_eq!(run(&doc, "/dblp/inproceedings[year>=1994]").len(), 1);
    assert_eq!(run(&doc, "/dblp/inproceedings[year<1994]").len(), 1);
    assert_eq!(run(&doc, "/dblp/inproceedings[year=1995]").len(), 1);
}

#[test]
fn arithmetic_predicate() {
    let doc = figure1();
    // Arithmetic coerces a node-set through its FIRST node (XPath 1.0
    // number()): E's first F is "1", so F + 1 = 2.
    assert_eq!(run(&doc, "//E[F + 1 = 2]").len(), 1);
    assert_eq!(run(&doc, "//E[F + 1 = 3]").len(), 0);
    // count(C) is 2 for the first B and 0 for the second: both even.
    assert_eq!(run(&doc, "//B[count(C) mod 2 = 0]").len(), 2);
}

#[test]
fn not_and_logical_connectives() {
    let doc = figure1();
    assert_eq!(run(&doc, "/A/B[not(G)]").len(), 0);
    assert_eq!(run(&doc, "/A/B[C and G]").len(), 1);
    assert_eq!(run(&doc, "/A/B[C or G]").len(), 2);
    assert_eq!(run(&doc, "/A/B[not(C) and G]").len(), 1);
}

#[test]
fn absolute_path_inside_predicate() {
    let doc = figure1();
    // Every B while the document has an F=2 somewhere.
    assert_eq!(run(&doc, "/A/B[//F=2]").len(), 2);
    assert_eq!(run(&doc, "/A/B[//F=99]").len(), 0);
}
